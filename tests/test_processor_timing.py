"""Tests for the full-processor timing simulation (Figures 6/8 model)."""

import pytest

from repro.core import PreconstructionConfig
from repro.engine import FunctionalEngine
from repro.preprocess import PreprocessConfig
from repro.processor import (
    BackendConfig,
    ProcessorConfig,
    ProcessorSimulation,
    run_processor,
)
from repro.sim import FrontendConfig
from repro.trace import TraceCacheConfig
from repro.workloads import build_workload

INSTRUCTIONS = 25_000


@pytest.fixture(scope="module")
def vortex():
    workload = build_workload("vortex")
    stream = FunctionalEngine(workload.image).run(INSTRUCTIONS)
    return workload.image, stream


def _config(tc=256, pb=0, preprocess=False, **backend_kwargs):
    return ProcessorConfig(
        frontend=FrontendConfig(
            trace_cache=TraceCacheConfig(entries=tc),
            preconstruction=(PreconstructionConfig(buffer_entries=pb)
                             if pb else None)),
        backend=BackendConfig(**backend_kwargs),
        preprocess=PreprocessConfig() if preprocess else None)


class TestProcessorTiming:
    def test_ipc_in_plausible_range(self, vortex):
        image, stream = vortex
        stats = run_processor(image, _config(), INSTRUCTIONS,
                              stream=stream).stats
        # An 8-wide trace processor on integer code: IPC well above a
        # scalar machine, well below the width.
        assert 0.8 < stats.ipc < 6.0

    def test_cycles_monotone_in_cache_size(self, vortex):
        image, stream = vortex
        small = run_processor(image, _config(tc=64), INSTRUCTIONS,
                              stream=stream).stats
        large = run_processor(image, _config(tc=1024), INSTRUCTIONS,
                              stream=stream).stats
        assert large.cycles < small.cycles

    def test_preconstruction_helps_when_misses_dominate(self, vortex):
        image, stream = vortex
        base = run_processor(image, _config(tc=128), INSTRUCTIONS,
                             stream=stream).stats
        pre = run_processor(image, _config(tc=128, pb=128), INSTRUCTIONS,
                            stream=stream).stats
        assert pre.trace_misses < base.trace_misses
        assert pre.cycles < base.cycles

    def test_preprocessing_speeds_up_execution(self, vortex):
        image, stream = vortex
        base = run_processor(image, _config(), INSTRUCTIONS,
                             stream=stream).stats
        prep = run_processor(image, _config(preprocess=True), INSTRUCTIONS,
                             stream=stream).stats
        assert prep.cycles < base.cycles
        # Same frontend behaviour: preprocessing is backend-only.
        assert prep.trace_misses == base.trace_misses

    def test_stats_conservation(self, vortex):
        image, stream = vortex
        stats = run_processor(image, _config(), INSTRUCTIONS,
                              stream=stream).stats
        assert stats.instructions == len(stream)
        assert stats.trace_hits + stats.trace_misses == stats.traces
        assert (stats.ntp_correct + stats.ntp_wrong + stats.ntp_none
                == stats.traces)

    def test_deterministic(self, vortex):
        image, stream = vortex
        a = run_processor(image, _config(tc=128, pb=128), INSTRUCTIONS,
                          stream=stream).stats
        b = run_processor(image, _config(tc=128, pb=128), INSTRUCTIONS,
                          stream=stream).stats
        assert (a.cycles, a.trace_misses, a.buffer_hits) == \
            (b.cycles, b.trace_misses, b.buffer_hits)

    def test_more_pes_do_not_hurt(self, vortex):
        image, stream = vortex
        four = run_processor(image, _config(num_pes=4), INSTRUCTIONS,
                             stream=stream).stats
        eight = run_processor(image, _config(num_pes=8), INSTRUCTIONS,
                              stream=stream).stats
        assert eight.cycles <= four.cycles * 1.02

    def test_empty_stream(self, vortex):
        image, _ = vortex
        result = ProcessorSimulation(image, _config()).run([])
        assert result.stats.cycles == 0
        assert result.stats.ipc == 0.0
