"""Unit tests for the assembler / disassembler."""

import pytest

from repro.isa import AsmError, Opcode, RA, assemble, disassemble


class TestAssemble:
    def test_simple_program(self):
        insts, labels = assemble("""
            addi r1, r0, 10
            add  r2, r1, r1
            halt
        """)
        assert len(insts) == 3
        assert insts[0].op is Opcode.ADDI
        assert insts[0].imm == 10
        assert insts[2].op is Opcode.HALT
        assert labels == {}

    def test_label_branch_is_pc_relative(self):
        insts, labels = assemble("""
        loop:
            addi r1, r1, 1
            blt  r1, r2, loop
            halt
        """, base=0x1000)
        assert labels["loop"] == 0x1000
        branch = insts[1]
        # branch sits at 0x1004; taken target 0x1000 -> imm = -4
        assert branch.imm == -4
        assert branch.is_backward_branch()

    def test_label_call_is_absolute(self):
        insts, labels = assemble("""
            jal helper
            halt
        helper:
            jr ra
        """, base=0x2000)
        assert insts[0].imm == labels["helper"] == 0x2008
        assert insts[2].is_return

    def test_memory_operands(self):
        insts, _ = assemble("""
            lw r1, 8(r2)
            sw r1, -4(r3)
        """)
        lw, sw = insts
        assert (lw.rd, lw.rs1, lw.imm) == (1, 2, 8)
        assert (sw.rs2, sw.rs1, sw.imm) == (1, 3, -4)

    def test_comments_and_blank_lines_ignored(self):
        insts, _ = assemble("""
            # leading comment

            nop   # trailing comment
        """)
        assert len(insts) == 1

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(AsmError):
            assemble("frobnicate r1, r2, r3")

    def test_undefined_label_raises(self):
        with pytest.raises(AsmError):
            assemble("j nowhere")

    def test_sadd_rejected_in_source(self):
        with pytest.raises(AsmError):
            assemble("sadd r1, r2, r3")

    def test_operand_arity_errors(self):
        with pytest.raises(AsmError):
            assemble("beq r1, r2")
        with pytest.raises(AsmError):
            assemble("jal a, b\na:")


class TestRoundTrip:
    def test_disassemble_reassembles_identically(self):
        source = """
            addi r1, r0, 5
            lui  r4, 16
            lw   r2, 0(r1)
            sw   r2, 4(r1)
            mul  r3, r1, r2
            beq  r1, r2, 8
            jr   ra
            nop
            halt
        """
        insts, _ = assemble(source)
        text = disassemble(insts)
        again, _ = assemble(text)
        assert again == insts
