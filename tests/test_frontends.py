"""Tests for the competing-frontend zoo (`repro.frontends`)."""

import pytest

from repro.branch import BimodalPredictor
from repro.caches import ICacheConfig, InstructionCache
from repro.engine import FunctionalEngine
from repro.frontends import (
    FrontendMechanism,
    LinePrefetcher,
    ManaPrefetcher,
    MechanismContext,
    NextLinePrefetcher,
    PreconstructionMechanism,
    ProgramMapFetcher,
    create_mechanism,
    mechanism_names,
    register_mechanism,
)
from repro.frontends.base import _REGISTRY
from repro.runner import build_frontend_config
from repro.sim import run_frontend
from repro.trace import (
    SelectionConfig,
    TraceCache,
    TraceCacheConfig,
    traces_of_stream,
)
from repro.workloads import build_workload

INSTRUCTIONS = 8_000


@pytest.fixture(scope="module")
def compress():
    workload = build_workload("compress")
    stream = FunctionalEngine(workload.image).run(INSTRUCTIONS)
    return workload.image, stream


@pytest.fixture(scope="module")
def traces(compress):
    _, stream = compress
    return traces_of_stream(stream)


def make_context(image, budget=64):
    return MechanismContext(
        image=image, icache=InstructionCache(ICacheConfig()),
        bimodal=BimodalPredictor(entries=4096),
        trace_cache=TraceCache(TraceCacheConfig()),
        selection=SelectionConfig(), budget_entries=budget,
        static_seed=False, preconstruction=None)


class TestRegistry:
    def test_registered_names(self):
        assert mechanism_names() == ("mana", "nextline", "pmap",
                                     "preconstruction")

    def test_unknown_mechanism_raises(self, compress):
        image, _ = compress
        with pytest.raises(ValueError, match="unknown frontend mechanism"):
            create_mechanism("markov", make_context(image))

    def test_empty_name_rejected(self):
        class Nameless(FrontendMechanism):
            @classmethod
            def build(cls, context):
                return None

            def observe_dispatch(self, trace):
                pass

        with pytest.raises(ValueError, match="non-empty name"):
            register_mechanism(Nameless)

    def test_duplicate_name_rejected(self):
        class Imposter(FrontendMechanism):
            name = "nextline"

            @classmethod
            def build(cls, context):
                return None

            def observe_dispatch(self, trace):
                pass

        with pytest.raises(ValueError, match="already registered"):
            register_mechanism(Imposter)

    def test_reregistering_same_class_is_idempotent(self):
        assert register_mechanism(NextLinePrefetcher) is NextLinePrefetcher
        assert _REGISTRY["nextline"] is NextLinePrefetcher

    def test_zero_budget_means_unconfigured(self, compress):
        image, _ = compress
        for name in ("mana", "nextline", "pmap"):
            assert create_mechanism(name, make_context(image, 0)) is None
        # Preconstruction is configured by its hardware config, not the
        # generic budget; None config -> unconfigured.
        assert create_mechanism("preconstruction",
                                make_context(image, 64)) is None

    def test_build_types(self, compress):
        image, _ = compress
        expected = {"mana": ManaPrefetcher, "nextline": NextLinePrefetcher,
                    "pmap": ProgramMapFetcher}
        for name, cls in expected.items():
            mechanism = create_mechanism(name, make_context(image, 64))
            assert isinstance(mechanism, cls)
            assert mechanism.name == name
            assert mechanism.icache_client == name


class TestTraceLines:
    def test_lines_are_distinct_and_first_touch_ordered(self, traces):
        trace = max(traces, key=lambda t: len(t.pcs))
        lines = trace.lines(64)
        assert len(lines) == len(set(lines))
        assert all(addr % 64 == 0 for addr in lines)
        # First line covers the trace's first pc.
        assert lines[0] == trace.pcs[0] - trace.pcs[0] % 64

    def test_lines_memoized(self, traces):
        trace = traces[0]
        assert trace.lines(64) is trace.lines(64)

    def test_lines_cover_every_pc(self, traces):
        for trace in traces[:50]:
            lines = set(trace.lines(64))
            assert all(pc - pc % 64 in lines for pc in trace.pcs)


class TestLinePrefetcher:
    def make(self, budget=4):
        icache = InstructionCache(ICacheConfig())

        class Probe(LinePrefetcher):
            name = "probe"

            @classmethod
            def build(cls, context):  # pragma: no cover - not registered
                return None

            def observe_dispatch(self, trace):
                pass

        return Probe(icache, budget)

    def test_enqueue_deduplicates(self):
        prefetcher = self.make()
        prefetcher.enqueue_line(0x1000)
        prefetcher.enqueue_line(0x1000)
        assert prefetcher.pending() == 1
        assert prefetcher.lines_requested == 1

    def test_queue_bounded_by_budget(self):
        prefetcher = self.make(budget=2)
        for i in range(5):
            prefetcher.enqueue_line(0x1000 + i * 64)
        assert prefetcher.pending() == 2

    def test_tick_issues_one_line_per_idle_cycle(self):
        prefetcher = self.make()
        for i in range(3):
            prefetcher.enqueue_line(0x1000 + i * 64)
        prefetcher.tick(2)
        assert prefetcher.pending() == 1
        assert prefetcher.lines_prefetched == 2

    def test_tick_skips_resident_lines(self):
        prefetcher = self.make()
        prefetcher.icache.fetch_line(0x1000, "slow_path", instructions=0)
        prefetcher.enqueue_line(0x1000)
        prefetcher.tick(4)
        assert prefetcher.lines_prefetched == 0
        assert prefetcher.pending() == 0

    def test_prefetched_lines_become_resident(self):
        prefetcher = self.make()
        prefetcher.enqueue_line(0x2000)
        prefetcher.tick(1)
        assert prefetcher.icache.contains_line(0x2000)


class TestMechanismBehaviour:
    def test_nextline_enqueues_sequential_lines(self, compress, traces):
        image, _ = compress
        mechanism = create_mechanism("nextline", make_context(image, 64))
        trace = traces[0]
        mechanism.on_slow_path(trace)
        assert 0 < mechanism.pending() <= 4
        last_line = trace.pcs[-1] - trace.pcs[-1] % 64
        assert all(line > last_line for line in mechanism._queue)

    def test_nextline_ignores_dispatch(self, compress, traces):
        image, _ = compress
        mechanism = create_mechanism("nextline", make_context(image, 64))
        mechanism.observe_dispatch(traces[0])
        assert mechanism.pending() == 0

    def test_mana_records_and_replays(self, compress, traces):
        image, _ = compress
        mechanism = create_mechanism("mana", make_context(image, 64))
        for trace in traces:
            mechanism.observe_dispatch(trace)
        assert mechanism.records_held > 0
        # The dispatch stream revisits regions, so records replay.
        assert mechanism.records_replayed > 0
        assert mechanism.lines_requested > 0

    def test_mana_splits_budget(self, compress):
        image, _ = compress
        mechanism = create_mechanism("mana", make_context(image, 64))
        assert mechanism._record_capacity == 32
        assert mechanism.budget_entries == 32

    def test_pmap_walks_successors(self, compress, traces):
        image, _ = compress
        mechanism = create_mechanism("pmap", make_context(image, 64))
        for trace in traces[:20]:
            mechanism.observe_dispatch(trace)
        assert mechanism.blocks_walked > 0
        assert mechanism.lines_requested > 0

    def test_pmap_cfg_is_lazy(self, compress):
        image, _ = compress
        mechanism = create_mechanism("pmap", make_context(image, 64))
        assert mechanism._cfg is None
        assert mechanism.cfg is mechanism.cfg
        assert mechanism._cfg is not None


class TestSeamWiring:
    """The mechanisms through the full frontend simulation."""

    @pytest.mark.parametrize("name", ["mana", "nextline", "pmap"])
    def test_prefetchers_run_and_account(self, compress, name):
        image, stream = compress
        config = build_frontend_config(128, 64, mechanism=name)
        result = run_frontend(image, config, stream=stream)
        stats = result.stats
        assert result.mechanism is not None
        assert result.mechanism.name == name
        assert result.preconstruction is None
        assert stats.instructions == len(stream)
        assert stats.trace_hits + stats.trace_misses == stats.traces
        # Prefetchers never promote traces: no buffer hits.
        assert stats.buffer_hits == 0

    def test_preconstruction_through_seam(self, compress):
        image, stream = compress
        config = build_frontend_config(128, 64)
        result = run_frontend(image, config, stream=stream)
        assert isinstance(result.mechanism, PreconstructionMechanism)
        assert result.preconstruction is result.mechanism.engine
        assert result.stats.buffer_hits > 0

    def test_mechanism_kwarg_overrides_config(self, compress):
        image, stream = compress
        config = build_frontend_config(128, 64)
        result = run_frontend(image, config, stream=stream,
                              mechanism="nextline")
        assert result.mechanism is not None
        assert result.mechanism.name == "nextline"
        assert result.config.mechanism == "nextline"
        # The budget moved currencies: same total storage.
        assert (result.config.mechanism_entries
                == config.mechanism_entries == 64)

    def test_zero_budget_is_baseline_for_every_mechanism(self, compress):
        image, stream = compress
        summaries = []
        for name in mechanism_names():
            config = build_frontend_config(128, 0, mechanism=name)
            result = run_frontend(image, config, stream=stream)
            assert result.mechanism is None
            summaries.append(result.stats.summary())
        assert all(s == summaries[0] for s in summaries)

    def test_prefetch_traffic_reported_per_client(self, compress):
        image, stream = compress
        config = build_frontend_config(128, 64, mechanism="nextline")
        result = run_frontend(image, config, stream=stream)
        mechanism = result.mechanism
        assert mechanism.lines_prefetched > 0
        traffic = result.icache.traffic["nextline"]
        assert traffic.lines_accessed == mechanism.lines_prefetched
