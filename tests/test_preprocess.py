"""Tests for the preprocessing passes (constprop, fusion, scheduling)."""

import pytest

from repro.engine import ArchState
from repro.engine.functional import FunctionalEngine
from repro.isa import Instruction, Opcode, assemble
from repro.preprocess import (
    PreprocessConfig,
    Preprocessor,
    build_dependence_graph,
    fuse_shift_adds,
    propagate_constants,
    schedule_trace,
)
from repro.program import ProgramImage
from repro.trace import traces_of_stream


def _alu_state_after(instructions, initial=None) -> list[int]:
    """Execute a straight-line ALU/memory sequence and return registers."""
    insts = list(instructions) + [Instruction(Opcode.HALT)]
    image = ProgramImage(instructions=insts, code_base=0x1000, entry=0x1000)
    engine = FunctionalEngine(image)
    if initial:
        for reg, value in initial.items():
            engine.state.write(reg, value)
    engine.run(len(insts) + 1)
    return list(engine.state.regs)


def _parse(source: str):
    insts, _ = assemble(source)
    return tuple(insts)


class TestConstantPropagation:
    def test_folds_immediate_chain(self):
        seq = _parse("""
            addi r1, r0, 10
            addi r2, r1, 5
            add  r3, r1, r2
        """)
        folded = propagate_constants(seq)
        assert folded[1] == Instruction(Opcode.ADDI, rd=2, rs1=0, imm=15)
        assert folded[2] == Instruction(Opcode.ADDI, rd=3, rs1=0, imm=25)

    def test_preserves_semantics(self):
        seq = _parse("""
            addi r1, r0, 12
            slli r2, r1, 2
            ori  r3, r2, 1
            xor  r4, r3, r1
            sub  r5, r4, r2
        """)
        assert _alu_state_after(seq) == _alu_state_after(
            propagate_constants(seq))

    def test_unknown_inputs_left_alone(self):
        seq = _parse("""
            add  r3, r1, r2
            addi r4, r3, 1
        """)
        assert propagate_constants(seq) == seq

    def test_loads_invalidate_knowledge(self):
        seq = _parse("""
            addi r1, r0, 4
            lw   r1, 0(r2)
            addi r3, r1, 1
        """)
        folded = propagate_constants(seq)
        assert folded[2] == seq[2]  # r1 no longer constant

    def test_removes_dependence_height(self):
        seq = _parse("""
            addi r1, r0, 1
            addi r2, r1, 1
            addi r3, r2, 1
            addi r4, r3, 1
        """)
        before = build_dependence_graph(seq).depth()
        after = build_dependence_graph(propagate_constants(seq)).depth()
        assert after < before


class TestAluFusion:
    def test_fuses_shift_add(self):
        seq = _parse("""
            slli r2, r1, 2
            add  r3, r2, r4
        """)
        fused = fuse_shift_adds(seq)
        assert fused[1].op is Opcode.SADD
        assert fused[1].rs1 == 1 and fused[1].sh1 == 2
        assert fused[1].rs2 == 4

    def test_fused_semantics_match(self):
        seq = _parse("""
            slli r2, r1, 2
            add  r3, r2, r4
            addi r5, r2, 7
        """)
        initial = {1: 9, 4: 100}
        assert (_alu_state_after(seq, initial)
                == _alu_state_after(fuse_shift_adds(seq), initial))

    def test_source_redefinition_blocks_fusion(self):
        seq = _parse("""
            slli r2, r1, 2
            addi r1, r1, 1
            add  r3, r2, r4
        """)
        fused = fuse_shift_adds(seq)
        assert fused[2].op is Opcode.ADD  # r1 changed; cannot fuse

    def test_large_shift_not_fused(self):
        seq = _parse("""
            slli r2, r1, 8
            add  r3, r2, r4
        """)
        assert fuse_shift_adds(seq)[1].op is Opcode.ADD

    def test_reduces_dependence_height(self):
        seq = _parse("""
            slli r2, r1, 2
            add  r3, r2, r4
        """)
        before = build_dependence_graph(seq).depth()
        after = build_dependence_graph(fuse_shift_adds(seq)).depth()
        assert after < before


class TestScheduler:
    def test_respects_raw_dependencies(self):
        seq = _parse("""
            addi r1, r0, 1
            addi r2, r1, 1
            addi r3, r0, 5
            addi r4, r3, 5
        """)
        scheduled = schedule_trace(seq)
        positions = {inst: i for i, inst in enumerate(scheduled)}
        assert positions[seq[0]] < positions[seq[1]]
        assert positions[seq[2]] < positions[seq[3]]

    def test_memory_order_preserved(self):
        seq = _parse("""
            sw r1, 0(r9)
            lw r2, 0(r9)
            sw r3, 4(r9)
        """)
        scheduled = schedule_trace(seq)
        mem = [inst for inst in scheduled if inst.op in (Opcode.SW, Opcode.LW)]
        assert mem == list(seq)

    def test_control_stays_last(self):
        seq = _parse("""
            addi r1, r0, 1
            addi r2, r0, 2
            jr   ra
        """)
        assert schedule_trace(seq)[-1].op is Opcode.JR

    def test_is_permutation(self):
        seq = _parse("""
            addi r1, r0, 1
            mul  r2, r1, r1
            addi r3, r0, 3
            add  r4, r3, r3
            xor  r5, r4, r3
        """)
        assert sorted(map(str, schedule_trace(seq))) == sorted(map(str, seq))

    def test_hoists_critical_chain(self):
        """The long-latency chain head is scheduled before independent
        cheap work that originally preceded it."""
        seq = _parse("""
            addi r1, r0, 1
            addi r2, r0, 2
            addi r3, r0, 3
            mul  r4, r9, r9
            mul  r5, r4, r4
            mul  r6, r5, r5
        """)
        scheduled = schedule_trace(seq)
        assert scheduled[0].op is Opcode.MUL


class TestPreprocessorPipeline:
    def test_execution_view_matches_length(self):
        workload_source = """
            addi r1, r0, 3
        loop:
            slli r2, r1, 2
            add  r3, r2, r1
            addi r1, r1, -1
            bne  r1, r0, loop
            halt
        """
        insts, labels = assemble(workload_source, base=0x1000)
        image = ProgramImage(instructions=insts, code_base=0x1000,
                            entry=0x1000, labels=labels)
        stream = FunctionalEngine(image).run(50)
        traces = traces_of_stream(stream)
        preprocessor = Preprocessor()
        for trace in traces:
            view = preprocessor.process(trace)
            assert len(view) == len(trace.instructions)

    def test_disabled_pipeline_is_identity(self):
        config = PreprocessConfig(constant_propagation=False,
                                  alu_fusion=False, scheduling=False)
        assert not config.any_enabled
        insts, _ = assemble("addi r1, r0, 1\nhalt")
        image = ProgramImage(instructions=insts, code_base=0x1000,
                            entry=0x1000)
        stream = FunctionalEngine(image).run(2)
        trace = traces_of_stream(stream)[0]
        assert Preprocessor(config).process(trace) is trace.instructions
