"""Tests for the static trace-coverage predictor (`repro predict`).

The load-bearing property is *containment*: every trace start point
and every committed pc of a real execution must appear in the static
prediction.  The golden file pins the prediction for all eight SPEC
stand-ins so any behavioural drift in delimitation shows up as a CI
diff rather than a silent change.
"""

import json
from pathlib import Path

import pytest

import repro.static.predictor as predictor_mod
from repro.check.oracles import CheckBundle
from repro.static import (
    CoveragePrediction,
    StaticFacts,
    format_prediction,
    predict_coverage,
)
from repro.workloads import SPEC95_NAMES, build_workload, profile_for

GOLDEN = Path(__file__).parent / "golden" / "predict_spec95.json"
BUDGET = 3_000


@pytest.fixture(scope="module")
def compress_prediction() -> CoveragePrediction:
    return predict_coverage(build_workload("compress").image)


class TestContainment:
    @pytest.mark.parametrize("name", ["compress", "gcc", "fuzz-7"])
    def test_dynamic_run_is_contained(self, name):
        """Every dynamic trace start and executed pc is predicted."""
        bundle = CheckBundle(profile_for(name), BUDGET)
        prediction = predict_coverage(bundle.image,
                                      config=bundle.config.selection)
        assert prediction.complete
        starts = {trace.start_pc for trace in bundle.traces}
        missing_starts = {pc for pc in starts
                          if not prediction.predicts_start(pc)}
        assert missing_starts == set()
        executed = {record.pc for record in bundle.stream}
        assert {pc for pc in executed
                if not prediction.covers(pc)} == set()

    def test_no_gross_overapproximation(self, compress_prediction):
        """Predicted coverage never strays outside static reachability."""
        stray = (compress_prediction.covered_pcs
                 - compress_prediction.live_pcs)
        assert stray == set()
        assert compress_prediction.overapproximation_ratio <= 1.0


class TestGoldenFile:
    def test_pinned_predictions_match_regeneration(self):
        golden = json.loads(GOLDEN.read_text())
        assert sorted(golden) == sorted(SPEC95_NAMES)
        for name in SPEC95_NAMES:
            fresh = predict_coverage(build_workload(name).image)
            assert fresh.summary_dict() == golden[name], (
                f"{name}: static prediction drifted from the golden "
                f"file; regenerate tests/golden/predict_spec95.json "
                f"if the change is intentional")


class TestPredictionShape:
    def test_entry_region_leads_and_starts_are_unique(
            self, compress_prediction):
        regions = compress_prediction.regions
        assert regions[0].kind == "entry"
        pcs = [r.start_pc for r in regions]
        assert len(pcs) == len(set(pcs))
        assert all(r.trace_count >= 0 for r in regions)

    def test_start_points_are_covered_and_live(self, compress_prediction):
        assert compress_prediction.start_pcs \
            <= compress_prediction.covered_pcs
        assert compress_prediction.entry in compress_prediction.start_pcs

    def test_to_dict_roundtrips_through_json(self, compress_prediction):
        payload = compress_prediction.to_dict()
        assert json.loads(json.dumps(payload, sort_keys=True)) == payload

    def test_determinism(self):
        a = predict_coverage(build_workload("ijpeg").image)
        b = predict_coverage(build_workload("ijpeg").image)
        assert a.to_dict() == b.to_dict()

    def test_format_prediction_headline(self, compress_prediction):
        text = format_prediction(compress_prediction, name="compress")
        assert text.startswith("static coverage prediction: compress")
        assert "trace start points" in text
        assert "exploration complete" in text


class TestBudgets:
    def test_exhausted_state_budget_marks_incomplete(self, monkeypatch):
        monkeypatch.setattr(predictor_mod, "MAX_TOTAL_STATES", 3)
        image = build_workload("compress").image
        prediction = predict_coverage(image)
        assert not prediction.complete

    def test_region_truncation_is_flagged_not_silent(self, monkeypatch):
        monkeypatch.setattr(predictor_mod, "MAX_REGION_STATES", 1)
        image = build_workload("compress").image
        prediction = predict_coverage(image)
        # Region budgets never weaken the whole-image claim ...
        assert prediction.complete
        # ... but every clamped region must say so.
        assert any(r.truncated for r in prediction.regions)

    def test_shared_facts_are_reused(self):
        image = build_workload("compress").image
        facts = StaticFacts(image)
        prediction = predict_coverage(image, facts=facts)
        # The facts instance supplied is the one used (cfg memoised).
        assert facts.cfg.procedures
        assert prediction.trace_count > 0
