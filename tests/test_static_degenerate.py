"""Degenerate and irreducible CFGs through the whole static pipeline.

Recovery, dominators, dataflow and the verifier must terminate and
produce identical results run-to-run on the shapes the generator never
emits but mutation/fuzzing can: self-loops, multi-entry (irreducible)
loops, unreachable-but-linked code, and empty procedures.  Property
tests draw small arbitrary control-flow skeletons; a subprocess test
pins PYTHONHASHSEED-independence of the whole analyze/predict output.
"""

import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import assemble
from repro.program import ProgramImage
from repro.static import (
    StaticFacts,
    analyze_image,
    irreducible_components,
    verify_image,
)

SRC = str(Path(__file__).resolve().parent.parent / "src")
BASE = 0x1000


def _image(source: str, procs: list[str]) -> ProgramImage:
    insts, labels = assemble(source, base=BASE)
    return ProgramImage(instructions=insts, code_base=BASE, entry=BASE,
                        labels={p: labels[p] for p in procs})


def _solve_everything(image: ProgramImage) -> dict:
    """Every analysis over every procedure; returns comparable state."""
    facts = StaticFacts(image)
    state: dict = {}
    for proc in facts.cfg.procedures:
        live = facts.liveness(proc)
        reach = facts.reaching(proc)
        const = facts.constants(proc)
        assert live.converged and reach.converged
        state[proc.name] = (
            live.in_facts, live.out_facts,
            reach.in_facts, reach.out_facts,
            repr(sorted(const.in_facts.items(),
                        key=lambda kv: kv[0])),
            facts.dominators(proc).idom,
            sorted(facts.trip_bounds(proc)),
        )
    return state


class TestDegenerateShapes:
    def test_self_loop(self):
        image = _image("""
        main:
        loop:
            addi r1, r1, 1
            j loop
        """, ["main"])
        state = _solve_everything(image)
        assert verify_image(image).findings is not None
        assert state == _solve_everything(image)

    def test_empty_procedure(self):
        """Two labels at one address: the first procedure is empty."""
        image = _image("""
        main:
            jal f
            halt
        f:
        g:
            jr ra
        """, ["main", "f", "g"])
        facts = StaticFacts(image)
        f = facts.cfg.procedure("f")
        assert f.start == f.end                    # genuinely empty
        _solve_everything(image)
        assert verify_image(image).ok

    def test_unreachable_but_linked_block(self):
        image = _image("""
        main:
            halt
            addi r1, r0, 1
            j main
        """, ["main"])
        _solve_everything(image)
        report = verify_image(image)
        assert "DC001" in {f.rule_id for f in report.findings}

    def test_multi_entry_loop_is_irreducible_but_converges(self):
        image = _image("""
        f:
            bne r1, r0, b
        a:
            addi r2, r2, 1
            j b
        b:
            addi r2, r2, 2
            beq r2, r3, done
            j a
        done:
            jr ra
        """, ["f"])
        facts = StaticFacts(image)
        proc = facts.cfg.procedure("f")
        assert irreducible_components(facts.dominators(proc))
        state = _solve_everything(image)
        assert state == _solve_everything(image)
        assert "CF001" in {f.rule_id
                           for f in verify_image(image).findings}


@st.composite
def _programs(draw) -> str:
    """Small arbitrary control-flow skeletons: every instruction is
    labelled so branches/jumps can target any point, producing
    self-loops, irreducible regions and unreachable blocks freely."""
    n = draw(st.integers(min_value=1, max_value=10))
    lines = ["main:"]
    for i in range(n):
        lines.append(f"L{i}:")
        kind = draw(st.sampled_from(["alu", "branch", "jump"]))
        if kind == "alu":
            rd = draw(st.integers(1, 6))
            rs = draw(st.integers(0, 6))
            imm = draw(st.integers(-4, 4))
            lines.append(f"    addi r{rd}, r{rs}, {imm}")
        elif kind == "branch":
            a = draw(st.integers(0, 6))
            b = draw(st.integers(0, 6))
            target = draw(st.integers(0, n - 1))
            lines.append(f"    beq r{a}, r{b}, L{target}")
        else:
            target = draw(st.integers(0, n - 1))
            lines.append(f"    j L{target}")
    lines.append("    halt")
    return "\n".join(lines)


class TestArbitraryControlFlow:
    @settings(max_examples=30, deadline=None)
    @given(source=_programs())
    def test_fixpoints_terminate(self, source):
        image = _image(source, ["main"])
        _solve_everything(image)            # asserts convergence inside
        verify_image(image)                 # and no rule crashes

    @settings(max_examples=15, deadline=None)
    @given(source=_programs())
    def test_run_to_run_identity(self, source):
        image_a = _image(source, ["main"])
        image_b = _image(source, ["main"])
        assert _solve_everything(image_a) == _solve_everything(image_b)
        report_a = analyze_image(image_a, name="prop")
        report_b = analyze_image(image_b, name="prop")
        assert report_a.to_json() == report_b.to_json()


class TestHashseedDeterminism:
    """Satellite: the whole static pipeline — dominators, dataflow,
    verifier, predictor — is byte-identical across interpreters with
    different PYTHONHASHSEED (mirrors the workload-generator check)."""

    SNIPPET = (
        "import hashlib, json;"
        "from repro.api import analyze, predict;"
        "a = analyze({name!r}).to_json();"
        "p = json.dumps(predict({name!r}).to_dict(), sort_keys=True);"
        "print(hashlib.sha256((a + p).encode()).hexdigest())"
    )

    def _digest_in_subprocess(self, name: str, hashseed: str) -> str:
        proc = subprocess.run(
            [sys.executable, "-c", self.SNIPPET.format(name=name)],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": SRC, "PYTHONHASHSEED": hashseed,
                 "PATH": "/usr/bin:/bin"})
        return proc.stdout.strip()

    def test_analyze_and_predict_hashseed_independent(self):
        first = self._digest_in_subprocess("compress", "1")
        second = self._digest_in_subprocess("compress", "4242")
        assert first == second
