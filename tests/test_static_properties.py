"""Property-style sweeps: the verifier is clean on every built-in
profile across seeds, and the analyze report is deterministic."""

import dataclasses

import pytest

from repro.cli import main
from repro.static import Severity, analyze_image, verify_image
from repro.workloads import SPEC95_NAMES
from repro.workloads.generator import generate
from repro.workloads.spec95 import SPEC95_PROFILES

SEED_OFFSETS = (0, 1, 2)


@pytest.mark.parametrize("name", SPEC95_NAMES)
@pytest.mark.parametrize("offset", SEED_OFFSETS)
def test_every_profile_and_seed_verifies_clean(name, offset):
    profile = SPEC95_PROFILES[name]
    profile = dataclasses.replace(profile, seed=profile.seed + offset)
    # generate() itself gates on ERROR findings; assert the stronger
    # property that there are no ERROR or WARNING findings.  INFO is
    # allowed: generator filler emits write-after-write stores (DF002)
    # by design, and fuzz-style degenerate loops are legal.
    workload = generate(profile)
    report = verify_image(workload.image, intents=workload.branch_intents)
    assert [f for f in report.findings
            if f.severity is not Severity.INFO] == []


@pytest.mark.parametrize("name", SPEC95_NAMES)
def test_seeds_exist_for_every_profile(name):
    workload = generate(SPEC95_PROFILES[name])
    report = analyze_image(workload.image, name=name)
    assert report.seeds, "every profile must yield static region seeds"
    kinds = {s.kind for s in report.seeds}
    assert kinds <= {"loop_exit", "call_return"}
    # Seed addresses are unique and inside the image.
    pcs = [s.pc for s in report.seeds]
    assert len(pcs) == len(set(pcs))
    assert all(pc in workload.image for pc in pcs)


class TestDeterminism:
    def test_analyze_json_byte_identical(self, capsys):
        assert main(["analyze", "compress", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["analyze", "compress", "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert first.strip().startswith("{")

    def test_report_dict_stable_across_regeneration(self):
        runs = []
        for _ in range(2):
            workload = generate(SPEC95_PROFILES["perl"])
            report = analyze_image(workload.image,
                                   intents=workload.branch_intents,
                                   name="perl")
            runs.append(report.to_json())
        assert runs[0] == runs[1]
