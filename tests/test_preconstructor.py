"""Tests for the static-code trace constructor (paper §3.4).

The program under test mirrors the paper's Figure 2/3 example: a caller
invokes a procedure containing a loop and an if-then-else diamond, then
continues with a loop of its own.  The key property verified is
*alignment*: traces the constructor builds from the region start point
(the instruction after the JAL) must be exactly the traces the
processor later needs, identity-for-identity.
"""

import pytest

from repro.branch import BimodalPredictor
from repro.caches import InstructionCache
from repro.core import ConstructorConfig, Region, StartPoint, TraceConstructor
from repro.core.region import RegionState
from repro.caches import PrefetchCache
from repro.engine import FunctionalEngine
from repro.isa import assemble
from repro.program import ProgramImage
from repro.trace import traces_of_stream

# Figure 2/3 analogue: main calls f (loop + diamond), then h/i-loop/j.
EXAMPLE = """
main:
    addi r9, r0, 3        # outer repetitions
outer:
    addi r1, r0, 0
    jal  f                # <- pushes region start point (after_call)
after_call:
    addi r5, r0, 0        # block h
loop_i:
    addi r5, r5, 1        # block i
    addi r6, r5, 0
    addi r7, r6, 1
    blt  r5, r2, loop_i   # i loop back edge (Br2 analogue)
    addi r8, r0, 7        # block j
    addi r9, r9, -1
    bne  r9, r0, outer
    jr   ra

f:
    addi r2, r0, 4        # block b
loop_c:
    addi r1, r1, 1        # block c
    blt  r1, r2, loop_c   # loop back edge (Br1 analogue)
    andi r3, r1, 1        # diamond entry, block d
    beq  r3, r0, f_else
    addi r4, r0, 1        # block e
    j    f_join
f_else:
    addi r4, r0, 2        # block f
f_join:
    add  r4, r4, r1       # block g
    jr   ra
"""


@pytest.fixture(scope="module")
def example():
    insts, labels = assemble(EXAMPLE, base=0x1000)
    image = ProgramImage(instructions=insts, code_base=0x1000, entry=0x1000,
                        labels=labels)
    stream = FunctionalEngine(image).run(10_000)
    return image, labels, stream


def _trained_bimodal(stream) -> BimodalPredictor:
    predictor = BimodalPredictor(entries=4096, initial=1)
    for record in stream:
        if record.inst.is_conditional_branch:
            predictor.update(record.pc, record.taken)
    return predictor


def _run_constructor(image, bimodal, start_pc, *,
                     config=None, capacity=256):
    icache = InstructionCache()
    region = Region(seq=0, start_pc=start_pc,
                    prefetch_cache=PrefetchCache(capacity))
    constructor = TraceConstructor(image, icache, bimodal, config=config)
    built = []
    while True:
        if not constructor.busy:
            point = region.pop_start_point()
            if point is None or not region.active:
                break
            constructor.assign(region, point)
        result = constructor.step()
        if result.completed is not None:
            built.append(result.completed)
        if result.new_start_point is not None:
            region.push_start_point(result.new_start_point)
        if result.region_fetch_bound:
            region.complete()
        if result.finished:
            constructor.release()
    return built, region, icache


class TestConstructorAlignment:
    def test_preconstructed_traces_align_with_demand(self, example):
        """Every trace the processor needs from the region start point
        onward (until leaving the region) is among the preconstructed
        traces, with an exactly matching identity."""
        image, labels, stream = example
        bimodal = _trained_bimodal(stream)
        start_pc = labels["after_call"]
        built, _, _ = _run_constructor(image, bimodal, start_pc)
        built_ids = {t.trace_id for t in built}

        demand = traces_of_stream(stream)
        # Demand traces that begin exactly at the region start point:
        region_demand = [t for t in demand if t.start_pc == start_pc]
        assert region_demand, "stream never reaches the start point?"
        matched = [t for t in region_demand if t.trace_id in built_ids]
        assert matched, (
            "no demand trace at the region start point was preconstructed")

    def test_constructed_content_matches_demand_content(self, example):
        """Identity match implies content match (no ID collisions)."""
        image, labels, stream = example
        bimodal = _trained_bimodal(stream)
        built, _, _ = _run_constructor(image, bimodal, labels["after_call"])
        demand_by_id = {t.trace_id: t for t in traces_of_stream(stream)}
        overlap = 0
        for trace in built:
            if trace.trace_id in demand_by_id:
                overlap += 1
                assert demand_by_id[trace.trace_id].pcs == trace.pcs
        assert overlap > 0

    def test_strongly_biased_branches_follow_single_path(self, example):
        """With all branches trained strongly, the constructor never
        backtracks, so each start point yields a linear set of traces."""
        image, labels, stream = example
        bimodal = _trained_bimodal(stream)
        # Saturate every branch counter further (make everything strong).
        for record in stream:
            if record.inst.is_conditional_branch:
                for _ in range(3):
                    bimodal.update(record.pc, record.taken)
        built, _, _ = _run_constructor(image, bimodal, labels["after_call"])
        # Weak-branch forks are impossible; outcome vectors must be
        # consistent with the trained directions.
        for trace in built:
            index = 0
            for pc, inst in zip(trace.pcs, trace.instructions):
                if inst.is_conditional_branch:
                    # Strong bias: trace follows the trained direction.
                    assert trace.trace_id.outcomes[index] == \
                        bimodal.peek(pc)
                    index += 1

    def test_untrained_branches_fork_both_paths(self, example):
        """With a cold (weak) predictor, the constructor explores both
        directions of the diamond and produces sibling traces."""
        image, labels, stream = example
        bimodal = BimodalPredictor(entries=4096, initial=1)  # all weak
        built, _, _ = _run_constructor(image, bimodal, labels["f"])
        starts = {}
        for trace in built:
            starts.setdefault(trace.start_pc, set()).add(
                trace.trace_id.outcomes)
        # At least one start point produced differing outcome vectors.
        assert any(len(vectors) > 1 for vectors in starts.values())

    def test_never_emits_partial_traces(self, example):
        """Resource bounds discard partial work instead of emitting a
        colliding short trace."""
        image, labels, stream = example
        bimodal = _trained_bimodal(stream)
        config = ConstructorConfig(max_walk_instructions=6)
        built, _, _ = _run_constructor(image, bimodal, labels["after_call"],
                                       config=config)
        demand_by_id = {t.trace_id: t for t in traces_of_stream(stream)}
        for trace in built:
            if trace.trace_id in demand_by_id:
                assert demand_by_id[trace.trace_id].pcs == trace.pcs

    def test_fetch_bound_terminates_region(self, example):
        image, labels, stream = example
        bimodal = BimodalPredictor(entries=4096, initial=1)  # cold: forks
        # One-line prefetch cache: walking procedure f crosses a 64-byte
        # line boundary, so the fill-up bound must fire.
        built, region, _ = _run_constructor(
            image, bimodal, labels["f"], capacity=16)
        assert region.state is RegionState.COMPLETED
        assert region.prefetch_cache.full

    def test_icache_traffic_attributed_to_preconstruct(self, example):
        image, labels, stream = example
        bimodal = _trained_bimodal(stream)
        _, _, icache = _run_constructor(image, bimodal, labels["after_call"])
        traffic = icache.client_traffic("preconstruct")
        assert traffic.lines_accessed > 0
        assert traffic.misses > 0  # cold I-cache

    def test_indirect_termination(self, example):
        """Paths terminate at returns whose calls were not observed in
        the region (statically opaque targets)."""
        image, labels, stream = example
        bimodal = _trained_bimodal(stream)
        # Region rooted at f's entry: its final `jr ra` has no matching
        # call inside the region, so no start point beyond it may exist.
        built, region, _ = _run_constructor(image, bimodal, labels["f"])
        f_first = labels["f"]
        f_end = max(pc for trace in built for pc in trace.pcs)
        for trace in built:
            for pc in trace.pcs:
                assert pc >= f_first, "constructor escaped through a return"
