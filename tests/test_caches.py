"""Unit tests for the cache substrate."""

import pytest

from repro.caches import (
    FIFO,
    LRU,
    ICacheConfig,
    InstructionCache,
    PerfectL2,
    PrefetchCache,
    RandomReplacement,
    SetAssociativeCache,
    make_policy,
)


class TestLRU:
    def test_victim_is_least_recent(self):
        lru = LRU(num_sets=1, ways=4)
        for way in range(4):
            lru.on_fill(0, way)
        lru.on_access(0, 0)      # 0 becomes most recent
        assert lru.victim(0) == 1

    def test_fill_refreshes(self):
        lru = LRU(num_sets=2, ways=2)
        lru.on_fill(1, 0)
        lru.on_fill(1, 1)
        assert lru.victim(1) == 0
        lru.on_fill(1, 0)
        assert lru.victim(1) == 1


class TestFIFO:
    def test_access_does_not_refresh(self):
        fifo = FIFO(num_sets=1, ways=2)
        fifo.on_fill(0, 0)
        fifo.on_fill(0, 1)
        fifo.on_access(0, 0)
        assert fifo.victim(0) == 0  # still the first in


class TestPolicyFactory:
    def test_make_policy_names(self):
        assert isinstance(make_policy("lru", 2, 2), LRU)
        assert isinstance(make_policy("fifo", 2, 2), FIFO)
        assert isinstance(make_policy("random", 2, 2), RandomReplacement)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("belady", 2, 2)


class TestSetAssociativeCache:
    def test_hit_after_insert(self):
        cache = SetAssociativeCache(num_sets=4, ways=2)
        cache.insert("a", 1)
        assert cache.lookup("a") == 1
        assert cache.stats.hits == 1

    def test_miss_counted(self):
        cache = SetAssociativeCache(num_sets=4, ways=2)
        assert cache.lookup("nope") is None
        assert cache.stats.misses == 1

    def test_eviction_within_set(self):
        # Single set: third insert must evict the LRU entry.
        cache = SetAssociativeCache(num_sets=1, ways=2)
        cache.insert("a", 1)
        cache.insert("b", 2)
        cache.lookup("a")  # refresh a
        evicted = cache.insert("c", 3)
        assert evicted == ("b", 2)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_reinsert_overwrites_in_place(self):
        cache = SetAssociativeCache(num_sets=1, ways=2)
        cache.insert("a", 1)
        assert cache.insert("a", 9) is None
        assert cache.peek("a") == 9
        assert cache.occupancy() == 1

    def test_peek_does_not_count(self):
        cache = SetAssociativeCache(num_sets=2, ways=2)
        cache.insert("a", 1)
        cache.peek("a")
        assert cache.stats.accesses == 0

    def test_invalidate(self):
        cache = SetAssociativeCache(num_sets=2, ways=2)
        cache.insert("a", 1)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert "a" not in cache

    def test_capacity_and_items(self):
        cache = SetAssociativeCache(num_sets=4, ways=2,
                                    index_fn=lambda k: k)
        for key in range(8):
            cache.insert(key, key * 10)
        assert cache.capacity == 8
        assert cache.occupancy() == 8
        assert dict(cache.items()) == {k: k * 10 for k in range(8)}


class TestInstructionCache:
    def test_geometry(self):
        config = ICacheConfig()
        assert config.num_sets == 256        # 64KB / (4 ways * 64B)
        assert config.instructions_per_line == 16

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            ICacheConfig(size_bytes=1000).num_sets

    def test_miss_then_hit(self):
        icache = InstructionCache()
        latency, missed = icache.fetch_line(0x1000, "slow_path")
        assert missed and latency == 10
        latency, missed = icache.fetch_line(0x1004, "slow_path")
        assert not missed and latency == 1  # same 64B line

    def test_per_client_traffic(self):
        icache = InstructionCache()
        icache.fetch_line(0x1000, "preconstruct", instructions=0)
        icache.fetch_line(0x1000, "slow_path", instructions=16)
        pre = icache.client_traffic("preconstruct")
        slow = icache.client_traffic("slow_path")
        assert pre.misses == 1 and slow.misses == 0
        assert slow.instructions_supplied == 16
        assert icache.total_misses == 1

    def test_prefetch_side_effect_benefits_slow_path(self):
        """A line touched by preconstruction later hits for the slow path
        (the Table 3 effect)."""
        icache = InstructionCache()
        icache.fetch_line(0x2000, "preconstruct")
        _, missed = icache.fetch_line(0x2000, "slow_path")
        assert not missed

    def test_contains_line_nondestructive(self):
        icache = InstructionCache()
        assert not icache.contains_line(0x1000)
        icache.fetch_line(0x1000, "slow_path")
        assert icache.contains_line(0x103C)  # same line
        assert icache.total_misses == 1


class TestPrefetchCache:
    def test_fill_up_and_refuse(self):
        cache = PrefetchCache(capacity_instructions=32, line_bytes=64)
        assert cache.capacity_lines == 2
        assert cache.add_line(0x1000)
        assert cache.add_line(0x1040)
        assert cache.full
        assert not cache.add_line(0x2000)   # full: refused
        assert cache.add_line(0x1000)       # already present: fine

    def test_contains_by_line(self):
        cache = PrefetchCache()
        cache.add_line(0x1010)
        assert cache.contains(0x103C)
        assert not cache.contains(0x1040)

    def test_reset(self):
        cache = PrefetchCache(capacity_instructions=16)
        cache.add_line(0x1000)
        cache.reset()
        assert cache.occupancy_lines == 0
        assert not cache.contains(0x1000)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PrefetchCache(capacity_instructions=0)
        with pytest.raises(ValueError):
            PrefetchCache(capacity_instructions=10)  # not whole lines


class TestPerfectL2:
    def test_always_hits_with_fixed_latency(self):
        l2 = PerfectL2()
        assert l2.access() == 10
        assert l2.access() == 10
        assert l2.accesses == 2
