"""Unit tests for the ISA: opcodes, instruction classification, registers."""

import pytest

from repro.isa import (
    INSTRUCTION_BYTES,
    Instruction,
    Kind,
    Opcode,
    RA,
    ZERO,
    info,
    parse_register,
    register_name,
    ret,
)


class TestRegisters:
    def test_named_registers_parse(self):
        assert parse_register("ra") == RA
        assert parse_register("zero") == ZERO
        assert parse_register("r5") == 5
        assert parse_register("$7") == 7

    def test_register_names_round_trip(self):
        for reg in range(32):
            assert parse_register(register_name(reg)) == reg

    def test_unknown_register_raises(self):
        with pytest.raises(ValueError):
            parse_register("r32")
        with pytest.raises(ValueError):
            parse_register("bogus")


class TestClassification:
    def test_branch_is_conditional(self):
        inst = Instruction(Opcode.BNE, rs1=1, rs2=2, imm=-16)
        assert inst.is_conditional_branch
        assert inst.is_control
        assert inst.is_backward_branch()

    def test_forward_branch_is_not_backward(self):
        inst = Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=32)
        assert not inst.is_backward_branch()

    def test_jal_is_direct_call(self):
        inst = Instruction(Opcode.JAL, imm=0x2000)
        assert inst.is_call
        assert not inst.is_indirect
        assert inst.taken_target(0x1000) == 0x2000

    def test_jalr_is_indirect_call(self):
        inst = Instruction(Opcode.JALR, rd=RA, rs1=5)
        assert inst.is_call
        assert inst.is_indirect
        assert inst.taken_target(0x1000) is None

    def test_ret_is_jr_ra(self):
        inst = ret()
        assert inst.op is Opcode.JR
        assert inst.is_return
        assert inst.is_indirect

    def test_jr_through_other_register_is_not_return(self):
        inst = Instruction(Opcode.JR, rs1=9)
        assert not inst.is_return
        assert inst.is_indirect

    def test_branch_target_is_pc_relative(self):
        inst = Instruction(Opcode.BLT, rs1=1, rs2=2, imm=-64)
        assert inst.taken_target(0x1100) == 0x1100 - 64

    def test_fall_through(self):
        inst = Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3)
        assert inst.fall_through(0x1000) == 0x1000 + INSTRUCTION_BYTES


class TestRegisterUsage:
    def test_alu_sources_and_destination(self):
        inst = Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2)
        assert inst.source_registers() == (1, 2)
        assert inst.destination_register() == 3

    def test_zero_register_is_filtered(self):
        inst = Instruction(Opcode.ADD, rd=0, rs1=0, rs2=2)
        assert inst.source_registers() == (2,)
        assert inst.destination_register() is None

    def test_store_reads_both_but_writes_nothing(self):
        inst = Instruction(Opcode.SW, rs1=4, rs2=5, imm=8)
        assert set(inst.source_registers()) == {4, 5}
        assert inst.destination_register() is None

    def test_immediate_op_reads_one(self):
        inst = Instruction(Opcode.ADDI, rd=1, rs1=2, imm=7)
        assert inst.source_registers() == (2,)


class TestOpInfo:
    def test_latencies_match_r10000_model(self):
        assert info(Opcode.ADD).latency == 1
        assert info(Opcode.MUL).latency == 3
        assert info(Opcode.DIV).latency == 20
        assert info(Opcode.LW).latency == 2

    def test_every_opcode_has_info(self):
        for op in Opcode:
            assert info(op) is not None

    def test_kind_partitions(self):
        assert info(Opcode.JAL).kind is Kind.CALL
        assert info(Opcode.JR).kind is Kind.JUMP_INDIRECT
        assert info(Opcode.LW).kind is Kind.LOAD
        assert info(Opcode.HALT).kind is Kind.HALT

    def test_with_fields_rewrite(self):
        inst = Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2)
        fused = inst.with_fields(op=Opcode.SADD, sh1=2)
        assert fused.op is Opcode.SADD
        assert fused.sh1 == 2
        assert inst.op is Opcode.ADD  # original untouched
