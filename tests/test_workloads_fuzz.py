"""Tests for the fuzz profile sampler and seeded generator determinism."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.workloads import (
    FUZZ_PREFIX,
    WorkloadProfile,
    build_workload,
    fuzz_profile,
    fuzz_seed_of,
    generate,
    is_fuzz_name,
    profile_for,
)
from repro.workloads.fuzz import DEGENERATE_SHAPES, _apply_shape

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestFuzzNames:
    def test_round_trip(self):
        assert is_fuzz_name("fuzz-0")
        assert is_fuzz_name("fuzz-123")
        assert fuzz_seed_of("fuzz-123") == 123
        assert f"{FUZZ_PREFIX}7" == "fuzz-7"

    @pytest.mark.parametrize("name", ["gcc", "fuzz", "fuzz-", "fuzz-x",
                                      "fuzz-1.5", "fuzz--3", "FUZZ-1"])
    def test_non_fuzz_names_rejected(self, name):
        assert not is_fuzz_name(name)

    def test_profile_for_dispatches(self):
        assert profile_for("fuzz-9") == fuzz_profile(9)
        assert profile_for("gcc").name == "gcc"
        with pytest.raises(ValueError, match="fuzz"):
            profile_for("no-such-benchmark")

    def test_profile_for_seed_override(self):
        assert profile_for("fuzz-9", seed=42).seed == 42

    def test_build_workload_accepts_fuzz_names(self):
        workload = build_workload("fuzz-2")
        assert workload.image.code_size > 0


class TestFuzzSampler:
    def test_profiles_are_pure_functions_of_the_seed(self):
        for seed in range(50):
            assert fuzz_profile(seed) == fuzz_profile(seed)

    def test_every_sampled_profile_is_valid(self):
        # WorkloadProfile.__post_init__ enforces the invariants; the
        # sampler must never trip them.
        for seed in range(200):
            profile = fuzz_profile(seed)
            assert profile.name == f"fuzz-{seed}"

    def test_seeds_explore_distinct_shapes(self):
        profiles = {fuzz_profile(seed) for seed in range(50)}
        assert len(profiles) == 50

    def test_degenerate_shapes_keep_profiles_valid(self):
        import random

        base = fuzz_profile(0)
        for shape in DEGENERATE_SHAPES:
            shaped = _apply_shape(base, shape, random.Random(1))
            assert isinstance(shaped, WorkloadProfile)

    def test_sampled_profiles_generate_and_verify(self):
        # A handful of fuzz profiles through the (verifier-gated)
        # generator: the sampler's ranges must stay generatable.
        for seed in (0, 1, 17):
            workload = generate(fuzz_profile(seed))
            assert workload.image.code_size > 0


class TestSeededDeterminism:
    """Satellite: byte-identical images across fresh interpreters."""

    SNIPPET = (
        "from repro.workloads import generate, profile_for;"
        "print(generate(profile_for({name!r})).image.digest())"
    )

    def _digest_in_subprocess(self, name: str, hashseed: str) -> str:
        proc = subprocess.run(
            [sys.executable, "-c", self.SNIPPET.format(name=name)],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": SRC, "PYTHONHASHSEED": hashseed,
                 "PATH": "/usr/bin:/bin"})
        return proc.stdout.strip()

    @pytest.mark.parametrize("name", ["fuzz-5", "compress"])
    def test_image_identical_across_interpreters(self, name):
        first = self._digest_in_subprocess(name, "1")
        second = self._digest_in_subprocess(name, "4242")
        assert first == second
        # And the in-process generation agrees with both.
        assert generate(profile_for(name)).image.digest() == first

    def test_digest_sees_every_field(self):
        image = generate(profile_for("fuzz-5")).image
        baseline = image.digest()
        image.data[0x40_0000 + 4] = (image.data.get(0x40_0000 + 4, 0) + 1)
        assert image.digest() != baseline
