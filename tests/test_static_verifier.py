"""Mutation self-tests: corrupt a generated image, assert the verifier
catches each corruption with the right rule ID."""

import pytest

from repro.isa import INSTRUCTION_BYTES, Opcode, assemble, nop
from repro.program import ProgramImage
from repro.static import RecoveredCFG, Severity, StaticCallGraph, verify_image
from repro.workloads.generator import (
    WorkloadVerificationError,
    generate,
)
from repro.workloads.spec95 import SPEC95_PROFILES


@pytest.fixture
def workload():
    """A small, verifier-clean generated workload (fresh per test so
    mutations cannot leak between tests)."""
    return generate(SPEC95_PROFILES["compress"])


def _rule_ids(report):
    return {f.rule_id for f in report.findings}


def _inst_index(image: ProgramImage, pc: int) -> int:
    return (pc - image.code_base) // INSTRUCTION_BYTES


def _reachable_return_pc(image: ProgramImage, proc_name: str) -> int:
    """PC of a reachable return in ``proc_name``."""
    cfg = RecoveredCFG(image)
    proc = cfg.procedure(proc_name)
    for start in sorted(cfg.reachable_blocks(proc)):
        block = cfg.blocks[start]
        if block.terminator == "return":
            return block.end - INSTRUCTION_BYTES
    raise AssertionError(f"no reachable return in {proc_name}")


class TestCleanBaseline:
    def test_generated_workload_is_clean(self, workload):
        """No ERROR or WARNING findings on generated code.  INFO-level
        findings are permitted: the generator's filler instructions
        produce write-after-write stores (DF002) by design."""
        report = verify_image(workload.image,
                              intents=workload.branch_intents)
        assert [f for f in report.findings
                if f.severity is not Severity.INFO] == []
        assert report.ok
        assert {f.rule_id for f in report.findings} <= {"DF002"}

    def test_rules_all_ran(self, workload):
        report = verify_image(workload.image)
        assert set(report.rules_run) == {
            "SD001", "SD002", "SD003", "SD004", "SD005",
            "JT001", "JT002", "DC001", "CF001", "CF002", "BB001",
            "DF001", "DF002", "DF003", "CP001", "LT001"}
        assert len(report.rules_run) >= 16


class TestMutations:
    def test_clobbered_return_flags_sd001(self, workload):
        """RET -> NOP: control runs across the procedure boundary."""
        image = workload.image
        # p0 is live (called from main) and not the last procedure.
        ret_pc = _reachable_return_pc(image, "p0")
        image.instructions[_inst_index(image, ret_pc)] = nop()
        report = verify_image(image)
        assert "SD001" in _rule_ids(report)
        finding = report.by_rule("SD001")[0]
        assert finding.severity is Severity.ERROR
        assert finding.procedure == "p0"

    def test_never_returning_callee_flags_sd002(self, workload):
        """RET -> J <own entry>: callable procedure can never return."""
        image = workload.image
        cfg = RecoveredCFG(image)
        ret_pc = _reachable_return_pc(image, "p0")
        entry = cfg.procedure("p0").start
        image.instructions[_inst_index(image, ret_pc)] = (
            image.instructions[_inst_index(image, ret_pc)].with_fields(
                op=Opcode.J, rs1=0, imm=entry))
        report = verify_image(image)
        assert "SD002" in _rule_ids(report)
        assert report.by_rule("SD002")[0].procedure == "p0"

    def test_recursion_flags_sd003(self):
        source = """
        main:
            jal a
            halt
        a:
            jal a
            jr ra
        """
        insts, labels = assemble(source, base=0x1000)
        image = ProgramImage(instructions=insts, code_base=0x1000,
                             entry=0x1000, labels=labels)
        report = verify_image(image)
        assert "SD003" in _rule_ids(report)
        assert "unbounded" in report.by_rule("SD003")[0].message

    def test_excess_call_depth_flags_sd003(self, workload):
        graph = StaticCallGraph(RecoveredCFG(workload.image))
        assert graph.max_call_depth is not None
        report = verify_image(workload.image,
                              ras_depth=graph.max_call_depth - 1)
        assert "SD003" in _rule_ids(report)
        assert "exceeds" in report.by_rule("SD003")[0].message

    def test_misaligned_table_entry_flags_jt001(self):
        """Knock a jump-table relocation off the instruction grid."""
        wl = generate(SPEC95_PROFILES["perl"])  # perl has fptr tables
        image = wl.image
        assert image.relocs
        addr = next(iter(image.relocs))
        image.relocs[addr] += 2
        image.data[addr] += 2
        report = verify_image(image)
        assert "JT001" in _rule_ids(report)
        assert report.by_rule("JT001")[0].severity is Severity.ERROR

    def test_orphan_block_flags_dc001(self, workload):
        """Unreachable code appended inside the last live procedure."""
        image = workload.image
        image.instructions.extend([nop(), nop()])
        report = verify_image(image)
        assert "DC001" in _rule_ids(report)
        finding = report.by_rule("DC001")[0]
        assert "2 unreachable instructions" in finding.message

    def test_irreducible_cycle_flags_cf001(self):
        source = """
        f:
            bne r1, r0, b
        a:
            addi r2, r2, 1
            j b
        b:
            addi r2, r2, 2
            beq r2, r3, done
            j a
        done:
            jr ra
        """
        insts, labels = assemble(source, base=0x1000)
        image = ProgramImage(instructions=insts, code_base=0x1000,
                             entry=0x1000, labels={"f": labels["f"]})
        report = verify_image(image)
        assert "CF001" in _rule_ids(report)

    def test_wild_jump_target_flags_cf002(self, workload):
        """Retarget a reachable direct jump outside the image."""
        image = workload.image
        cfg = RecoveredCFG(image)
        graph = StaticCallGraph(cfg)
        jump_pc = None
        for proc in cfg.procedures:
            if proc.name not in graph.live:
                continue
            for start in sorted(cfg.reachable_blocks(proc)):
                block = cfg.blocks[start]
                if block.terminator == "jump":
                    jump_pc = block.end - INSTRUCTION_BYTES
                    break
            if jump_pc is not None:
                break
        assert jump_pc is not None
        idx = _inst_index(image, jump_pc)
        image.instructions[idx] = image.instructions[idx].with_fields(
            imm=image.code_end + 64)
        report = verify_image(image)
        assert "CF002" in _rule_ids(report)
        assert report.by_rule("CF002")[0].severity is Severity.ERROR

    def test_flipped_bias_mask_flags_bb001(self):
        """Weaken a strong diamond's test mask behind the generator's
        back; the intent cross-check must notice."""
        wl = generate(SPEC95_PROFILES["compress"])
        image = wl.image
        strong_pc = next(pc for pc, kind in wl.branch_intents.items()
                         if kind == "diamond_strong")
        andi_idx = _inst_index(image, strong_pc - INSTRUCTION_BYTES)
        andi = image.instructions[andi_idx]
        assert andi.op is Opcode.ANDI and andi.imm == 63
        image.instructions[andi_idx] = andi.with_fields(imm=1)
        report = verify_image(image, intents=wl.branch_intents)
        assert "BB001" in _rule_ids(report)
        finding = report.by_rule("BB001")[0]
        assert finding.severity is Severity.ERROR
        assert finding.pc == strong_pc

    def test_intent_without_branch_flags_bb001(self, workload):
        image = workload.image
        # Claim an intent at a non-branch instruction (the entry stub).
        report = verify_image(image,
                              intents={image.code_base: "loop_back"})
        assert "BB001" in _rule_ids(report)


def _verify_source(source: str, procs: list[str]):
    """Assemble ``source`` at 0x1000 and verify the resulting image."""
    insts, labels = assemble(source, base=0x1000)
    image = ProgramImage(instructions=insts, code_base=0x1000,
                         entry=0x1000,
                         labels={p: labels[p] for p in procs})
    return verify_image(image)


class TestDataflowRules:
    """Positive + negative unit tests for the dataflow-backed rules
    (SD004/SD005/JT002/DF001-DF003/CP001/LT001) on hand-written
    programs whose facts are obvious by inspection."""

    # -- SD004: frame balance ------------------------------------------
    def test_unrestored_sp_flags_sd004(self):
        report = _verify_source("""
        main:
            jal f
            halt
        f:
            addi sp, sp, -8
            jr ra
        """, ["main", "f"])
        finding = report.by_rule("SD004")[0]
        assert finding.severity is Severity.ERROR
        assert "-8" in finding.message

    def test_balanced_frame_passes_sd004(self):
        report = _verify_source("""
        main:
            jal f
            halt
        f:
            addi sp, sp, -8
            addi sp, sp, 8
            jr ra
        """, ["main", "f"])
        assert report.findings == []

    # -- SD005: return-address integrity -------------------------------
    def test_clobbered_ra_flags_sd005(self):
        report = _verify_source("""
        main:
            jal f
            halt
        f:
            addi ra, r0, 4096
            jr ra
        """, ["main", "f"])
        assert report.by_rule("SD005")[0].severity is Severity.ERROR

    def test_untouched_ra_passes_sd005(self):
        report = _verify_source("""
        main:
            jal f
            halt
        f:
            addi r1, r0, 4096
            add r2, r1, r1
            jr ra
        """, ["main", "f"])
        assert "SD005" not in _rule_ids(report)

    # -- JT002: jump-table index range ---------------------------------
    def test_missing_table_reloc_flags_jt002(self):
        wl = generate(SPEC95_PROFILES["perl"])  # perl has fptr tables
        image = wl.image
        addr = next(iter(image.relocs))
        del image.relocs[addr]
        report = verify_image(image)
        finding = report.by_rule("JT002")[0]
        assert finding.severity is Severity.ERROR
        assert "no relocated code pointer" in finding.message

    def test_intact_tables_pass_jt002(self):
        wl = generate(SPEC95_PROFILES["perl"])
        assert "JT002" not in _rule_ids(verify_image(wl.image))

    # -- DF001: read-before-write --------------------------------------
    def test_uninitialised_read_flags_df001(self):
        report = _verify_source("""
        main:
            jal f
            halt
        f:
            add r2, r8, r9
            jr ra
        """, ["main", "f"])
        findings = report.by_rule("DF001")
        assert {f.severity for f in findings} == {Severity.WARNING}
        # One finding per register, at the first offending read.
        assert len(findings) == 2

    def test_initialised_read_passes_df001(self):
        report = _verify_source("""
        main:
            jal f
            halt
        f:
            addi r8, r0, 1
            add r2, r8, r8
            jr ra
        """, ["main", "f"])
        assert "DF001" not in _rule_ids(report)

    # -- DF002: dead stores --------------------------------------------
    def test_overwritten_value_flags_df002(self):
        report = _verify_source("""
        main:
            addi r1, r0, 1
            addi r1, r0, 2
            halt
        """, ["main"])
        finding = report.by_rule("DF002")[0]
        assert finding.severity is Severity.INFO
        assert finding.pc == 0x1000

    def test_consumed_value_passes_df002(self):
        report = _verify_source("""
        main:
            addi r1, r0, 1
            add r2, r1, r1
            halt
        """, ["main"])
        assert report.findings == []

    # -- DF003: live value clobbered by call ---------------------------
    def test_value_live_across_clobbering_call_flags_df003(self):
        report = _verify_source("""
        main:
            addi r2, r0, 1
            jal f
            add r3, r2, r2
            halt
        f:
            addi r2, r0, 7
            jr ra
        """, ["main", "f"])
        finding = report.by_rule("DF003")[0]
        assert finding.severity is Severity.WARNING
        assert "r2" in finding.message

    def test_non_clobbering_call_passes_df003(self):
        report = _verify_source("""
        main:
            addi r2, r0, 1
            jal f
            add r3, r2, r2
            halt
        f:
            addi r4, r0, 7
            jr ra
        """, ["main", "f"])
        assert "DF003" not in _rule_ids(report)

    # -- CP001: statically decided branches ----------------------------
    def test_constant_branch_flags_cp001(self):
        report = _verify_source("""
        main:
            addi r1, r0, 0
            beq r1, r0, out
            addi r3, r0, 1
        out:
            halt
        """, ["main"])
        finding = report.by_rule("CP001")[0]
        assert finding.severity is Severity.INFO
        assert "always taken" in finding.message

    def test_data_dependent_branch_passes_cp001(self):
        report = _verify_source("""
        main:
            beq r1, r0, out
            addi r3, r0, 1
        out:
            halt
        """, ["main"])
        assert "CP001" not in _rule_ids(report)

    # -- LT001: degenerate loop bounds ---------------------------------
    def test_single_trip_loop_flags_lt001(self):
        report = _verify_source("""
        main:
            addi r1, r0, 0
            addi r2, r0, 1
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """, ["main"])
        finding = report.by_rule("LT001")[0]
        assert finding.severity is Severity.INFO
        assert "never taken" in finding.message

    def test_real_loop_passes_lt001(self):
        report = _verify_source("""
        main:
            addi r1, r0, 0
            addi r2, r0, 5
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """, ["main"])
        assert "LT001" not in _rule_ids(report)

    # -- blanket negatives ---------------------------------------------
    @pytest.mark.parametrize("rule_id", [
        "SD001", "SD002", "SD003", "SD004", "SD005", "JT001", "JT002",
        "DC001", "CF001", "CF002", "BB001", "DF001", "DF003", "CP001",
        "LT001"])
    def test_rule_silent_on_clean_workload(self, workload, rule_id):
        """No false positives: a verifier-clean generated image yields
        no finding for any rule (DF002 excepted — generator filler
        emits dead stores by design, covered above)."""
        report = verify_image(workload.image,
                              intents=workload.branch_intents)
        assert rule_id not in _rule_ids(report)


class TestGeneratorGate:
    def test_generate_verifies_by_default(self):
        wl = generate(SPEC95_PROFILES["compress"])
        assert wl.branch_intents  # intents recorded and checked

    def test_gate_raises_on_broken_image(self, monkeypatch):
        """Force the verifier to see an ERROR during generation."""
        import repro.workloads.generator as gen_mod

        profile = SPEC95_PROFILES["compress"]

        original_layout = gen_mod.layout

        def broken_layout(*args, **kwargs):
            image = original_layout(*args, **kwargs)
            # Clobber a return so the gate has something to catch.
            pc = _reachable_return_pc(image, "p0")
            image.instructions[_inst_index(image, pc)] = nop()
            return image

        monkeypatch.setattr(gen_mod, "layout", broken_layout)
        with pytest.raises(WorkloadVerificationError) as err:
            generate(profile)
        assert any(f.rule_id == "SD001" for f in err.value.findings)

    def test_gate_can_be_disabled(self, monkeypatch):
        import repro.workloads.generator as gen_mod

        original_layout = gen_mod.layout

        def broken_layout(*args, **kwargs):
            image = original_layout(*args, **kwargs)
            pc = _reachable_return_pc(image, "p0")
            image.instructions[_inst_index(image, pc)] = nop()
            return image

        monkeypatch.setattr(gen_mod, "layout", broken_layout)
        wl = generate(SPEC95_PROFILES["compress"], verify=False)
        assert wl.image is not None
