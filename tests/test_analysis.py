"""Tests for the analysis layer: sweeps, tables, figures, charts."""

import pytest

from repro.analysis import (
    Figure5Point,
    StreamCache,
    bar_chart,
    compute_tables,
    figure5_series,
    figure5_sweep,
    format_all_tables,
    format_figure5,
    format_figure6,
    format_figure8,
    format_table,
    run_frontend_point,
    run_processor_point,
    series_table,
)
from repro.analysis.figures import ExtendedPipelineResult, SpeedupResult
from repro.analysis.tables import TableRow, TablesResult
from repro.runner import ExperimentSpec


@pytest.fixture(scope="module")
def cache():
    # Small budget: these tests exercise plumbing, not statistics.
    return StreamCache(instructions=8_000)


class TestStreamCache:
    def test_streams_are_memoised(self, cache):
        first = cache.stream("compress")
        second = cache.stream("compress")
        assert first is second
        assert len(first) == 8_000

    def test_images_are_memoised(self, cache):
        assert cache.image("compress") is cache.image("compress")

    def test_workload_seed_is_part_of_the_key(self, cache):
        assert cache.image("compress") is not cache.image("compress", 7)


class TestSweepRunners:
    def test_frontend_point(self, cache):
        spec = ExperimentSpec(benchmark="compress", tc_entries=64,
                              instructions=8_000)
        stats = run_frontend_point(cache, spec)
        assert stats.instructions == 8_000
        assert stats.traces > 0

    def test_processor_point(self, cache):
        spec = ExperimentSpec(benchmark="compress", tc_entries=64,
                              kind="processor", instructions=8_000)
        stats = run_processor_point(cache, spec)
        assert stats.cycles > 0
        assert stats.ipc > 0

    def test_loose_kwargs_are_gone(self, cache):
        # Removed after their DeprecationWarning cycle (runner redesign).
        with pytest.raises(TypeError, match="ExperimentSpec"):
            run_frontend_point(cache, "compress", 64, 32)
        with pytest.raises(TypeError, match="ExperimentSpec"):
            run_processor_point(cache, "compress", 64)

    def test_loose_config_helpers_are_gone(self):
        import repro.analysis

        assert not hasattr(repro.analysis, "frontend_config")
        assert not hasattr(repro.analysis, "processor_config")

    def test_figure5_sweep_grid(self, cache):
        points = figure5_sweep(cache, "compress", tc_sizes=(64, 128),
                               pb_sizes=(0, 32))
        assert len(points) == 4
        keys = {(p.tc_entries, p.pb_entries) for p in points}
        assert keys == {(64, 0), (64, 32), (128, 0), (128, 32)}


class TestFigureFormatting:
    def test_figure5_series_reshape(self):
        points = [
            Figure5Point("x", 64, 0, 10.0),
            Figure5Point("x", 128, 0, 8.0),
            Figure5Point("x", 64, 32, 7.0),
        ]
        xs, curves = figure5_series(points)
        assert xs == [64, 96, 128]
        assert curves["tc-only"] == [10.0, None, 8.0]
        assert curves["pb32"] == [None, 7.0, None]
        text = format_figure5("x", points)
        assert "tc-only" in text and "pb32" in text

    def test_figure6_formatting(self):
        results = [SpeedupResult("gcc", 1000, 950)]
        assert results[0].speedup_percent == pytest.approx(5.2631578947)
        assert "gcc" in format_figure6(results)

    def test_figure8_accessors(self):
        result = ExtendedPipelineResult(
            benchmark="go", base_cycles=1000, precon_cycles=960,
            preproc_cycles=900, combined_cycles=850)
        assert result.precon_percent == pytest.approx(4.1666, rel=1e-3)
        assert result.combined_percent > result.preproc_percent
        assert result.synergy == pytest.approx(
            result.combined_percent - result.sum_percent)
        assert "go" in format_figure8([result])


class TestTableFormatting:
    def test_change_percent(self):
        row = TableRow("gcc", baseline=200.0, preconstruction=150.0)
        assert row.change_percent == pytest.approx(-25.0)

    def test_zero_baseline_is_safe(self):
        assert TableRow("x", 0.0, 5.0).change_percent == 0.0

    def test_format_contains_labels(self):
        rows = [TableRow("gcc", 233.0, 181.0)]
        text = format_table(rows, 1)
        assert "Table 1" in text and "gcc" in text

    def test_compute_tables_smoke(self, cache):
        result = compute_tables(cache, benchmarks=("compress",))
        assert len(result.table1) == 1
        text = format_all_tables(result)
        assert "Table 3" in text


class TestCharts:
    def test_bar_chart_scales(self):
        text = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bar_chart_empty(self):
        assert bar_chart({}, title="t") == "t"

    def test_series_table_renders_none_as_dash(self):
        text = series_table("x", [1, 2], {"s": [1.0, None]})
        assert "-" in text
