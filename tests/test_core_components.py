"""Unit tests for start-point stack, regions, and preconstruction buffers."""

import pytest

from repro.caches import PrefetchCache
from repro.core import (
    PreconstructionBuffers,
    Region,
    RegionState,
    StartPoint,
    StartPointStack,
)
from repro.isa import Instruction, Opcode
from repro.trace import Trace, TraceID


def _trace(start_pc: int, length: int = 4) -> Trace:
    insts = tuple(Instruction(Opcode.NOP) for _ in range(length))
    pcs = tuple(start_pc + 4 * i for i in range(length))
    return Trace(trace_id=TraceID(start_pc, ()), instructions=insts,
                 pcs=pcs, next_pc=start_pc + 4 * length,
                 ends_in_call=False, ends_in_return=False)


class TestStartPointStack:
    def test_newest_first(self):
        stack = StartPointStack(depth=4)
        stack.push(0x100)
        stack.push(0x200)
        assert stack.pop_newest() == 0x200
        assert stack.pop_newest() == 0x100
        assert stack.pop_newest() is None

    def test_duplicate_top_suppressed(self):
        stack = StartPointStack(depth=4)
        assert stack.push(0x100)
        assert not stack.push(0x100)
        assert stack.duplicate_suppressed == 1
        assert len(stack) == 1

    def test_non_adjacent_duplicates_allowed(self):
        """Only the current top suppresses; an older identical entry is a
        fresh opportunity (the paper dedups against the top only)."""
        stack = StartPointStack(depth=4)
        stack.push(0x100)
        stack.push(0x200)
        assert stack.push(0x100)

    def test_overflow_discards_oldest(self):
        stack = StartPointStack(depth=2)
        stack.push(1)
        stack.push(2)
        stack.push(3)
        assert stack.overflow_discards == 1
        assert stack.entries() == (2, 3)

    def test_remove_reached(self):
        stack = StartPointStack(depth=4)
        stack.push(0x100)
        stack.push(0x200)
        assert stack.remove_reached(0x100)
        assert not stack.remove_reached(0x100)
        assert stack.entries() == (0x200,)

    def test_completed_memory_blocks_repush(self):
        stack = StartPointStack(depth=4, completed_memory=2)
        stack.mark_completed(0x300)
        assert not stack.push(0x300)
        assert stack.recently_completed(0x300)

    def test_completed_memory_is_bounded(self):
        stack = StartPointStack(depth=4, completed_memory=2)
        for pc in (1, 2, 3):
            stack.mark_completed(pc)
        assert not stack.recently_completed(1)
        assert stack.recently_completed(2)
        assert stack.recently_completed(3)


class TestRegion:
    def _region(self, seq=0, start=0x1000):
        return Region(seq=seq, start_pc=start,
                      prefetch_cache=PrefetchCache(64))

    def test_root_start_point_queued(self):
        region = self._region()
        point = region.pop_start_point()
        assert point == StartPoint(pc=0x1000)
        assert region.worklist_empty

    def test_visited_start_points_not_requeued(self):
        region = self._region()
        region.pop_start_point()
        assert region.push_start_point(StartPoint(pc=0x2000))
        assert not region.push_start_point(StartPoint(pc=0x2000))
        assert not region.push_start_point(StartPoint(pc=0x1000))  # root

    def test_same_pc_different_call_stack_is_distinct(self):
        region = self._region()
        assert region.push_start_point(StartPoint(0x2000, (0x100,)))
        assert region.push_start_point(StartPoint(0x2000, (0x200,)))

    def test_start_point_bound(self):
        region = Region(seq=0, start_pc=0x1000,
                        prefetch_cache=PrefetchCache(64), max_start_points=2)
        assert region.push_start_point(StartPoint(pc=0x2000))
        assert not region.push_start_point(StartPoint(pc=0x3000))

    def test_abandon_clears_worklist(self):
        region = self._region()
        region.abandon()
        assert region.state is RegionState.ABANDONED
        assert region.worklist_empty
        assert not region.push_start_point(StartPoint(pc=0x2000))

    def test_priority_active_beats_past_then_newest(self):
        old = self._region(seq=1)
        new = self._region(seq=5)
        done = self._region(seq=9)
        done.complete()
        ranked = sorted([done, old, new], key=Region.priority_key,
                        reverse=True)
        assert ranked == [new, old, done]

    def test_covers_tracks_prefetch_cache(self):
        region = self._region()
        assert not region.covers(0x5000)
        region.prefetch_cache.add_line(0x5000)
        assert region.covers(0x5004)


class TestPreconstructionBuffers:
    def test_probe_hit_and_take(self):
        buffers = PreconstructionBuffers(entries=8, ways=2)
        trace = _trace(0x1000)
        assert buffers.insert(trace, region_seq=0)
        assert buffers.probe(trace.trace_id) is trace
        assert buffers.take(trace.trace_id) is trace
        assert buffers.probe(trace.trace_id) is None
        assert buffers.stats.invalidations == 1

    def test_same_region_never_displaced(self):
        # One set only: two same-region traces fill it; the third fails.
        buffers = PreconstructionBuffers(entries=2, ways=2)
        assert buffers.insert(_trace(0x1000), region_seq=3)
        assert buffers.insert(_trace(0x2000), region_seq=3)
        assert not buffers.insert(_trace(0x3000), region_seq=3)
        assert buffers.stats.insert_failures == 1

    def test_lower_priority_region_displaced(self):
        priorities = {1: (0, 1), 2: (1, 2)}  # region 1 past, region 2 active
        buffers = PreconstructionBuffers(entries=2, ways=2,
                                         priority_fn=priorities.__getitem__)
        old = _trace(0x1000)
        buffers.insert(old, region_seq=1)
        buffers.insert(_trace(0x2000), region_seq=1)
        assert buffers.insert(_trace(0x3000), region_seq=2)
        assert buffers.stats.displaced == 1
        # One of region 1's traces is gone.
        remaining = [t.trace_id for t in buffers.resident_traces()]
        assert TraceID(0x3000, ()) in remaining
        assert len(remaining) == 2

    def test_reinsert_same_id_refreshes(self):
        buffers = PreconstructionBuffers(entries=4, ways=2)
        trace = _trace(0x1000)
        buffers.insert(trace, region_seq=0)
        assert buffers.insert(_trace(0x1000), region_seq=1)
        assert buffers.occupancy() == 1

    def test_contains_is_uncounted(self):
        buffers = PreconstructionBuffers(entries=4, ways=2)
        trace = _trace(0x1000)
        buffers.insert(trace, region_seq=0)
        assert buffers.contains(trace.trace_id)
        assert buffers.stats.probes == 0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            PreconstructionBuffers(entries=5, ways=2)
