"""Integration tests for the preconstruction engine (dispatch
observation, region lifecycle, buffer promotion)."""

import pytest

from repro.branch import BimodalPredictor
from repro.caches import InstructionCache
from repro.core import PreconstructionConfig, PreconstructionEngine
from repro.engine import FunctionalEngine
from repro.isa import assemble
from repro.program import ProgramImage
from repro.trace import TraceCache, traces_of_stream

SOURCE = """
main:
    addi r9, r0, 30
outer:
    addi r1, r0, 0
    jal  f
after_call:
    addi r5, r0, 0
loop_i:
    addi r5, r5, 1
    addi r6, r5, 0
    addi r7, r6, 1
    blt  r5, r2, loop_i
    addi r8, r0, 7
    addi r9, r9, -1
    bne  r9, r0, outer
    jr   ra
f:
    addi r2, r0, 5
loop_c:
    addi r1, r1, 1
    blt  r1, r2, loop_c
    andi r3, r1, 1
    beq  r3, r0, f_else
    addi r4, r0, 1
    j    f_join
f_else:
    addi r4, r0, 2
f_join:
    add  r4, r4, r1
    jr   ra
"""


@pytest.fixture()
def setup():
    insts, labels = assemble(SOURCE, base=0x1000)
    image = ProgramImage(instructions=insts, code_base=0x1000, entry=0x1000,
                        labels=labels)
    stream = FunctionalEngine(image).run(4000)
    traces = traces_of_stream(stream)
    icache = InstructionCache()
    trace_cache = TraceCache()
    bimodal = BimodalPredictor()
    engine = PreconstructionEngine(
        image=image, icache=icache, bimodal=bimodal,
        trace_cache=trace_cache,
        config=PreconstructionConfig(buffer_entries=128))
    return image, labels, traces, engine, trace_cache, bimodal


def _drive(traces, engine, trace_cache, bimodal, idle_per_trace=6):
    """Minimal frontend loop around the engine."""
    promoted = 0
    for trace in traces:
        if trace_cache.lookup(trace.trace_id) is None:
            if engine.probe_and_promote(trace.trace_id) is not None:
                promoted += 1
            else:
                trace_cache.insert(trace)
        engine.observe_dispatch(trace)
        engine.tick(idle_per_trace)
        index = 0
        for pc, inst in zip(trace.pcs, trace.instructions):
            if inst.is_conditional_branch:
                bimodal.update(pc, trace.trace_id.outcomes[index])
                index += 1
    return promoted


class TestEngineLifecycle:
    def test_calls_push_start_points(self, setup):
        image, labels, traces, engine, trace_cache, bimodal = setup
        engine.observe_dispatch(traces[0])  # contains the first JAL
        assert labels["after_call"] in engine.stack

    def test_regions_spawn_and_retire(self, setup):
        image, labels, traces, engine, trace_cache, bimodal = setup
        _drive(traces, engine, trace_cache, bimodal)
        stats = engine.stats
        assert stats.regions_started > 0
        assert (stats.regions_completed + stats.regions_abandoned
                + engine.active_region_count) == stats.regions_started

    def test_catch_up_abandons_regions(self, setup):
        image, labels, traces, engine, trace_cache, bimodal = setup
        _drive(traces, engine, trace_cache, bimodal)
        # The after_call region start is reached every outer iteration.
        assert engine.stats.regions_abandoned > 0

    def test_traces_get_constructed_and_deduped(self, setup):
        image, labels, traces, engine, trace_cache, bimodal = setup
        _drive(traces, engine, trace_cache, bimodal)
        stats = engine.stats
        assert stats.traces_constructed > 0
        assert stats.traces_duplicate <= stats.traces_constructed

    def test_promotion_invalidates_buffer_entry(self, setup):
        image, labels, traces, engine, trace_cache, bimodal = setup
        _drive(traces, engine, trace_cache, bimodal)
        for trace in engine.buffers.resident_traces():
            promoted = engine.probe_and_promote(trace.trace_id)
            assert promoted is not None
            assert trace_cache.contains(trace.trace_id)
            assert not engine.buffers.contains(trace.trace_id)

    def test_zero_idle_cycles_is_noop(self, setup):
        image, labels, traces, engine, trace_cache, bimodal = setup
        engine.observe_dispatch(traces[0])
        engine.tick(0)
        assert engine.stats.decode_steps == 0

    def test_constructed_traces_are_genuine(self, setup):
        """Everything in the buffers must match a demand trace or be a
        plausible alternate path: identical IDs imply identical pcs."""
        image, labels, traces, engine, trace_cache, bimodal = setup
        _drive(traces, engine, trace_cache, bimodal)
        demand = {t.trace_id: t.pcs for t in traces}
        for trace in engine.buffers.resident_traces():
            if trace.trace_id in demand:
                assert demand[trace.trace_id] == trace.pcs

    def test_stack_order_config_validated(self):
        with pytest.raises(ValueError):
            PreconstructionConfig(stack_order="sideways")


class TestStaticSeeding:
    def test_seeds_prime_the_stack(self, setup):
        image, labels, traces, _engine, trace_cache, bimodal = setup
        seeds = [labels["after_call"], labels["f_join"]]
        engine = PreconstructionEngine(
            image=image, icache=InstructionCache(),
            bimodal=BimodalPredictor(), trace_cache=TraceCache(),
            config=PreconstructionConfig(buffer_entries=128),
            static_seeds=seeds)
        # Best seed (first in the list) sits on top of the stack.
        assert engine.stack.peek_newest() == seeds[0]
        assert engine.stats.static_seeds_offered == len(seeds)

    def test_seed_queue_refills_when_stack_drains(self, setup):
        image, labels, *_ = setup
        depth = 4
        seeds = [image.code_base + 4 * i for i in range(depth * 2)]
        engine = PreconstructionEngine(
            image=image, icache=InstructionCache(),
            bimodal=BimodalPredictor(), trace_cache=TraceCache(),
            config=PreconstructionConfig(buffer_entries=128,
                                         start_stack_depth=depth),
            static_seeds=seeds)
        assert engine.stats.static_seeds_offered == depth
        # Drain the stack; the next tick must feed the second batch.
        while engine.stack.pop_newest() is not None:
            pass
        engine.tick(1)
        assert engine.stats.static_seeds_offered == depth * 2

    def test_no_seeds_is_the_default(self, setup):
        _image, _labels, _traces, engine, *_ = setup
        assert engine.stats.static_seeds_offered == 0
        assert len(engine.stack) == 0
