"""Property-based tests (hypothesis) on core data structures and the
trace-selection / preprocessing invariants that preconstruction's
correctness rests on."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.branch import BimodalPredictor, PathHistory, ReturnAddressStack
from repro.caches import LRU, SetAssociativeCache
from repro.core import StartPointStack
from repro.engine import FunctionalEngine
from repro.isa import Instruction, Opcode
from repro.preprocess import propagate_constants
from repro.preprocess.scheduler import schedule_order
from repro.preprocess.dependence import build_dependence_graph
from repro.program import ProgramImage
from repro.trace import SelectionConfig, traces_of_stream
from repro.workloads import WorkloadProfile, generate

# ----------------------------------------------------------------------
# Cache properties against a reference model
# ----------------------------------------------------------------------


@given(st.lists(st.tuples(st.booleans(), st.integers(0, 30)),
                max_size=200))
def test_setassoc_matches_reference_lru(ops):
    """A 1-set LRU cache must behave exactly like an OrderedDict-based
    reference implementation."""
    ways = 4
    cache = SetAssociativeCache(num_sets=1, ways=ways,
                                index_fn=lambda key: 0)
    reference: OrderedDict[int, int] = OrderedDict()
    for is_insert, key in ops:
        if is_insert:
            cache.insert(key, key * 2)
            if key in reference:
                reference.move_to_end(key)
            reference[key] = key * 2
            if len(reference) > ways:
                reference.popitem(last=False)
        else:
            got = cache.lookup(key)
            expected = reference.get(key)
            assert got == expected
            if key in reference:
                reference.move_to_end(key)
    assert dict(cache.items()) == dict(reference)


@given(st.lists(st.integers(0, 1023), max_size=300),
       st.integers(1, 3))
def test_bimodal_counters_stay_in_range(pcs, initial):
    predictor = BimodalPredictor(entries=64, initial=initial)
    for i, pc in enumerate(pcs):
        predictor.update(pc * 4, taken=bool(i & 1))
        assert 0 <= predictor.counter(pc * 4) <= 3


@given(st.lists(st.integers(), max_size=100), st.integers(1, 8))
def test_path_history_keeps_last_n(values, depth):
    history = PathHistory(depth=depth)
    for value in values:
        history.append(value)
    assert history.ids() == tuple(values[-depth:])


@given(st.lists(st.integers(0, 1 << 20), max_size=100), st.integers(1, 16))
def test_ras_never_exceeds_depth(pushes, depth):
    ras = ReturnAddressStack(depth=depth)
    for addr in pushes:
        ras.push(addr)
        assert len(ras) <= depth
    # Pops return the most recent surviving pushes, newest first.
    survivors = pushes[-depth:]
    for expected in reversed(survivors):
        assert ras.pop() == expected


@given(st.lists(st.integers(0, 40), max_size=120), st.integers(1, 16))
def test_start_point_stack_bounded_and_top_deduped(pcs, depth):
    stack = StartPointStack(depth=depth, completed_memory=0)
    previous_top = None
    for pc in pcs:
        pushed = stack.push(pc)
        assert len(stack) <= depth
        if previous_top == pc:
            assert not pushed
        previous_top = stack.peek_newest()


# ----------------------------------------------------------------------
# Whole-pipeline invariants on randomly generated programs
# ----------------------------------------------------------------------

profile_strategy = st.builds(
    WorkloadProfile,
    name=st.just("prop"),
    seed=st.integers(0, 2**16),
    procedures=st.integers(2, 8),
    constructs_min=st.just(2),
    constructs_max=st.integers(3, 5),
    loop_weight=st.floats(0.1, 0.4),
    diamond_weight=st.floats(0.1, 0.4),
    switch_weight=st.sampled_from([0.0, 0.1]),
    call_weight=st.floats(0.05, 0.3),
    biased_fraction=st.floats(0.0, 1.0),
    call_guard_prob=st.floats(0.0, 0.8),
    fanout=st.integers(1, 3),
)


@settings(max_examples=15, deadline=None)
@given(profile_strategy)
def test_generated_programs_execute_and_partition(profile):
    """Any generated program: executes without wild control flow, and
    its trace partition exactly tiles the dynamic stream."""
    workload = generate(profile)
    stream = FunctionalEngine(workload.image).run(3000)
    traces = traces_of_stream(stream)
    flat = [pc for trace in traces for pc in trace.pcs]
    assert flat == [record.pc for record in stream]
    for prev, cur in zip(traces, traces[1:]):
        assert prev.next_pc == cur.start_pc


@settings(max_examples=10, deadline=None)
@given(profile_strategy, st.integers(0, 3))
def test_trace_identity_uniqueness(profile, align_choice):
    """The invariant preconstruction depends on: a trace identity maps
    to exactly one instruction sequence, for any alignment setting."""
    selection = SelectionConfig(align_multiple=(0, 2, 4, 8)[align_choice])
    workload = generate(profile)
    stream = FunctionalEngine(workload.image).run(3000)
    seen = {}
    for trace in traces_of_stream(stream, selection):
        if trace.partial:
            continue  # cut by the measurement boundary, never cached
        key = trace.trace_id
        if key in seen:
            assert seen[key] == trace.pcs
        else:
            seen[key] = trace.pcs


@settings(max_examples=10, deadline=None)
@given(profile_strategy)
def test_scheduler_output_is_legal_topological_order(profile):
    """For every trace of a random program, the scheduled order must
    respect the dependence graph of the *original* order."""
    workload = generate(profile)
    stream = FunctionalEngine(workload.image).run(2000)
    for trace in traces_of_stream(stream):
        original = trace.instructions
        order = schedule_order(original)
        assert sorted(order) == list(range(len(original)))  # permutation
        graph = build_dependence_graph(original)
        position = {src: i for i, src in enumerate(order)}
        for dst, preds in enumerate(graph.preds):
            for src in preds:
                assert position[src] < position[dst]


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**16))
def test_constprop_preserves_branch_outcomes(seed):
    """Constant propagation must never change what a trace computes:
    re-executing the committed path with folded instructions gives the
    same architectural register results per instruction position."""
    profile = WorkloadProfile(name="prop", seed=seed, procedures=3,
                              constructs_min=2, constructs_max=4)
    workload = generate(profile)
    stream = FunctionalEngine(workload.image).run(1500)
    for trace in traces_of_stream(stream):
        folded = propagate_constants(trace.instructions)
        # Same ops at control positions; same destinations everywhere.
        for a, b in zip(trace.instructions, folded):
            assert a.destination_register() == b.destination_register()
            if a.is_control:
                assert a == b
