"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "vortex" in out

    def test_point(self, capsys):
        assert main(["--instructions", "4000", "point", "compress",
                     "--tc", "64"]) == 0
        out = capsys.readouterr().out
        assert "trace_misses_per_ki" in out

    def test_point_with_preconstruction(self, capsys):
        assert main(["--instructions", "4000", "point", "compress",
                     "--tc", "64", "--pb", "32"]) == 0
        assert "buffer_hits" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["point", "spice"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_dynamic_smoke(self, capsys):
        assert main(["--instructions", "6000", "dynamic",
                     "--benchmarks", "compress"]) == 0
        assert "trajectory" in capsys.readouterr().out

    def test_analyze_human_report(self, capsys):
        assert main(["analyze", "compress"]) == 0
        out = capsys.readouterr().out
        assert "static analysis: compress" in out
        assert "static region seeds" in out
        assert "no findings" in out

    def test_analyze_json(self, capsys):
        import json

        assert main(["analyze", "compress", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "compress"
        assert payload["findings"] == []
        assert payload["summary"]["static_seeds"] == len(payload["seeds"])

    def test_point_static_seed(self, capsys):
        assert main(["--instructions", "4000", "point", "compress",
                     "--tc", "64", "--pb", "32", "--static-seed"]) == 0
        assert "buffer_hits" in capsys.readouterr().out

    def test_instructions_env_fallback(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "4000")
        assert main(["point", "compress", "--tc", "64"]) == 0
        out = capsys.readouterr().out
        assert "4000.000" in out

    def test_instructions_flag_beats_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "9999999")
        assert main(["--instructions", "4000", "point", "compress",
                     "--tc", "64"]) == 0
        assert "4000.000" in capsys.readouterr().out


ALL_ARGS = ["--instructions", "4000", "all", "--benchmarks", "compress",
            "--jobs", "2"]


class TestRunnerCLI:
    def test_figure5_jobs_matches_serial(self, capsys):
        assert main(["--instructions", "4000", "--no-cache", "figure5",
                     "--benchmarks", "compress"]) == 0
        serial = capsys.readouterr().out
        assert main(["--instructions", "4000", "--no-cache", "figure5",
                     "--benchmarks", "compress", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_all_warm_rerun_is_identical_and_runs_nothing(
            self, capsys, tmp_path):
        report = tmp_path / "timing.json"
        args = ALL_ARGS + ["--timing-report", str(report)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "Figure 5" in cold and "Table 1" in cold
        assert "Figure 6" in cold and "Figure 8" in cold

        import json

        cold_report = json.loads(report.read_text())
        assert cold_report["executed"] > 0

        assert main(args) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        warm_report = json.loads(report.read_text())
        assert warm_report["executed"] == 0
        assert warm_report["cache_hits"] == warm_report["unique"]

    def test_all_no_cache_matches_cached(self, capsys):
        assert main(ALL_ARGS) == 0
        cached = capsys.readouterr().out
        assert main(["--instructions", "4000", "--no-cache", "all",
                     "--benchmarks", "compress"]) == 0
        assert capsys.readouterr().out == cached

    def test_all_matches_individual_commands(self, capsys):
        assert main(["--instructions", "4000", "--no-cache", "tables",
                     "--benchmarks", "compress"]) == 0
        tables = capsys.readouterr().out
        assert main(ALL_ARGS) == 0
        assert tables.strip() in capsys.readouterr().out

    def test_cache_dir_flag(self, capsys, tmp_path):
        custom = tmp_path / "elsewhere"
        assert main(["--instructions", "4000", "--cache-dir", str(custom),
                     "tables", "--benchmarks", "compress"]) == 0
        capsys.readouterr()
        assert any(custom.rglob("*.json"))

    def test_cache_command(self, capsys, tmp_path):
        assert main(ALL_ARGS) == 0
        capsys.readouterr()
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert main(["cache", "--clear"]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache"]) == 0
        assert "entries:    0" in capsys.readouterr().out
