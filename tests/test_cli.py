"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "vortex" in out

    def test_point(self, capsys):
        assert main(["--instructions", "4000", "point", "compress",
                     "--tc", "64"]) == 0
        out = capsys.readouterr().out
        assert "trace_misses_per_ki" in out

    def test_point_with_preconstruction(self, capsys):
        assert main(["--instructions", "4000", "point", "compress",
                     "--tc", "64", "--pb", "32"]) == 0
        assert "buffer_hits" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["point", "spice"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_dynamic_smoke(self, capsys):
        assert main(["--instructions", "6000", "dynamic",
                     "--benchmarks", "compress"]) == 0
        assert "trajectory" in capsys.readouterr().out

    def test_analyze_human_report(self, capsys):
        assert main(["analyze", "compress"]) == 0
        out = capsys.readouterr().out
        assert "static analysis: compress" in out
        assert "static region seeds" in out
        assert "no findings" in out

    def test_analyze_json(self, capsys):
        import json

        assert main(["analyze", "compress", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "compress"
        assert payload["findings"] == []
        assert payload["summary"]["static_seeds"] == len(payload["seeds"])

    def test_point_static_seed(self, capsys):
        assert main(["--instructions", "4000", "point", "compress",
                     "--tc", "64", "--pb", "32", "--static-seed"]) == 0
        assert "buffer_hits" in capsys.readouterr().out
