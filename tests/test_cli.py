"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gcc" in out and "vortex" in out

    def test_point(self, capsys):
        assert main(["--instructions", "4000", "point", "compress",
                     "--tc", "64"]) == 0
        out = capsys.readouterr().out
        assert "trace_misses_per_ki" in out

    def test_point_with_preconstruction(self, capsys):
        assert main(["--instructions", "4000", "point", "compress",
                     "--tc", "64", "--pb", "32"]) == 0
        assert "buffer_hits" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["point", "spice"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_dynamic_smoke(self, capsys):
        assert main(["--instructions", "6000", "dynamic",
                     "--benchmarks", "compress"]) == 0
        assert "trajectory" in capsys.readouterr().out

    def test_analyze_human_report(self, capsys):
        assert main(["analyze", "compress"]) == 0
        out = capsys.readouterr().out
        assert "static analysis: compress" in out
        assert "static region seeds" in out
        # Generated code carries INFO findings only (filler dead
        # stores); no error- or warning-severity lines.
        assert "error at" not in out
        assert "warning" not in out

    def test_analyze_json(self, capsys):
        import json

        from repro.static.report import STATIC_SCHEMA_VERSION

        assert main(["analyze", "compress", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "compress"
        assert payload["schema_version"] == STATIC_SCHEMA_VERSION
        assert all(f["severity"] == "info" for f in payload["findings"])
        assert payload["summary"]["static_seeds"] == len(payload["seeds"])

    def test_predict_human_report(self, capsys):
        assert main(["predict", "compress"]) == 0
        out = capsys.readouterr().out
        assert "static coverage prediction: compress" in out
        assert "trace start points" in out
        assert "exploration complete" in out
        assert "preconstruction regions" in out

    def test_predict_json_matches_golden(self, capsys):
        import json
        from pathlib import Path

        from repro.static.report import STATIC_SCHEMA_VERSION

        assert main(["predict", "compress", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "compress"
        assert payload["schema_version"] == STATIC_SCHEMA_VERSION
        assert payload["complete"] is True
        golden = json.loads(
            (Path(__file__).parent / "golden"
             / "predict_spec95.json").read_text())
        summary = {k: v for k, v in payload.items()
                   if k in golden["compress"]}
        assert summary == golden["compress"]

    def test_predict_json_deterministic(self, capsys):
        assert main(["predict", "gcc", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["predict", "gcc", "--json"]) == 0
        assert capsys.readouterr().out == first

    def test_point_static_seed(self, capsys):
        assert main(["--instructions", "4000", "point", "compress",
                     "--tc", "64", "--pb", "32", "--static-seed"]) == 0
        assert "buffer_hits" in capsys.readouterr().out

    def test_instructions_env_fallback(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "4000")
        assert main(["point", "compress", "--tc", "64"]) == 0
        out = capsys.readouterr().out
        assert "4000.000" in out

    def test_instructions_flag_beats_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "9999999")
        assert main(["--instructions", "4000", "point", "compress",
                     "--tc", "64"]) == 0
        assert "4000.000" in capsys.readouterr().out


ALL_ARGS = ["--instructions", "4000", "all", "--benchmarks", "compress",
            "--jobs", "2"]


class TestRunnerCLI:
    def test_figure5_jobs_matches_serial(self, capsys):
        assert main(["--instructions", "4000", "--no-cache", "figure5",
                     "--benchmarks", "compress"]) == 0
        serial = capsys.readouterr().out
        assert main(["--instructions", "4000", "--no-cache", "figure5",
                     "--benchmarks", "compress", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_all_warm_rerun_is_identical_and_runs_nothing(
            self, capsys, tmp_path):
        report = tmp_path / "timing.json"
        args = ALL_ARGS + ["--timing-report", str(report)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "Figure 5" in cold and "Table 1" in cold
        assert "Figure 6" in cold and "Figure 8" in cold

        import json

        cold_report = json.loads(report.read_text())
        assert cold_report["executed"] > 0

        assert main(args) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        warm_report = json.loads(report.read_text())
        assert warm_report["executed"] == 0
        assert warm_report["cache_hits"] == warm_report["unique"]

    def test_all_no_cache_matches_cached(self, capsys):
        assert main(ALL_ARGS) == 0
        cached = capsys.readouterr().out
        assert main(["--instructions", "4000", "--no-cache", "all",
                     "--benchmarks", "compress"]) == 0
        assert capsys.readouterr().out == cached

    def test_all_matches_individual_commands(self, capsys):
        assert main(["--instructions", "4000", "--no-cache", "tables",
                     "--benchmarks", "compress"]) == 0
        tables = capsys.readouterr().out
        assert main(ALL_ARGS) == 0
        assert tables.strip() in capsys.readouterr().out

    def test_cache_dir_flag(self, capsys, tmp_path):
        custom = tmp_path / "elsewhere"
        assert main(["--instructions", "4000", "--cache-dir", str(custom),
                     "tables", "--benchmarks", "compress"]) == 0
        capsys.readouterr()
        assert any(custom.rglob("*.json"))

    def test_cache_command(self, capsys, tmp_path):
        assert main(ALL_ARGS) == 0
        capsys.readouterr()
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert main(["cache", "--clear"]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache"]) == 0
        assert "entries:    0" in capsys.readouterr().out

    def test_cache_entry_details_and_last_run(self, capsys):
        assert main(["--instructions", "4000", "tables",
                     "--benchmarks", "gcc"]) == 0
        capsys.readouterr()
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "gcc tc=" in out            # per-entry spec label
        from repro import __version__
        assert f"v{__version__}" in out    # per-entry package version
        assert "last run:   tables" in out
        assert "cache hits" in out


class TestObservabilityCLI:
    def test_stats_human(self, capsys):
        assert main(["--instructions", "4000", "stats", "compress"]) == 0
        out = capsys.readouterr().out
        assert "events observed" in out
        assert "trace_misses_per_ki" in out
        assert "construction_latency" in out
        assert "idle_burst_length" in out

    def test_stats_json(self, capsys):
        import json

        assert main(["--instructions", "4000", "stats", "compress",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["manifest"]["benchmark"] == "compress"
        assert payload["intervals"]
        assert set(payload["histograms"]) == {
            "trace_length", "construction_latency",
            "buffer_occupancy", "idle_burst_length"}

    def test_trace_exports_valid_chrome_trace(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        out_path = tmp_path / "trace.json"
        events_path = tmp_path / "events.jsonl"
        metrics_path = tmp_path / "metrics.jsonl"
        assert main(["--instructions", "4000", "trace", "compress",
                     "--out", str(out_path),
                     "--events", str(events_path),
                     "--metrics", str(metrics_path)]) == 0
        assert "trace events" in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert validate_chrome_trace(payload) == []
        assert events_path.read_text().count("\n") > 0
        assert json.loads(metrics_path.read_text()
                          .splitlines()[0])["type"] == "meta"

    def test_stats_json_dump_flag(self, capsys, tmp_path):
        import json

        dump = tmp_path / "points.json"
        assert main(["--instructions", "4000", "--no-cache", "figure5",
                     "--benchmarks", "compress",
                     "--stats-json", str(dump)]) == 0
        capsys.readouterr()
        rows = json.loads(dump.read_text())
        assert len(rows) == 20  # the Figure-5 panel for one benchmark
        assert all({"spec", "label", "metrics"} <= set(row)
                   for row in rows)
        assert "trace_misses_per_ki" in rows[0]["metrics"]

    def test_verbosity_flags_accepted(self, capsys):
        assert main(["-v", "--instructions", "4000", "point",
                     "compress", "--tc", "64"]) == 0
        capsys.readouterr()
        assert main(["--log-level", "debug", "--instructions", "4000",
                     "point", "compress", "--tc", "64"]) == 0
        capsys.readouterr()


class TestBenchCheck:
    def test_check_bench_passes_within_tolerance(self):
        from repro.runner import check_bench

        reference = {"mode": "quick",
                     "sections": {"figure5": {"current_seconds": 10.0}}}
        payload = {"mode": "quick",
                   "sections": {"figure5": {"current_seconds": 12.0}}}
        assert check_bench(payload, reference, tolerance=0.5) == []

    def test_check_bench_flags_regression(self):
        from repro.runner import check_bench

        reference = {"mode": "quick",
                     "sections": {"figure5": {"current_seconds": 10.0}}}
        payload = {"mode": "quick",
                   "sections": {"figure5": {"current_seconds": 16.0}}}
        problems = check_bench(payload, reference, tolerance=0.5)
        assert problems and "figure5" in problems[0]

    def test_check_bench_refuses_cross_simulator_comparison(self):
        # Regression guard: a vectorized run must never be scored
        # against a scalar reference (or vice versa) — the wall-clock
        # numbers measure different kernels.
        from repro.runner import check_bench

        reference = {"mode": "quick", "simulator": "scalar",
                     "sections": {"figure5": {"current_seconds": 10.0}}}
        payload = {"mode": "quick", "simulator": "vectorized",
                   "sections": {"figure5": {"current_seconds": 2.0}}}
        problems = check_bench(payload, reference, tolerance=0.5)
        assert len(problems) == 1
        assert "simulator mismatch" in problems[0]
        assert "vectorized" in problems[0] and "scalar" in problems[0]

    def test_check_bench_rows_without_simulator_default_to_scalar(self):
        # Trajectory rows written before the simulator field existed
        # must keep comparing cleanly against scalar runs.
        from repro.runner import check_bench

        reference = {"mode": "quick",
                     "sections": {"figure5": {"current_seconds": 10.0}}}
        payload = {"mode": "quick", "simulator": "scalar",
                   "sections": {"figure5": {"current_seconds": 10.0}}}
        assert check_bench(payload, reference, tolerance=0.5) == []
        vec = dict(payload, simulator="vectorized")
        assert any("simulator mismatch" in p
                   for p in check_bench(vec, reference))

    def test_trajectory_row_records_simulator(self):
        from repro.runner.bench import trajectory_row

        payload = {"mode": "quick", "jobs": 1, "simulator": "vectorized",
                   "sections": {"figure5": {"specs": 4,
                                            "current_seconds": 1.0}},
                   "total": {"current_seconds": 1.0}}
        row = trajectory_row(payload, commit="abc1234")
        assert row["simulator"] == "vectorized"
        legacy = trajectory_row({"mode": "quick", "sections": {},
                                 "total": {}}, commit="abc1234")
        assert legacy["simulator"] == "scalar"

    def test_trajectory_reference_carries_simulator(self, tmp_path):
        import json

        from repro.runner.bench import trajectory_reference

        path = tmp_path / "trajectory.jsonl"
        rows = [
            {"mode": "quick", "simulator": "scalar",
             "sections": {"figure5": {"current_seconds": 9.0}}},
            {"mode": "quick", "simulator": "vectorized",
             "sections": {"figure5": {"current_seconds": 3.0}}},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        reference = trajectory_reference(path, "quick")
        assert reference["simulator"] == "vectorized"

    def test_regressed_sections_empty_on_simulator_mismatch(self):
        # A simulator mismatch is not re-timeable as a section
        # slowdown, so no repro script should be generated for it.
        from repro.runner import regressed_sections

        reference = {"mode": "quick", "simulator": "scalar",
                     "sections": {"figure5": {"current_seconds": 1.0}}}
        payload = {"mode": "quick", "simulator": "vectorized",
                   "sections": {"figure5": {"current_seconds": 50.0}}}
        assert regressed_sections(payload, reference) == {}

    def test_check_bench_mode_and_section_mismatches(self):
        from repro.runner import check_bench

        reference = {"mode": "full",
                     "sections": {"figure5": {"current_seconds": 10.0},
                                  "tables": {"current_seconds": 1.0}}}
        assert check_bench({"mode": "quick", "sections": {}}, reference)
        payload = {"mode": "full",
                   "sections": {"figure5": {"current_seconds": 10.0},
                                "extra": {"current_seconds": 1.0}}}
        problems = check_bench(payload, reference)
        assert any("tables" in p for p in problems)
        assert any("extra" in p for p in problems)
        import pytest

        with pytest.raises(ValueError):
            check_bench(payload, reference, tolerance=-1)


class TestFuzzCommand:
    def test_clean_sweep_exits_zero(self, capsys):
        assert main(["--no-cache", "fuzz", "--seeds", "2",
                     "--budget", "3000"]) == 0
        out = capsys.readouterr().out
        assert "all oracles held" in out

    def test_json_output(self, capsys):
        import json

        assert main(["--no-cache", "fuzz", "--seeds", "2",
                     "--budget", "3000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cases"] == 2
        assert payload["failures"] == []

    def test_oracle_subset_and_seed_base(self, capsys):
        assert main(["--no-cache", "fuzz", "--seeds", "2",
                     "--seed-base", "10", "--budget", "3000",
                     "--oracle", "conservation", "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["seed_base"] == 10
        assert payload["oracles"] == ["conservation"]

    def test_warm_rerun_hits_cache(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "fuzz-cache")
        assert main(["--cache-dir", cache_dir, "fuzz", "--seeds", "2",
                     "--budget", "3000", "--json"]) == 0
        capsys.readouterr()
        assert main(["--cache-dir", cache_dir, "fuzz", "--seeds", "2",
                     "--budget", "3000", "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["cache_hits"] == 2

    def test_broken_counter_exits_nonzero(self, capsys, monkeypatch,
                                          tmp_path):
        from repro.sim.frontend_runner import FrontendSimulation

        original = FrontendSimulation._slow_path_fetch

        def corrupted(self, actual):
            cycles = original(self, actual)
            self.stats.slow_path_traces -= 1
            return cycles

        monkeypatch.setattr(FrontendSimulation, "_slow_path_fetch",
                            corrupted)
        failures = tmp_path / "failures"
        assert main(["--no-cache", "fuzz", "--seeds", "1",
                     "--budget", "3000",
                     "--failures-dir", str(failures)]) == 1
        out = capsys.readouterr().out
        assert "failing case(s)" in out
        assert list(failures.glob("repro_fuzz_*.py"))

    def test_unknown_oracle_rejected(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["fuzz", "--oracle", "nope"])


class TestCompareCLI:
    def test_compare_table(self, capsys):
        assert main(["--instructions", "4000", "--no-cache", "compare",
                     "--benchmarks", "compress", "--pb", "64"]) == 0
        out = capsys.readouterr().out
        assert "compress (tc=256, 4000 instructions)" in out
        for name in ("baseline", "mana", "nextline", "pmap",
                     "preconstruction"):
            assert name in out
        assert "vs-base" in out

    def test_compare_json_covers_requested_mechanisms(self, capsys):
        import json

        assert main(["--instructions", "4000", "--no-cache", "compare",
                     "--benchmarks", "compress",
                     "--mechanisms", "preconstruction,nextline",
                     "--pb", "64", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {row["mechanism"] for row in rows} \
            == {"baseline", "preconstruction", "nextline"}

    def test_compare_unknown_mechanism_errors_cleanly(self, capsys):
        assert main(["--instructions", "4000", "--no-cache", "compare",
                     "--benchmarks", "compress",
                     "--mechanisms", "markov"]) == 2
        err = capsys.readouterr().err
        assert "unknown mechanism" in err


class TestBenchCheckCLI:
    def test_missing_reference_names_the_file(self, capsys, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_INSTRUCTIONS", "2000")
        missing = tmp_path / "nope" / "ref.json"
        out_path = tmp_path / "bench.json"
        assert main(["bench", "--quick", "--output", str(out_path),
                     "--check", str(missing)]) == 1
        err = capsys.readouterr().err
        assert "reference report not found" in err
        assert str(missing) in err

    def test_check_failure_writes_minimized_repro_script(
            self, capsys, tmp_path, monkeypatch):
        import json

        payload = {"schema": 1, "mode": "quick", "jobs": 1,
                   "baseline_commit": "abc1234",
                   "sections": {"figure5": {"specs": 4,
                                            "baseline_seconds": 20.0,
                                            "current_seconds": 16.0,
                                            "speedup": 1.25}},
                   "total": {"baseline_seconds": 20.0,
                             "current_seconds": 16.0, "speedup": 1.25}}
        monkeypatch.setattr("repro.runner.run_bench",
                            lambda **kwargs: payload)
        reference = tmp_path / "ref.json"
        reference.write_text(json.dumps(
            {"mode": "quick",
             "sections": {"figure5": {"current_seconds": 10.0}}}))
        script = tmp_path / "repro.py"
        assert main(["bench", "--quick", "--no-trajectory",
                     "--output", str(tmp_path / "bench.json"),
                     "--check", str(reference),
                     "--repro-script", str(script)]) == 1
        err = capsys.readouterr().err
        assert "bench regression:" in err
        assert f"bench regression repro script: {script}" in err
        text = script.read_text()
        assert "'figure5': 15.0," in text
        compile(text, str(script), "exec")   # the script at least parses

    def test_check_mismatch_without_slowdown_writes_no_script(
            self, capsys, tmp_path, monkeypatch):
        import json

        # Mode mismatch fails the check but is not re-timeable, so no
        # repro script should appear.
        payload = {"schema": 1, "mode": "quick", "jobs": 1,
                   "baseline_commit": "abc1234", "sections": {},
                   "total": {"baseline_seconds": 0.0,
                             "current_seconds": 0.0, "speedup": None}}
        monkeypatch.setattr("repro.runner.run_bench",
                            lambda **kwargs: payload)
        reference = tmp_path / "ref.json"
        reference.write_text(json.dumps({"mode": "full", "sections": {}}))
        script = tmp_path / "repro.py"
        assert main(["bench", "--quick", "--no-trajectory",
                     "--output", str(tmp_path / "bench.json"),
                     "--check", str(reference),
                     "--repro-script", str(script)]) == 1
        assert "bench regression:" in capsys.readouterr().err
        assert not script.exists()


class TestBenchFormatting:
    def test_format_bench_tolerates_untimeable_sections(self):
        from repro.runner import format_bench

        # A near-zero elapsed leaves speedup as None; the formatter
        # must say "n/a", not raise TypeError on the float format.
        payload = {"mode": "quick", "jobs": 1, "baseline_commit": "abc1234",
                   "sections": {"tables": {"specs": 3,
                                           "baseline_seconds": 0.0,
                                           "current_seconds": 0.0,
                                           "speedup": None}},
                   "total": {"baseline_seconds": 0.0,
                             "current_seconds": 0.0, "speedup": None}}
        text = format_bench(payload)
        assert text.count("n/a") == 2
        assert "None" not in text

    def test_check_bench_reports_missing_sections_mapping(self):
        from repro.runner import check_bench

        reference = {"mode": "quick",
                     "sections": {"figure5": {"current_seconds": 1.0}}}
        assert check_bench({"mode": "quick"}, reference) \
            == ["payload has no 'sections' mapping"]


class TestBenchRepro:
    REFERENCE = {"mode": "quick",
                 "sections": {"figure5": {"current_seconds": 10.0},
                              "tables": {"current_seconds": 1.0}}}

    def test_regressed_sections_names_only_slowdowns(self):
        from repro.runner import regressed_sections

        payload = {"mode": "quick",
                   "sections": {"figure5": {"current_seconds": 16.0},
                                "tables": {"current_seconds": 1.0}}}
        assert regressed_sections(payload, self.REFERENCE, 0.5) \
            == {"figure5": 15.0}

    def test_mode_mismatch_is_not_minimizable(self):
        from repro.runner import regressed_sections

        payload = {"mode": "full",
                   "sections": {"figure5": {"current_seconds": 99.0}}}
        assert regressed_sections(payload, self.REFERENCE) == {}

    def test_script_generation_requires_a_regression(self):
        from repro.runner import bench_repro_script

        with pytest.raises(ValueError, match="no regressed sections"):
            bench_repro_script({"mode": "quick", "sections": {}},
                               self.REFERENCE)

    def test_write_bench_repro_embeds_the_limits(self, tmp_path):
        from repro.runner import write_bench_repro

        payload = {"mode": "quick",
                   "sections": {"figure5": {"current_seconds": 16.0}}}
        target = write_bench_repro(payload, self.REFERENCE, 0.5,
                                   tmp_path / "r.py")
        text = target.read_text()
        assert "MODE = 'quick'" in text
        assert "'figure5': 15.0," in text
        assert "SystemExit" in text
        compile(text, str(target), "exec")


class TestCacheStaleTempsCLI:
    def test_cache_reports_and_clears_stranded_temps(self, capsys,
                                                     tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "last_run.tmp.4242").write_text("{ half a tally")
        assert main(["--cache-dir", str(cache_dir), "cache"]) == 0
        out = capsys.readouterr().out
        assert "stale temp files: 1" in out
        assert main(["--cache-dir", str(cache_dir), "cache",
                     "--clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["--cache-dir", str(cache_dir), "cache"]) == 0
        assert "stale temp" not in capsys.readouterr().out
