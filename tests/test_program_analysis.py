"""Tests for program-image access and the static analyses."""

import pytest

from repro.isa import Instruction, Opcode, assemble
from repro.program import (
    ProgramImage,
    call_graph,
    reachable_addresses,
    static_stats,
)


def _image(source: str, data=None):
    insts, labels = assemble(source, base=0x1000)
    return ProgramImage(instructions=insts, code_base=0x1000, entry=0x1000,
                        labels=labels, data=data or {})


class TestProgramImage:
    def test_fetch_and_bounds(self):
        image = _image("nop\nhalt")
        assert image.fetch(0x1000).op is Opcode.NOP
        with pytest.raises(IndexError):
            image.fetch(0x2000)
        with pytest.raises(IndexError):
            image.fetch(0x1002)  # misaligned

    def test_try_fetch(self):
        image = _image("nop\nhalt")
        assert image.try_fetch(0x1004) is not None
        assert image.try_fetch(0x1008) is None
        assert 0x1000 in image and 0x1008 not in image

    def test_sizes_and_addresses(self):
        image = _image("nop\nnop\nhalt")
        assert image.code_size == 3
        assert image.code_bytes == 12
        assert image.code_end == 0x100C
        assert list(image.addresses()) == [0x1000, 0x1004, 0x1008]

    def test_label_reverse_lookup(self):
        image = _image("entry:\nnop\nhalt")
        assert image.label_at(0x1000) == "entry"
        assert image.label_at(0x1004) is None

    def test_misaligned_base_rejected(self):
        with pytest.raises(ValueError):
            ProgramImage(instructions=[], code_base=0x1001)


class TestReachability:
    SOURCE = """
    main:
        jal used
        halt
    used:
        beq r1, r2, used_tail
        nop
    used_tail:
        jr ra
    dead:
        nop
        jr ra
    """

    def test_dead_code_not_reached(self):
        image = _image(self.SOURCE)
        reached = reachable_addresses(image)
        assert image.labels["used"] in reached
        assert image.labels["dead"] not in reached

    def test_branch_both_sides_reached(self):
        image = _image(self.SOURCE)
        reached = reachable_addresses(image)
        assert image.labels["used_tail"] in reached
        # The nop after the beq (fall-through) also reached:
        assert image.labels["used"] + 4 in reached

    def test_indirect_targets_via_data(self):
        source = """
        main:
            lw r1, 0(r2)
            jr r1
        island:
            halt
        """
        image = _image(source)
        # Without a relocation, the island is unreachable...
        assert image.labels["island"] not in reachable_addresses(image)
        # ...with a data word holding its address, it is.
        image.data[0x40_0000] = image.labels["island"]
        assert image.labels["island"] in reachable_addresses(image)


class TestStaticStats:
    def test_counts(self):
        image = _image("""
        main:
            jal callee
            beq r1, r2, main
            halt
        callee:
            nop
            bne r1, r0, callee
            jr ra
        """)
        stats = static_stats(image)
        assert stats.calls == 1  # raw assembly: no startup stub
        assert stats.conditional_branches == 2
        assert stats.backward_branches == 2
        assert stats.returns == 1


class TestCallGraph:
    def test_direct_edges(self):
        image = _image("""
        main:
            jal a
            jal b
            halt
        a:
            jal b
            jr ra
        b:
            jr ra
        """)
        graph = call_graph(image)
        assert graph["main"] == {"a", "b"}
        assert graph["a"] == {"b"}
        assert graph["b"] == set()
