"""Shared test fixtures: keep every test hermetic.

The CLI's exhibit commands read and write the content-addressed result
cache by default; pointing ``REPRO_CACHE_DIR`` at a per-test temp
directory keeps runs from touching (or being poisoned by) the user's
real ``~/.cache/repro``.  ``REPRO_INSTRUCTIONS`` is cleared so an
ambient budget override can't skew tests that rely on defaults.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _isolated_environment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))
    monkeypatch.delenv("REPRO_INSTRUCTIONS", raising=False)
