"""Tests for the frontend timing simulation (Figure 5 / Tables metrics)."""

import pytest

from repro.core import PreconstructionConfig
from repro.engine import FunctionalEngine
from repro.sim import FrontendConfig, FrontendSimulation, run_frontend
from repro.trace import TraceCacheConfig
from repro.workloads import build_workload

INSTRUCTIONS = 30_000


@pytest.fixture(scope="module")
def gcc():
    workload = build_workload("gcc")
    stream = FunctionalEngine(workload.image).run(INSTRUCTIONS)
    return workload.image, stream


def _run(image, stream, tc=256, pb=0, **kwargs):
    config = FrontendConfig(
        trace_cache=TraceCacheConfig(entries=tc),
        preconstruction=(PreconstructionConfig(buffer_entries=pb)
                         if pb else None),
        **kwargs)
    return run_frontend(image, config, INSTRUCTIONS, stream=stream)


class TestBaselineFrontend:
    def test_accounting_conservation(self, gcc):
        image, stream = gcc
        stats = _run(image, stream).stats
        assert stats.instructions == len(stream)
        assert stats.trace_hits + stats.trace_misses == stats.traces
        assert stats.slow_path_traces == stats.trace_misses
        assert stats.ntp_correct + stats.ntp_wrong + stats.ntp_none \
            == stats.traces

    def test_bigger_cache_fewer_misses(self, gcc):
        image, stream = gcc
        small = _run(image, stream, tc=64).stats
        large = _run(image, stream, tc=1024).stats
        assert large.trace_misses < small.trace_misses

    def test_miss_traffic_consistency(self, gcc):
        """Slow-path instruction supply equals the instructions of the
        missed traces; misses-from-lines never exceed line accesses."""
        image, stream = gcc
        stats = _run(image, stream).stats
        assert stats.slow_instructions <= stats.instructions
        assert stats.slow_line_misses <= stats.slow_line_accesses
        assert (stats.slow_instructions_from_misses
                <= stats.slow_instructions)

    def test_predictor_learns(self, gcc):
        image, stream = gcc
        stats = _run(image, stream).stats
        assert stats.ntp_accuracy > 0.5

    def test_deterministic(self, gcc):
        image, stream = gcc
        first = _run(image, stream).stats.summary()
        second = _run(image, stream).stats.summary()
        assert first == second


class TestPreconstructionFrontend:
    def test_reduces_misses_at_same_tc(self, gcc):
        image, stream = gcc
        base = _run(image, stream, tc=256).stats
        pre = _run(image, stream, tc=256, pb=256).stats
        assert pre.trace_misses < base.trace_misses
        assert pre.buffer_hits > 0

    def test_buffer_hits_bounded_by_saved_misses(self, gcc):
        image, stream = gcc
        base = _run(image, stream, tc=256).stats
        pre = _run(image, stream, tc=256, pb=256).stats
        # Every avoided miss was supplied by the buffers (promotion also
        # changes downstream cache contents, so this is an inequality
        # in one direction only).
        assert pre.buffer_hits >= base.trace_misses - pre.trace_misses \
            - base.trace_misses * 0.5

    def test_increases_total_icache_misses(self, gcc):
        """Table 2's effect: preconstruction fetches raise total
        I-cache misses."""
        image, stream = gcc
        base = _run(image, stream, tc=256).stats
        pre = _run(image, stream, tc=256, pb=256).stats
        assert pre.icache_misses_per_ki >= base.icache_misses_per_ki

    def test_reduces_slow_path_miss_exposure(self, gcc):
        """Table 3's effect: the slow path sees fewer miss-supplied
        instructions (prefetch side benefit)."""
        image, stream = gcc
        base = _run(image, stream, tc=256).stats
        pre = _run(image, stream, tc=256, pb=256).stats
        assert (pre.icache_miss_instructions_per_ki
                < base.icache_miss_instructions_per_ki)

    def test_idle_cycles_fund_engine(self, gcc):
        image, stream = gcc
        result = _run(image, stream, tc=256, pb=256)
        assert result.stats.idle_cycles > 0
        assert (result.preconstruction.stats.idle_cycles_offered
                == result.stats.idle_cycles)

    def test_total_area_accounting(self):
        config = FrontendConfig(
            trace_cache=TraceCacheConfig(entries=256),
            preconstruction=PreconstructionConfig(buffer_entries=256))
        assert config.total_trace_entries == 512
        assert config.total_trace_storage_bytes == 512 * 64


class TestFrontendEdgeCases:
    def test_empty_stream(self, gcc):
        image, _ = gcc
        result = FrontendSimulation(
            image, FrontendConfig()).run([])
        assert result.stats.traces == 0
        assert result.stats.trace_miss_rate_per_ki == 0.0

    def test_single_instruction_stream(self, gcc):
        image, stream = gcc
        result = FrontendSimulation(image, FrontendConfig()).run(stream[:1])
        assert result.stats.traces == 1
        assert result.stats.instructions == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            FrontendConfig(fetch_width=0)
        with pytest.raises(ValueError):
            FrontendConfig(retire_ipc=0)
