"""Dedicated tests for the trace cache structure."""

import pytest

from repro.isa import Instruction, Opcode
from repro.trace import (
    BYTES_PER_ENTRY,
    Trace,
    TraceCache,
    TraceCacheConfig,
    TraceID,
)


def _trace(start_pc: int, outcomes=()) -> Trace:
    length = 4
    insts = tuple(Instruction(Opcode.NOP) for _ in range(length))
    pcs = tuple(start_pc + 4 * i for i in range(length))
    return Trace(trace_id=TraceID(start_pc, tuple(outcomes)),
                 instructions=insts, pcs=pcs,
                 next_pc=start_pc + 4 * length,
                 ends_in_call=False, ends_in_return=False)


class TestTraceCacheConfig:
    def test_paper_size_range(self):
        # Paper: 64 entries (4KB) up to 1024 entries (64KB).
        assert TraceCacheConfig(entries=64).size_bytes == 4 * 1024
        assert TraceCacheConfig(entries=1024).size_bytes == 64 * 1024
        assert BYTES_PER_ENTRY == 64

    def test_entries_must_divide_ways(self):
        with pytest.raises(ValueError):
            TraceCacheConfig(entries=63, ways=2)


class TestTraceCacheBehaviour:
    def test_insert_lookup(self):
        cache = TraceCache(TraceCacheConfig(entries=64))
        trace = _trace(0x1000)
        cache.insert(trace)
        assert cache.lookup(trace.trace_id) is trace
        assert cache.stats.hits == 1

    def test_same_start_different_outcomes_coexist(self):
        """Distinct paths through the same code are distinct entries —
        the working-set amplification that motivates the paper."""
        cache = TraceCache(TraceCacheConfig(entries=64))
        a = _trace(0x1000, outcomes=(True,))
        b = _trace(0x1000, outcomes=(False,))
        cache.insert(a)
        cache.insert(b)
        assert cache.lookup(a.trace_id) is a
        assert cache.lookup(b.trace_id) is b

    def test_capacity_eviction(self):
        cache = TraceCache(TraceCacheConfig(entries=4, ways=2))
        traces = [_trace(0x1000 + 0x40 * i) for i in range(12)]
        evicted = 0
        for trace in traces:
            if cache.insert(trace) is not None:
                evicted += 1
        assert cache.occupancy() <= 4
        assert evicted >= len(traces) - 4

    def test_contains_is_uncounted(self):
        cache = TraceCache(TraceCacheConfig(entries=64))
        trace = _trace(0x2000)
        cache.insert(trace)
        cache.contains(trace.trace_id)
        assert cache.stats.accesses == 0

    def test_invalidate(self):
        cache = TraceCache(TraceCacheConfig(entries=64))
        trace = _trace(0x3000)
        cache.insert(trace)
        assert cache.invalidate(trace.trace_id)
        assert cache.lookup(trace.trace_id) is None

    def test_resident_traces(self):
        cache = TraceCache(TraceCacheConfig(entries=64))
        # Stride chosen to land in distinct sets (no conflict evictions).
        traces = [_trace(0x1000 + 16 * i) for i in range(5)]
        for trace in traces:
            cache.insert(trace)
        assert set(t.trace_id for t in cache.resident_traces()) == \
            set(t.trace_id for t in traces)

    def test_lru_within_set(self):
        # Force everything into one set with a constant-index config.
        cache = TraceCache(TraceCacheConfig(entries=2, ways=2))
        a, b, c = (_trace(0x1000), _trace(0x2000), _trace(0x3000))
        cache.insert(a)
        cache.insert(b)
        cache.lookup(a.trace_id)       # refresh a
        cache.insert(c)                # evicts b (LRU)
        assert cache.lookup(a.trace_id) is a
        assert cache.lookup(b.trace_id) is None
