"""Tests for the synthetic workload generator and SPEC95 stand-ins."""

import pytest

from repro.engine import FunctionalEngine
from repro.isa import Kind, Opcode
from repro.program import static_stats
from repro.trace import traces_of_stream
from repro.workloads import (
    LARGE_WORKING_SET,
    SPEC95_NAMES,
    SPEC95_PROFILES,
    WorkloadProfile,
    build_workload,
    generate,
)


@pytest.fixture(scope="module")
def small_profile():
    return WorkloadProfile(name="tiny", seed=7, procedures=6,
                           constructs_min=3, constructs_max=5,
                           switch_weight=0.15, call_guard_prob=0.5)


@pytest.fixture(scope="module")
def small_workload(small_profile):
    return generate(small_profile)


class TestGenerator:
    def test_deterministic(self, small_profile):
        first = generate(small_profile)
        second = generate(small_profile)
        assert first.image.instructions == second.image.instructions
        assert first.image.data == second.image.data

    def test_different_seeds_differ(self, small_profile):
        from dataclasses import replace
        other = generate(replace(small_profile, seed=8))
        base = generate(small_profile)
        assert other.image.instructions != base.image.instructions

    def test_runs_without_wild_jumps(self, small_workload):
        engine = FunctionalEngine(small_workload.image)
        stream = engine.run(30_000)
        assert len(stream) == 30_000  # no ExecutionError, no early halt

    def test_contains_all_construct_kinds(self, small_workload):
        stats = static_stats(small_workload.image)
        assert stats.conditional_branches > 0
        assert stats.backward_branches > 0
        assert stats.calls > 0
        assert stats.indirect_jumps > 0  # switches emitted
        assert stats.returns > 0

    def test_calls_and_returns_balance(self, small_workload):
        """Every dynamic call is matched by a return to its call site."""
        stream = FunctionalEngine(small_workload.image).run(30_000)
        stack = []
        for record in stream:
            if record.inst.is_call:
                stack.append(record.pc + 4)
            elif record.inst.is_return:
                assert stack, "return without a call"
                assert record.next_pc == stack.pop()

    def test_register_discipline_across_calls(self, small_workload):
        """Loop counters survive calls (callee-save discipline): every
        backward branch eventually falls through — no loop runs away."""
        stream = FunctionalEngine(small_workload.image).run(30_000)
        taken_streak: dict[int, int] = {}
        for record in stream:
            if record.inst.is_backward_branch():
                if record.taken:
                    streak = taken_streak.get(record.pc, 0) + 1
                    taken_streak[record.pc] = streak
                    assert streak < 2000, "runaway loop"
                else:
                    taken_streak[record.pc] = 0

    def test_switches_dispatch_through_data_segment(self, small_workload):
        """Indirect jumps land on code addresses stored in data."""
        image = small_workload.image
        code_targets = {v for v in image.data.values() if v in image}
        stream = FunctionalEngine(image).run(30_000)
        for record in stream:
            if (record.inst.kind is Kind.JUMP_INDIRECT
                    and not record.inst.is_return):
                assert record.next_pc in code_targets


class TestSpec95Suite:
    def test_all_eight_benchmarks(self):
        assert len(SPEC95_NAMES) == 8
        assert set(LARGE_WORKING_SET) <= set(SPEC95_NAMES)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            build_workload("spice")

    @pytest.mark.parametrize("name", SPEC95_NAMES)
    def test_benchmark_runs(self, name):
        workload = build_workload(name)
        stream = FunctionalEngine(workload.image).run(5_000)
        assert len(stream) == 5_000

    def test_working_set_ordering(self):
        """The paper's regime: gcc/go/vortex stress the trace cache far
        more than compress/ijpeg."""
        unique = {}
        for name in ("gcc", "compress"):
            workload = build_workload(name)
            stream = FunctionalEngine(workload.image).run(40_000)
            unique[name] = len({t.trace_id
                                for t in traces_of_stream(stream)})
        assert unique["gcc"] > 4 * unique["compress"]

    def test_profiles_have_matching_names(self):
        for name, profile in SPEC95_PROFILES.items():
            assert profile.name == name


class TestProfileValidation:
    def test_switch_arms_power_of_two(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", switch_arms=3)

    def test_bias_probability_range(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", biased_fraction=1.5)

    def test_guard_phases_power_of_two(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", guard_phases=3)

    def test_construct_weights_normalised(self):
        profile = WorkloadProfile(name="x", loop_weight=2.0,
                                  diamond_weight=2.0, switch_weight=0.0,
                                  call_weight=0.0)
        weights = profile.construct_weights
        assert abs(sum(weights.values()) - 1.0) < 1e-9
        assert weights["block"] == pytest.approx(0.0)
