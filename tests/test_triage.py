"""Regression triage: differ localization, hypotheses, report."""

import copy
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.runner import ExperimentSpec, ResultCache
from repro.triage import (
    RunCapture,
    capture_spec,
    diff_paths,
    diff_runs,
    diff_specs,
    first_divergent_bucket,
    load_capture,
    rank_hypotheses,
    render_report,
    write_report,
)

GOLDEN = Path(__file__).parent / "golden"
BUDGET = 4_000


def spec_for(**overrides):
    overrides.setdefault("benchmark", "compress")
    overrides.setdefault("tc_entries", 64)
    overrides.setdefault("pb_entries", 64)
    overrides.setdefault("instructions", BUDGET)
    return ExperimentSpec(**overrides)


def synthetic(label, rows, events=(), bucket_cycles=1024, summary=None):
    """A hand-built capture: ``rows`` maps bucket index -> overrides."""
    intervals = []
    for index in sorted(rows):
        row = {"type": "interval", "bucket": index,
               "start_cycle": index * bucket_cycles,
               "end_cycle": (index + 1) * bucket_cycles,
               "traces": 10, "instructions": 120, "trace_hits": 8,
               "trace_misses": 2, "buffer_hits": 1, "idle_cycles": 64,
               "traces_constructed": 1, "port_cycles": 32}
        row.update(rows[index])
        intervals.append(row)
    return RunCapture(label=label, bucket_cycles=bucket_cycles,
                      intervals=intervals, events=list(events),
                      summary=dict(summary or {}))


# ----------------------------------------------------------------------
# Binary-search bucket localization
# ----------------------------------------------------------------------
class TestFirstDivergentBucket:
    def test_identical_captures_have_no_divergence(self):
        a = synthetic("a", {i: {} for i in range(8)})
        b = synthetic("b", {i: {} for i in range(8)})
        assert first_divergent_bucket(a, b) is None

    @pytest.mark.parametrize("where", [0, 3, 7])
    def test_finds_the_first_divergent_bucket(self, where):
        a = synthetic("a", {i: {} for i in range(8)})
        rows = {i: ({"port_cycles": 99} if i >= where else {})
                for i in range(8)}
        b = synthetic("b", rows)
        assert first_divergent_bucket(a, b) == where

    def test_later_noise_does_not_mask_the_first_divergence(self):
        a = synthetic("a", {i: {} for i in range(8)})
        b = synthetic("b", {i: {} for i in range(8)})
        b.intervals[2]["trace_misses"] = 7
        b.intervals[6]["port_cycles"] = 999
        assert first_divergent_bucket(a, b) == 2

    def test_missing_bucket_reads_as_all_zeros(self):
        a = synthetic("a", {0: {}, 1: {}, 2: {}})
        b = synthetic("b", {0: {}, 2: {}})   # bucket 1 never emitted
        assert first_divergent_bucket(a, b) == 1

    def test_sparse_non_contiguous_bucket_indices(self):
        a = synthetic("a", {0: {}, 5: {}, 11: {}})
        b = synthetic("b", {0: {}, 5: {}, 11: {"idle_cycles": 1}})
        assert first_divergent_bucket(a, b) == 11

    def test_empty_captures_are_equal(self):
        assert first_divergent_bucket(synthetic("a", {}),
                                      synthetic("b", {})) is None


# ----------------------------------------------------------------------
# diff_runs: window, counters, event drill
# ----------------------------------------------------------------------
class TestDiffRuns:
    def test_identical_runs(self):
        a = synthetic("a", {i: {} for i in range(4)})
        result = diff_runs(a, copy.deepcopy(a))
        assert result.identical
        assert result.bucket is None
        assert result.hypotheses == []
        assert "identical" in result.format()

    def test_summary_only_divergence_is_not_identical(self):
        a = synthetic("a", {0: {}}, summary={"ipc": 1.0})
        b = synthetic("b", {0: {}}, summary={"ipc": 2.0})
        result = diff_runs(a, b)
        assert not result.identical
        assert result.bucket is None
        assert result.summary_deltas == {"ipc": (1.0, 2.0)}

    def test_bucket_width_mismatch_is_an_error(self):
        a = synthetic("a", {0: {}}, bucket_cycles=1024)
        b = synthetic("b", {0: {}}, bucket_cycles=512)
        with pytest.raises(ValueError, match="bucket width"):
            diff_runs(a, b)

    def test_window_is_one_bucket_wide(self):
        a = synthetic("a", {i: {} for i in range(6)})
        b = synthetic("b", {i: ({"port_cycles": 90} if i == 4 else {})
                            for i in range(6)})
        result = diff_runs(a, b)
        assert result.bucket == 4
        start, end = result.window
        assert (end - start) == a.bucket_cycles
        assert result.counters == {"port_cycles": (32, 90)}

    def test_event_drill_names_first_differing_record(self):
        events_a = [
            {"seq": 1, "cycle": 100, "source": "frontend",
             "event": "trace_hit"},
            {"seq": 2, "cycle": 300, "source": "engine",
             "event": "region_complete", "reason": "exhausted"},
        ]
        events_b = [
            {"seq": 5, "cycle": 100, "source": "frontend",
             "event": "trace_hit"},     # seq differs: not a divergence
            {"seq": 6, "cycle": 300, "source": "engine",
             "event": "region_complete", "reason": "fetch_bound"},
        ]
        a = synthetic("a", {0: {}}, events=events_a)
        b = synthetic("b", {0: {"traces_constructed": 3}}, events=events_b)
        result = diff_runs(a, b)
        assert result.first_event is not None
        assert result.first_event["position"] == 1
        assert result.first_event["b"]["reason"] == "fetch_bound"

    def test_event_drill_reports_stream_length_mismatch(self):
        record = {"seq": 1, "cycle": 10, "source": "frontend",
                  "event": "trace_miss"}
        a = synthetic("a", {0: {}}, events=[record])
        b = synthetic("b", {0: {"trace_misses": 9}},
                      events=[record, {"seq": 2, "cycle": 20,
                                       "source": "frontend",
                                       "event": "trace_miss"}])
        result = diff_runs(a, b)
        assert result.first_event["position"] == 1
        assert result.first_event["a"] is None
        assert result.first_event["b"]["cycle"] == 20


# ----------------------------------------------------------------------
# The acceptance scenario: injected I-cache-port counter skew
# ----------------------------------------------------------------------
class TestInjectedPortSkew:
    def test_diff_names_port_cycles_within_two_buckets(self):
        a = capture_spec(spec_for())
        b = copy.deepcopy(a)
        assert len(b.intervals) >= 3, "budget too small to bucket"
        target = b.intervals[1]
        target["port_cycles"] += 41
        result = diff_runs(a, b)
        assert not result.identical
        assert result.hypotheses
        assert result.hypotheses[0].counter == "port_cycles"
        assert result.hypotheses[0].source == "engine"
        # Cycle window no wider than 2 interval buckets, containing
        # the injected bucket.
        start, end = result.window
        assert (end - start) <= 2 * a.bucket_cycles
        assert start <= target["start_cycle"] < end

    def test_real_captures_record_port_cycles(self):
        capture = capture_spec(spec_for())
        assert any(row["port_cycles"] for row in capture.intervals)


# ----------------------------------------------------------------------
# Hypothesis ranking
# ----------------------------------------------------------------------
class TestHypotheses:
    def test_ranked_by_relative_skew(self):
        bucket_a = {"traces": 100, "port_cycles": 10}
        bucket_b = {"traces": 105, "port_cycles": 40}
        ranked = rank_hypotheses(bucket_a, bucket_b, (0, 1024))
        assert [h.counter for h in ranked[:2]] == ["port_cycles", "traces"]
        assert ranked[0].rank == 1
        assert ranked[0].delta == 30
        assert ranked[1].rank == 2

    def test_equal_counters_produce_no_hypothesis(self):
        ranked = rank_hypotheses({"traces": 5}, {"traces": 5}, (0, 1024))
        assert ranked == []

    def test_evidence_event_carries_pc(self):
        events_a = [{"seq": 1, "cycle": 10, "source": "frontend",
                     "event": "trace_miss", "pc": 0x1000}]
        events_b = [{"seq": 1, "cycle": 12, "source": "frontend",
                     "event": "trace_miss", "pc": 0x2000}]
        ranked = rank_hypotheses({"trace_misses": 1}, {"trace_misses": 2},
                                 (0, 1024), events_a, events_b)
        suspect = next(h for h in ranked if h.counter == "trace_misses")
        assert suspect.event is not None
        assert suspect.pc == 0x2000
        assert "pc=0x2000" in suspect.describe()

    def test_to_dict_is_json_serialisable(self):
        ranked = rank_hypotheses({"traces": 1}, {"traces": 2}, (0, 1024))
        json.dumps([h.to_dict() for h in ranked])


# ----------------------------------------------------------------------
# Capture I/O: three accepted manifest shapes
# ----------------------------------------------------------------------
class TestCaptureIO:
    def test_capture_round_trips_through_disk(self, tmp_path):
        capture = synthetic("roundtrip", {0: {}, 1: {"traces": 3}},
                            events=[{"seq": 1, "cycle": 5,
                                     "source": "frontend",
                                     "event": "trace_hit"}],
                            summary={"ipc": 1.5})
        path = capture.write(tmp_path / "capture.json")
        loaded = load_capture(path)
        assert loaded.label == "roundtrip"
        assert loaded.intervals == capture.intervals
        assert loaded.events == capture.events
        assert loaded.summary == capture.summary

    def test_run_manifest_is_reexecuted_observed(self, tmp_path):
        spec = spec_for()
        payload = {"schema": 4, "digest": "x" * 64,
                   "spec": spec.to_dict(), "metrics": {"ipc": 1.0}}
        path = tmp_path / "entry.json"
        path.write_text(json.dumps(payload))
        capture = load_capture(path)
        assert capture.spec == spec.to_dict()
        assert capture.intervals and capture.events

    def test_bare_spec_payload_is_executed(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec_for().to_dict()))
        capture = load_capture(path)
        assert capture.label == spec_for().label
        assert capture.intervals

    def test_junk_payload_is_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="not a capture"):
            load_capture(path)
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="JSON object"):
            load_capture(path)


# ----------------------------------------------------------------------
# diff_specs: the ResultCache short-circuit
# ----------------------------------------------------------------------
class TestDiffSpecs:
    def test_equal_aggregates_short_circuit_observed_runs(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = spec_for()
        first = diff_specs(spec, spec, cache=cache)
        assert first.identical
        # Warm rerun: both points served from cache, nothing executes.
        second = diff_specs(spec, spec, cache=cache)
        assert second.identical
        assert second.executed == 0

    def test_divergent_specs_localize(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        result = diff_specs(spec_for(pb_entries=64),
                            spec_for(pb_entries=0), cache=cache)
        assert not result.identical
        assert result.executed >= 2   # the observed runs were paid for


# ----------------------------------------------------------------------
# Golden capture pair + CLI
# ----------------------------------------------------------------------
class TestGoldenPair:
    A = GOLDEN / "triage_capture_a.json"
    B = GOLDEN / "triage_capture_b.json"

    def test_golden_diff_names_the_injected_port_skew(self):
        result = diff_paths(self.A, self.B)
        assert not result.identical
        assert result.bucket == 3
        assert result.hypotheses[0].counter == "port_cycles"
        assert result.counters["port_cycles"] == (96, 160)

    def test_cli_diff_exits_one_on_divergence(self, capsys):
        assert main(["diff", str(self.A), str(self.B)]) == 1
        out = capsys.readouterr().out
        assert "port_cycles" in out
        assert "first divergent bucket: 3" in out

    def test_cli_diff_exits_zero_when_identical(self, capsys):
        assert main(["diff", str(self.A), str(self.A)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_cli_diff_json_output(self, capsys):
        assert main(["diff", "--json", str(self.A), str(self.B)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["bucket"] == 3
        assert payload["hypotheses"][0]["counter"] == "port_cycles"
        assert payload["window"] == [3072, 4096]

    def test_cli_diff_bad_input_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["diff", str(missing), str(self.A)]) == 2
        assert "diff:" in capsys.readouterr().err

    def test_cli_diff_on_spec_manifests_short_circuits(self, tmp_path,
                                                       capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec_for().to_dict()))
        assert main(["diff", str(path), str(path)]) == 0
        assert "identical" in capsys.readouterr().out


# ----------------------------------------------------------------------
# repro report
# ----------------------------------------------------------------------
@pytest.fixture
def report_inputs(tmp_path):
    metrics = tmp_path / "metrics.jsonl"
    rows = [
        {"type": "meta", "bucket_cycles": 1024, "buckets": 2},
        {"type": "interval", "bucket": 0, "start_cycle": 0,
         "end_cycle": 1024, "traces": 10, "instructions": 120,
         "trace_hits": 8, "trace_misses": 2, "buffer_hits": 1,
         "idle_cycles": 64, "traces_constructed": 1, "port_cycles": 32,
         "trace_misses_per_ki": 16.7},
        {"type": "interval", "bucket": 1, "start_cycle": 1024,
         "end_cycle": 2048, "traces": 12, "instructions": 140,
         "trace_hits": 11, "trace_misses": 1, "buffer_hits": 2,
         "idle_cycles": 30, "traces_constructed": 2, "port_cycles": 40,
         "trace_misses_per_ki": 7.1},
        {"type": "histogram", "name": "trace_length", "count": 22,
         "min": 1, "max": 9, "mean": 5.2,
         "counts": {"1": 2, "5": 12, "9": 8}},
    ]
    metrics.write_text("\n".join(json.dumps(row) for row in rows) + "\n")
    bench = tmp_path / "BENCH_quick.json"
    bench.write_text(json.dumps({
        "schema": 1, "mode": "quick", "jobs": 1,
        "baseline_commit": "61d73a5",
        "sections": {"figure5": {"specs": 40, "baseline_seconds": 9.67,
                                 "current_seconds": 4.1,
                                 "speedup": 2.36}},
        "total": {"baseline_seconds": 9.67, "current_seconds": 4.1,
                  "speedup": 2.36}}))
    trace = tmp_path / "trace.json"
    trace.write_text(json.dumps({"traceEvents": []}))
    return metrics, bench, trace


class TestReport:
    def test_report_is_one_self_contained_html_file(self, report_inputs):
        metrics, bench, trace = report_inputs
        html = render_report(metrics=[metrics], bench=[bench],
                             traces=[trace])
        assert html.startswith("<!doctype html>")
        # Every declared input is rendered.
        for needle in ("trace_length", "figure5", "trace.json",
                       "ui.perfetto.dev", "trace misses per 1000"):
            assert needle in html, needle
        # Self-contained: no external scripts, stylesheets, or fetches.
        assert "<script" not in html
        assert "<link" not in html
        assert "url(http" not in html
        # Light/dark both ship via CSS custom properties.
        assert "prefers-color-scheme: dark" in html
        assert 'data-theme="dark"' in html

    def test_histograms_fold_into_bounded_bins(self, tmp_path):
        rows = [
            {"type": "meta", "bucket_cycles": 1024, "buckets": 0},
            {"type": "histogram", "name": "idle_burst_length",
             "count": 500, "min": 1, "max": 500, "mean": 250.0,
             "counts": {str(v): 1 for v in range(1, 501)}},
        ]
        metrics = tmp_path / "wide.jsonl"
        metrics.write_text("\n".join(json.dumps(r) for r in rows))
        html = render_report(metrics=[metrics])
        # 500 distinct values must not become 500 bars.
        assert html.count("<path") <= 40

    def test_empty_input_set_is_an_error(self):
        with pytest.raises(ValueError, match="nothing to report"):
            render_report()

    def test_cli_report_writes_the_dashboard(self, report_inputs,
                                             tmp_path, capsys):
        metrics, bench, trace = report_inputs
        out = tmp_path / "dash.html"
        assert main(["report", "--metrics", str(metrics),
                     "--bench", str(bench), "--perfetto", str(trace),
                     "--title", "smoke", "-o", str(out)]) == 0
        assert out.is_file()
        assert "smoke" in out.read_text()
        assert str(out) in capsys.readouterr().out

    def test_cli_report_without_inputs_exits_two(self, tmp_path, capsys):
        assert main(["report", "-o", str(tmp_path / "x.html")]) == 2
        assert "report:" in capsys.readouterr().err

    def test_write_report_returns_the_path(self, report_inputs, tmp_path):
        metrics, _, _ = report_inputs
        target = write_report(tmp_path / "out.html", metrics=[metrics])
        assert target == tmp_path / "out.html"
        assert target.is_file()
