"""Tests for the workload fuzzer, the failure minimizer, and the
pinned golden corpus of regression programs."""

import json
from pathlib import Path

import pytest

from repro.check import (
    check_profile,
    fuzz_case_spec,
    knob_diff,
    minimize_case,
    run_fuzz,
)
from repro.check.minimize import MIN_INSTRUCTIONS
from repro.runner import ResultCache
from repro.sim.frontend_runner import FrontendSimulation
from repro.workloads import WorkloadProfile, fuzz_profile, profile_for

GOLDEN = Path(__file__).resolve().parent / "golden" / "fuzz_corpus.json"
BUDGET = 3_000


@pytest.fixture
def broken_slow_path(monkeypatch):
    """Deliberately corrupt a timing counter (the documented mutation
    check from DESIGN.md §12): every slow-path fetch under-counts
    ``slow_path_traces`` by one, breaking the conservation laws."""
    original = FrontendSimulation._slow_path_fetch

    def corrupted(self, actual):
        cycles = original(self, actual)
        self.stats.slow_path_traces -= 1
        return cycles

    monkeypatch.setattr(FrontendSimulation, "_slow_path_fetch", corrupted)


class TestFuzzCaseSpec:
    def test_spec_is_a_pure_function_of_the_seed(self):
        assert fuzz_case_spec(9, BUDGET) == fuzz_case_spec(9, BUDGET)

    def test_spec_names_route_to_the_sampler(self):
        spec = fuzz_case_spec(9, BUDGET)
        assert spec.kind == "check"
        assert spec.benchmark == "fuzz-9"
        assert profile_for(spec.benchmark) == fuzz_profile(9)

    def test_seeds_vary_the_frontend_sizing(self):
        sizes = {(fuzz_case_spec(seed).tc_entries,
                  fuzz_case_spec(seed).pb_entries)
                 for seed in range(30)}
        assert len(sizes) > 1

    def test_seeds_draw_every_mechanism(self):
        from repro.frontends import mechanism_names

        drawn = {fuzz_case_spec(seed).mechanism for seed in range(30)}
        assert drawn == set(mechanism_names())


class TestMechanismZooUnderOracles:
    """Every registered mechanism must satisfy the cross-model
    invariants — the zoo inherits the validation methodology."""

    @pytest.mark.parametrize("mechanism", ["mana", "nextline", "pmap",
                                           "preconstruction"])
    def test_mechanism_passes_core_oracles(self, mechanism):
        report = check_profile(
            fuzz_profile(3), BUDGET, tc_entries=64, pb_entries=64,
            mechanism=mechanism,
            oracles=["determinism", "conservation", "coverage"])
        assert report.ok, [str(v) for v in report.violations]
        assert report.mechanism == mechanism


class TestRunFuzz:
    def test_clean_sweep_reports_ok(self):
        report = run_fuzz(3, BUDGET)
        assert report.ok
        assert report.cases == 3
        assert report.total_violations == 0
        assert "all oracles held" in report.format()

    def test_warm_rerun_is_served_from_cache(self, tmp_path):
        cold = run_fuzz(3, BUDGET, cache=ResultCache(tmp_path))
        assert cold.cache_hits == 0
        warm = run_fuzz(3, BUDGET, cache=ResultCache(tmp_path))
        assert warm.ok == cold.ok
        assert warm.cache_hits == 3
        assert warm.wall_seconds < cold.wall_seconds

    def test_report_serialises(self):
        payload = run_fuzz(2, BUDGET, oracles=["conservation"]).to_dict()
        assert payload["oracles"] == ["conservation"]
        json.dumps(payload)  # JSON-serialisable throughout

    def test_seed_validation(self):
        with pytest.raises(ValueError, match="seeds"):
            run_fuzz(0, BUDGET)


class TestMutationCheck:
    """Breaking a counter must produce a failing, minimizable case."""

    def test_oracles_catch_the_broken_counter(self, broken_slow_path):
        report = check_profile(fuzz_profile(7), BUDGET)
        assert not report.ok
        assert report.by_oracle()["conservation"] > 0

    def test_fuzz_surfaces_and_minimizes_the_failure(self, broken_slow_path,
                                                     tmp_path):
        report = run_fuzz(2, BUDGET, failures_dir=tmp_path / "failures")
        assert not report.ok
        assert len(report.failures) == 2
        for failure in report.failures:
            assert failure.violations > 0
            # The corrupted counter lives in the scalar kernel: a case
            # whose primary leg is scalar trips the conservation laws,
            # while a vectorized-leg case sees clean conservation but
            # the simulator differential catches the kernel divergence.
            assert any("[conservation]" in m or "[simulator]" in m
                       for m in failure.messages)
            minimized = failure.minimized
            assert minimized is not None
            # Acceptance criterion: the reproducer is within 3 profile
            # knobs of the default profile.
            assert len(minimized.knobs) <= 3
            assert not minimized.report.ok
            assert Path(failure.script_path).is_file()
        formatted = report.format()
        assert "failing case(s)" in formatted
        assert "minimized:" in formatted

    def test_minimizer_shrinks_budget_and_knobs(self, broken_slow_path):
        minimized = minimize_case(fuzz_profile(7), BUDGET)
        assert minimized is not None
        assert minimized.instructions < BUDGET
        assert minimized.instructions >= MIN_INSTRUCTIONS
        # The scalar-kernel corruption breaks conservation directly and
        # diverges from the (uncorrupted) vectorized kernel.
        assert minimized.failing_oracles == ("conservation", "simulator")
        assert len(minimized.knobs) <= minimized.original_knobs
        assert minimized.probes > 1

    def test_repro_script_is_self_contained(self, broken_slow_path):
        minimized = minimize_case(fuzz_profile(7), BUDGET)
        script = minimized.script()
        assert "from repro.check import check_profile" in script
        assert f"seed={minimized.profile.seed!r}" in script
        assert "'conservation'" in script
        compile(script, "<repro-script>", "exec")  # syntactically valid


class TestMinimizerOnPassingCase:
    def test_returns_none_when_nothing_fails(self):
        assert minimize_case(fuzz_profile(3), BUDGET) is None

    def test_knob_diff_ignores_identity_fields(self):
        profile = WorkloadProfile(name="x", seed=33)
        assert knob_diff(profile) == {}
        assert knob_diff(fuzz_profile(0))  # fuzz profiles do differ


class TestGoldenCorpus:
    """Pinned regression programs promoted from fuzz exploration.

    Each corpus case is a self-contained knob overlay — independent of
    the fuzz sampler — that must keep passing every oracle."""

    def _cases(self):
        return json.loads(GOLDEN.read_text())["cases"]

    def test_corpus_is_non_trivial(self):
        cases = self._cases()
        assert len(cases) >= 5
        names = [case["name"] for case in cases]
        assert len(names) == len(set(names))

    def test_corpus_exercises_both_kernels(self):
        drawn = {case.get("simulator", "scalar") for case in self._cases()}
        assert drawn == {"scalar", "vectorized"}

    @pytest.mark.parametrize("case", json.loads(
        GOLDEN.read_text())["cases"], ids=lambda case: case["name"])
    def test_pinned_case_passes_every_oracle(self, case):
        profile = WorkloadProfile(name=case["name"], seed=case["seed"],
                                  **case["knobs"])
        report = check_profile(
            profile, case["instructions"],
            tc_entries=case["tc_entries"],
            pb_entries=case["pb_entries"],
            static_seed=case["static_seed"],
            mechanism=case.get("mechanism", "preconstruction"),
            simulator=case.get("simulator", "scalar"))
        assert report.ok, [str(v) for v in report.violations]


class TestFuzzCLIAutoMinimize:
    def test_failure_emits_repro_script_in_default_dir(
            self, broken_slow_path, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        # No --failures-dir: scripts land in ./fuzz-failures relative
        # to the working directory, and the report names each one.
        monkeypatch.chdir(tmp_path)
        assert main(["--no-cache", "fuzz", "--seeds", "1",
                     "--budget", "3000"]) == 1
        out = capsys.readouterr().out
        assert "repro script:" in out
        scripts = list((tmp_path / "fuzz-failures").glob("repro_fuzz_*.py"))
        assert scripts
        for script in scripts:
            assert str(script) in out or script.name in out
            compile(script.read_text(), str(script), "exec")
