"""Tests for the stable ``repro.api`` facade."""

from repro import api


class TestSurface:
    def test_runner_names(self):
        for name in ("ExperimentSpec", "RunResult", "ExperimentRunner",
                     "ResultCache", "StreamCache", "TimingReport",
                     "run_point", "sweep", "resolve_instructions",
                     "DEFAULT_INSTRUCTIONS"):
            assert hasattr(api, name), name

    def test_simulation_names(self):
        for name in ("run_frontend", "run_processor", "run_dynamic_frontend",
                     "FrontendConfig", "ProcessorConfig",
                     "DynamicPartitionConfig", "build_workload", "generate",
                     "SPEC95_NAMES", "assemble", "ProgramImage",
                     "analyze_image"):
            assert hasattr(api, name), name

    def test_exhibit_names(self):
        for name in ("figure5_sweep", "figure6", "figure8", "compute_tables",
                     "format_figure5", "format_figure6", "format_figure8",
                     "format_all_tables"):
            assert hasattr(api, name), name

    def test_all_is_accurate(self):
        for name in api.__all__:
            assert hasattr(api, name), name


class TestBehaviour:
    def test_run_point_and_sweep(self):
        spec = api.ExperimentSpec(benchmark="compress", tc_entries=64,
                                  pb_entries=32, instructions=4_000)
        result = api.run_point(spec)
        assert result.spec is spec
        assert result.metrics["trace_misses_per_ki"] >= 0

        results = api.sweep([spec, spec.replace(pb_entries=0)])
        assert [r.spec for r in results] == [spec, spec.replace(pb_entries=0)]

    def test_analyze(self):
        report = api.analyze("compress")
        assert report.procedures > 0
        assert report.basic_blocks > 0
        assert report.ok

    def test_analyze_workload_seed(self):
        base = api.analyze("compress")
        reseeded = api.analyze("compress", workload_seed=99)
        assert (base.basic_blocks, base.call_sites) != (
            reseeded.basic_blocks, reseeded.call_sites)
