"""Tests for experiment result records and serialisation."""

import pytest

from repro.analysis import StreamCache, run_frontend_point, run_processor_point
from repro.analysis.results import (
    ExperimentRecord,
    ResultSet,
    record_frontend_stats,
    record_processor_stats,
)
from repro.runner import ExperimentSpec


@pytest.fixture(scope="module")
def cache():
    return StreamCache(instructions=6_000)


class TestRecords:
    def test_frontend_record(self, cache):
        spec = ExperimentSpec(benchmark="compress", tc_entries=64,
                              pb_entries=32, instructions=6_000)
        stats = run_frontend_point(cache, spec)
        record = record_frontend_stats("figure5", "compress", 64, 32, stats)
        assert record.config == {"tc_entries": 64, "pb_entries": 32}
        assert record.metrics["trace_misses_per_ki"] >= 0
        assert record.instructions == 6_000

    def test_processor_record(self, cache):
        spec = ExperimentSpec(benchmark="compress", tc_entries=64,
                              kind="processor", instructions=6_000)
        stats = run_processor_point(cache, spec)
        record = record_processor_stats("figure6", "compress", 64, 0,
                                        False, stats)
        assert record.metrics["ipc"] > 0
        assert record.metrics["cycles"] > 0


class TestResultSet:
    def _sample(self):
        return ExperimentRecord(
            exhibit="figure5", benchmark="gcc",
            config={"tc_entries": 256, "pb_entries": 0},
            metrics={"trace_misses_per_ki": 10.5}, instructions=1000)

    def test_filtering(self):
        results = ResultSet()
        results.add(self._sample())
        results.add(ExperimentRecord(
            exhibit="table1", benchmark="go", config={},
            metrics={}, instructions=1000))
        assert len(results.for_exhibit("figure5")) == 1
        assert len(results.for_benchmark("go")) == 1

    def test_save_load_round_trip(self, tmp_path):
        results = ResultSet([self._sample()])
        path = tmp_path / "results.json"
        results.save(path)
        loaded = ResultSet.load(path)
        assert loaded.records == results.records

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99, "records": []}')
        with pytest.raises(ValueError):
            ResultSet.load(path)
