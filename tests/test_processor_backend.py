"""Tests for the backend timing model (PEs, buses, windowed issue)."""

import pytest

from repro.isa import Instruction, Opcode, assemble
from repro.processor import BackendConfig, BackendModel


def _seq(source: str):
    insts, _ = assemble(source)
    return tuple(insts)


class TestSingleTraceTiming:
    def test_independent_ops_issue_two_wide(self):
        backend = BackendModel(BackendConfig())
        seq = _seq("""
            addi r1, r0, 1
            addi r2, r0, 2
            addi r3, r0, 3
            addi r4, r0, 4
        """)
        timing = backend.execute_trace(seq, dispatch=0, pe=0)
        # 4 independent 1-cycle ops at 2/cycle: done at cycle 2.
        assert timing.done == 2

    def test_dependent_chain_serialises(self):
        backend = BackendModel()
        seq = _seq("""
            addi r1, r0, 1
            addi r2, r1, 1
            addi r3, r2, 1
            addi r4, r3, 1
        """)
        timing = backend.execute_trace(seq, dispatch=0, pe=0)
        # Back-to-back dependent 1-cycle ops: one per cycle.
        assert timing.done == 4

    def test_latency_respected(self):
        backend = BackendModel()
        seq = _seq("""
            mul r1, r9, r9
            addi r2, r1, 1
        """)
        timing = backend.execute_trace(seq, dispatch=0, pe=0)
        # mul issues at 0, completes at 3; add issues at 3, completes 4.
        assert timing.done == 4

    def test_dispatch_offset_shifts_everything(self):
        backend = BackendModel()
        seq = _seq("addi r1, r0, 1")
        timing = backend.execute_trace(seq, dispatch=10, pe=0)
        assert timing.done == 11

    def test_last_control_tracked(self):
        backend = BackendModel()
        seq = _seq("""
            addi r1, r0, 1
            beq  r1, r0, 8
            addi r2, r0, 2
        """)
        timing = backend.execute_trace(seq, dispatch=0, pe=0)
        assert timing.last_control >= 2  # branch waits for r1


class TestCrossPECommunication:
    def test_cross_pe_value_pays_bus_delay(self):
        backend = BackendModel(BackendConfig(cross_pe_delay=1))
        producer = _seq("mul r1, r9, r9")  # completes at 3 on PE 0
        backend.execute_trace(producer, dispatch=0, pe=0)
        consumer = _seq("addi r2, r1, 1")
        same_pe = BackendModel(BackendConfig())
        same_pe.execute_trace(producer, dispatch=0, pe=0)
        t_same = same_pe.execute_trace(consumer, dispatch=0, pe=0)
        t_cross = backend.execute_trace(consumer, dispatch=0, pe=1)
        assert t_cross.done == t_same.done + 1

    def test_old_values_are_free(self):
        """A value architected before this trace dispatched needs no
        bus (it's in the register file)."""
        backend = BackendModel()
        backend.execute_trace(_seq("addi r1, r0, 5"), dispatch=0, pe=0)
        timing = backend.execute_trace(_seq("addi r2, r1, 1"),
                                       dispatch=10, pe=1)
        assert timing.done == 11

    def test_bus_contention_counted(self):
        config = BackendConfig(result_buses=1)
        backend = BackendModel(config)
        # Two producers on PE0 completing the same cycle...
        backend.execute_trace(_seq("""
            addi r1, r0, 1
            addi r2, r0, 2
        """), dispatch=0, pe=0)
        # ...consumed cross-PE while still in flight.
        backend.execute_trace(_seq("""
            addi r3, r1, 1
            addi r4, r2, 1
        """), dispatch=0, pe=1)
        assert backend.bus_conflicts >= 1


class TestWindowedIssue:
    CHAIN_THEN_INDEPENDENT = """
        mul  r1, r9, r9
        mul  r2, r1, r1
        mul  r3, r2, r2
        addi r4, r0, 1
        addi r5, r0, 2
        addi r6, r0, 3
        addi r7, r0, 4
        addi r8, r0, 5
    """

    def _done(self, lookahead: int) -> int:
        backend = BackendModel(BackendConfig(issue_lookahead=lookahead))
        timing = backend.execute_trace(_seq(self.CHAIN_THEN_INDEPENDENT),
                                       dispatch=0, pe=0)
        return timing.done

    def test_larger_window_never_slower(self):
        times = [self._done(look) for look in (1, 2, 4, 8, 16)]
        for small, large in zip(times, times[1:]):
            assert large <= small

    def test_in_order_window_blocks_on_chain(self):
        """Lookahead 1 (strict in-order) must stall behind the mul
        chain; a big window runs the independent adds underneath."""
        assert self._done(1) > self._done(16)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            BackendConfig(num_pes=0)
        with pytest.raises(ValueError):
            BackendConfig(issue_lookahead=0)
