"""Unit tests for the branch-prediction substrate."""

import pytest

from repro.branch import (
    Bias,
    BimodalPredictor,
    NextTracePredictor,
    NextTracePredictorConfig,
    PathHistory,
    ReturnAddressStack,
    fold_ids,
)


class TestBimodal:
    def test_counter_saturates(self):
        predictor = BimodalPredictor(entries=64, initial=1)
        pc = 0x1000
        for _ in range(10):
            predictor.update(pc, taken=True)
        assert predictor.counter(pc) == 3
        for _ in range(10):
            predictor.update(pc, taken=False)
        assert predictor.counter(pc) == 0

    def test_prediction_follows_training(self):
        predictor = BimodalPredictor(entries=64)
        pc = 0x2000
        predictor.update(pc, taken=True)
        predictor.update(pc, taken=True)
        assert predictor.predict(pc) is True

    def test_bias_classes(self):
        predictor = BimodalPredictor(entries=64, initial=1)
        pc = 0x3000
        assert predictor.bias(pc) is Bias.WEAK
        predictor.update(pc, taken=True)
        predictor.update(pc, taken=True)
        assert predictor.bias(pc) is Bias.STRONG_TAKEN
        for _ in range(3):
            predictor.update(pc, taken=False)
        assert predictor.bias(pc) is Bias.STRONG_NOT_TAKEN

    def test_misprediction_accounting(self):
        predictor = BimodalPredictor(entries=64, initial=1)
        pc = 0x4000
        predicted = predictor.predict(pc)
        predictor.update(pc, taken=not predicted, predicted=predicted)
        assert predictor.mispredictions == 1
        assert predictor.misprediction_rate == 1.0

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=100)

    def test_distinct_branches_do_not_interfere(self):
        predictor = BimodalPredictor(entries=4096, initial=1)
        predictor.update(0x1000, taken=True)
        predictor.update(0x1000, taken=True)
        assert predictor.peek(0x2000) is False


class TestReturnAddressStack:
    def test_lifo_order(self):
        ras = ReturnAddressStack(depth=4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(depth=2)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.overflows == 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None


class TestPathHistory:
    def test_bounded_depth(self):
        history = PathHistory(depth=3)
        for i in range(5):
            history.append(i)
        assert history.ids() == (2, 3, 4)

    def test_hash_is_order_sensitive(self):
        assert fold_ids([1, 2]) != fold_ids([2, 1])

    def test_partial_hash(self):
        history = PathHistory(depth=4, initial=[1, 2, 3, 4])
        assert history.hash(length=1) == fold_ids([4])

    def test_snapshot_restore(self):
        history = PathHistory(depth=4, initial=[1, 2])
        snap = history.snapshot()
        history.append(3)
        history.restore(snap)
        assert history.ids() == (1, 2)


class TestNextTracePredictor:
    def test_learns_repeating_sequence(self):
        predictor = NextTracePredictor()
        sequence = ["A", "B", "C", "D"] * 30
        correct_late = 0
        for i, actual in enumerate(sequence):
            predicted = predictor.predict()
            predictor.update(actual, predicted)
            if i >= len(sequence) - 8 and predicted == actual:
                correct_late += 1
        assert correct_late >= 7  # fully learned by the end

    def test_no_prediction_when_cold(self):
        predictor = NextTracePredictor()
        assert predictor.predict() is None
        assert predictor.no_prediction == 1

    def test_secondary_table_covers_new_contexts(self):
        """After learning A->B in one context, a different path ending in
        A still yields B via the short-history secondary table.

        Uses integer trace identities: real trace IDs hash
        deterministically (``TraceID`` folds tuples of ints), whereas
        raw strings are salted by ``PYTHONHASHSEED`` and make the
        table-collision pattern — hence the outcome — run-dependent."""
        a, b, q = 0xA, 0xB, 0x0
        predictor = NextTracePredictor(NextTracePredictorConfig(
            primary_entries=1024, secondary_entries=256, history_depth=4))
        for prefix in (0x1, 0x2, 0x3, 0x4):
            predictor.update(prefix, None)
            predictor.update(a, None)
            predictor.update(b, None)
        # Fresh context ending in A:
        predictor.update(q, None)
        predictor.update(a, None)
        assert predictor.predict() == b

    def test_rhs_restores_history_across_calls(self):
        """Caller-side history is preserved across a callee whose traces
        would otherwise pollute the path."""
        config = NextTracePredictorConfig(history_depth=2, rhs_depth=8)
        predictor = NextTracePredictor(config)
        predictor.update("caller1", None)
        predictor.update("call_trace", None, ends_in_call=True)
        before = predictor.history.ids()
        predictor.update("callee_a", None)
        predictor.update("callee_ret", None, ends_in_return=True)
        # History = restored snapshot + the returning trace appended.
        assert predictor.history.ids() == (before + ("callee_ret",))[-2:]

    def test_accuracy_property(self):
        predictor = NextTracePredictor()
        for actual in ["A", "B"] * 50:
            predicted = predictor.predict()
            predictor.update(actual, predicted)
        assert 0.0 <= predictor.accuracy <= 1.0
        assert predictor.accuracy > 0.5

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            NextTracePredictorConfig(primary_entries=1000)
