"""Tests for the parallel experiment runner: spec, cache, pool."""

import dataclasses
import json

import pytest

from repro.runner import (
    DEFAULT_INSTRUCTIONS,
    SPEC_SCHEMA_VERSION,
    ExperimentRunner,
    ExperimentSpec,
    ResultCache,
    RunResult,
    StreamCache,
    execute_spec,
    resolve_instructions,
    run_point,
    sweep,
)

BUDGET = 4_000


def spec_for(benchmark="compress", **overrides):
    overrides.setdefault("instructions", BUDGET)
    overrides.setdefault("tc_entries", 64)
    overrides.setdefault("pb_entries", 32)
    return ExperimentSpec(benchmark=benchmark, **overrides)


# ----------------------------------------------------------------------
# ExperimentSpec
# ----------------------------------------------------------------------
class TestExperimentSpec:
    def test_frozen_and_hashable(self):
        spec = spec_for()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.tc_entries = 128
        assert spec == spec_for()
        assert len({spec, spec_for()}) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentSpec(benchmark="", instructions=1)
        with pytest.raises(ValueError):
            ExperimentSpec(benchmark="gcc", tc_entries=0, instructions=1)
        with pytest.raises(ValueError):
            ExperimentSpec(benchmark="gcc", pb_entries=-1, instructions=1)
        with pytest.raises(ValueError):
            ExperimentSpec(benchmark="gcc", kind="nope", instructions=1)
        with pytest.raises(ValueError):
            ExperimentSpec(benchmark="gcc", preprocess=True, instructions=1)
        with pytest.raises(ValueError):
            ExperimentSpec(benchmark="gcc", instructions=-5)

    def test_digest_is_stable(self):
        assert spec_for().digest() == spec_for().digest()

    @pytest.mark.parametrize("change", [
        {"benchmark": "gcc"}, {"tc_entries": 128}, {"pb_entries": 0},
        {"static_seed": True}, {"instructions": 5_000},
        {"workload_seed": 7}, {"kind": "dynamic"},
        {"kind": "processor", "preprocess": True},
    ])
    def test_digest_changes_with_any_field(self, change):
        assert spec_for().digest() != spec_for().replace(**change).digest()

    def test_digest_changes_with_schema_version(self):
        spec = spec_for()
        assert spec.digest(schema_version=1) != spec.digest(schema_version=2)

    def test_round_trip(self):
        spec = spec_for(kind="processor", preprocess=True)
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_configs_match_spec(self):
        spec = spec_for(static_seed=True)
        config = spec.frontend_config()
        assert config.trace_cache.entries == 64
        assert config.preconstruction.buffer_entries == 32
        assert config.static_seed
        proc = spec_for(kind="processor", preprocess=True).processor_config()
        assert proc.preprocess is not None
        assert spec_for().processor_config().preprocess is None

    def test_budget_resolution_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "1234")
        # Explicit value wins over the environment ...
        assert resolve_instructions(777) == 777
        assert ExperimentSpec(benchmark="gcc",
                              instructions=777).instructions == 777
        # ... the environment wins over the built-in default ...
        assert resolve_instructions() == 1234
        assert ExperimentSpec(benchmark="gcc").instructions == 1234
        # ... and the default is the fallback.
        monkeypatch.delenv("REPRO_INSTRUCTIONS")
        assert resolve_instructions() == DEFAULT_INSTRUCTIONS
        assert (ExperimentSpec(benchmark="gcc").instructions
                == DEFAULT_INSTRUCTIONS)


# ----------------------------------------------------------------------
# ResultCache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = spec_for()
        assert cache.get(spec) is None
        result = execute_spec(spec)
        cache.put(spec, result)
        loaded = cache.get(spec)
        assert loaded is not None
        assert loaded.cached
        assert loaded.spec == spec
        assert loaded.metrics == result.metrics

    def test_any_field_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = spec_for()
        cache.put(spec, execute_spec(spec))
        assert cache.get(spec.replace(tc_entries=128)) is None

    def test_schema_version_change_misses(self, tmp_path):
        spec = spec_for()
        ResultCache(tmp_path).put(spec, execute_spec(spec))
        bumped = SPEC_SCHEMA_VERSION + 1
        assert ResultCache(tmp_path, schema_version=bumped).get(spec) is None

    def test_corrupted_entry_falls_back_to_recompute(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = spec_for()
        fresh = run_point(spec, cache=cache)
        assert not fresh.cached
        cache.path_for(spec).write_text("{ not json")
        recomputed = run_point(spec, cache=cache)
        assert not recomputed.cached
        assert recomputed.metrics == fresh.metrics
        # The recompute repaired the entry.
        assert run_point(spec, cache=cache).cached

    def test_tampered_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = spec_for()
        cache.put(spec, execute_spec(spec))
        payload = json.loads(cache.path_for(spec).read_text())
        payload["spec"]["tc_entries"] = 999
        cache.path_for(spec).write_text(json.dumps(payload))
        assert cache.get(spec) is None

    def test_default_dir_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert ResultCache().root == tmp_path / "custom"

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(spec_for(), execute_spec(spec_for()))
        assert cache.clear() == 1
        assert cache.entries() == []

    def test_corrupted_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = spec_for()
        cache.put(spec, execute_spec(spec))
        path = cache.path_for(spec)
        path.write_text("{ not json")
        assert cache.get(spec) is None
        # The bad bytes moved aside: no longer listed, no longer parsed.
        assert not path.exists()
        assert cache.entries() == []
        quarantined = cache.quarantined()
        assert [p.name for p in quarantined] == [path.name + ".corrupt"]
        assert quarantined[0].read_text() == "{ not json"

    def test_quarantined_entry_not_reparsed_on_warm_rerun(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = spec_for()
        cache.put(spec, execute_spec(spec))
        cache.path_for(spec).write_text("{ not json")
        assert cache.get(spec) is None      # quarantines
        before = cache.misses
        assert cache.get(spec) is None      # plain miss: file is gone
        assert cache.misses == before + 1
        assert len(cache.quarantined()) == 1
        # Recompute repairs the entry alongside the quarantined bytes.
        assert not run_point(spec, cache=cache).cached
        assert run_point(spec, cache=cache).cached
        assert len(cache.quarantined()) == 1

    def test_clear_removes_quarantined_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = spec_for()
        cache.put(spec, execute_spec(spec))
        cache.path_for(spec).write_text("broken")
        assert cache.get(spec) is None
        cache.put(spec, execute_spec(spec))
        assert cache.clear() == 2  # live entry + quarantined bytes
        assert cache.entries() == []
        assert cache.quarantined() == []


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
GRID = [
    spec_for("compress", tc_entries=tc, pb_entries=pb)
    for tc in (64, 128) for pb in (0, 32)
] + [
    spec_for("ijpeg", tc_entries=tc, pb_entries=pb)
    for tc in (64, 128) for pb in (0, 32)
]


class TestScheduler:
    def test_parallel_equals_serial(self):
        serial = sweep(GRID, jobs=1)
        parallel = sweep(GRID, jobs=4)
        assert [r.spec for r in serial] == [r.spec for r in parallel] \
            == GRID
        assert [r.metrics for r in serial] == [r.metrics for r in parallel]

    def test_duplicates_computed_once(self):
        runner = ExperimentRunner()
        results = runner.run([GRID[0], GRID[0], GRID[1]])
        assert results[0] is results[1]
        assert runner.report.requested == 3
        assert runner.report.unique == 2
        assert runner.report.executed == 2

    def test_warm_cache_executes_nothing(self, tmp_path):
        cold = ExperimentRunner(cache=ResultCache(tmp_path))
        cold_results = cold.run(GRID)
        assert cold.report.executed == len(GRID)
        assert cold.report.cache_hits == 0

        warm = ExperimentRunner(jobs=2, cache=ResultCache(tmp_path))
        warm_results = warm.run(GRID)
        assert warm.report.executed == 0
        assert warm.report.cache_hits == len(GRID)
        assert ([r.metrics for r in warm_results]
                == [r.metrics for r in cold_results])

    def test_cached_metrics_round_trip_bit_exact(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = spec_for("compress")
        fresh = run_point(spec, cache=cache)
        warm = run_point(spec, cache=cache)
        assert warm.cached
        for key, value in fresh.metrics.items():
            assert warm.metrics[key] == value
            assert type(warm.metrics[key]) is type(value)

    def test_stream_cache_reuse(self):
        stream_cache = StreamCache(instructions=BUDGET)
        stream = stream_cache.stream("compress")
        result = execute_spec(spec_for("compress"), stream_cache)
        assert stream_cache.stream("compress") is stream
        assert result.metrics["instructions"] == BUDGET

    def test_dynamic_kind(self):
        spec = ExperimentSpec(benchmark="compress", tc_entries=384,
                              pb_entries=128, kind="dynamic",
                              instructions=6_000)
        result = execute_spec(spec)
        assert "pb_trajectory" in result.metrics
        assert result.metrics["trace_misses_per_ki"] >= 0

    def test_progress_lines_emitted(self):
        messages = []
        sweep(GRID[:2], progress=messages.append)
        assert messages
        assert "compress" in messages[-1]

    def test_report_serialises(self):
        runner = ExperimentRunner()
        runner.run(GRID[:1])
        payload = json.loads(runner.report.to_json())
        assert payload["executed"] == 1
        assert payload["points"][0]["kind"] == "frontend"
        assert "compress" in runner.report.summary() or payload["requested"]

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            ExperimentRunner(jobs=0)


class TestRunResult:
    def test_round_trip(self):
        result = RunResult(spec=spec_for(), metrics={"a": 1, "b": 2.5},
                           wall_seconds=0.25)
        loaded = RunResult.from_dict(result.to_dict(), cached=True)
        assert loaded.spec == result.spec
        assert loaded.metrics == result.metrics
        assert loaded.cached


# ----------------------------------------------------------------------
# Cache hygiene regressions: stale temps, racing stat(), digest cost
# ----------------------------------------------------------------------
class TestCacheHygiene:
    def test_stale_temps_listed_and_swept_by_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = spec_for()
        cache.put(spec, execute_spec(spec))
        # Strand the two temp shapes a killed run can leave behind:
        # an entry write and a last_run.json write.
        entry_temp = cache.path_for(spec).with_suffix(".tmp.99999")
        entry_temp.write_text("{ half an entry")
        tally_temp = tmp_path / "last_run.tmp.99999"
        tally_temp.write_text("{ half a tally")
        assert set(cache.stale_temps()) == {entry_temp, tally_temp}
        # Temps are invisible to entries(): never parsed as results.
        assert cache.entries() == [cache.path_for(spec)]
        assert cache.clear() == 3
        assert cache.stale_temps() == []
        assert cache.entries() == []

    def test_stale_temps_empty_without_a_cache_dir(self, tmp_path):
        assert ResultCache(tmp_path / "never-made").stale_temps() == []

    def test_entry_info_survives_entry_vanishing_mid_listing(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = spec_for()
        cache.put(spec, execute_spec(spec))
        # A dangling symlink reproduces the race deterministically: the
        # glob sees the name, the stat() finds nothing.
        ghost = cache.path_for(spec).parent / ("f" * 64 + ".json")
        ghost.symlink_to(tmp_path / "deleted-by-another-process.json")
        rows = cache.entry_info()
        assert len(rows) == 2
        ghost_row = next(r for r in rows if r["digest"] == "f" * 64)
        assert ghost_row["error"].startswith("unreadable")
        assert ghost_row["size_bytes"] == 0
        live_row = next(r for r in rows if "error" not in r)
        assert live_row["label"] == spec.label

    def test_get_computes_the_digest_once(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        spec = spec_for()
        cache.put(spec, execute_spec(spec))
        calls = []
        original = ExperimentSpec.digest

        def counting(self, schema_version=SPEC_SCHEMA_VERSION):
            calls.append(schema_version)
            return original(self, schema_version)

        monkeypatch.setattr(ExperimentSpec, "digest", counting)
        assert cache.get(spec) is not None          # hit
        assert len(calls) == 1
        calls.clear()
        assert cache.get(spec.replace(tc_entries=128)) is None   # miss
        assert len(calls) == 1


# ----------------------------------------------------------------------
# Concurrent writers sharing one cache directory
# ----------------------------------------------------------------------
def _hammer_cache(root, spec_payload, result_payload, rounds):
    """Worker for the concurrent-writer test (module level: picklable).

    Repeatedly stores and reloads the same digest, periodically tearing
    the entry mid-loop the way a crashed writer would, and returns how
    many reloads were served (hit or recovered-miss — never a crash).
    """
    from repro.runner import ExperimentSpec, ResultCache, RunResult

    spec = ExperimentSpec.from_dict(spec_payload)
    result = RunResult.from_dict(result_payload)
    cache = ResultCache(root)
    served = 0
    for round_no in range(rounds):
        cache.put(spec, result)
        if round_no % 5 == 3:
            try:
                cache.path_for(spec).write_text("{ torn write")
            except OSError:
                pass
        if cache.get(spec) is not None:
            served += 1
    return served


class TestConcurrentWriters:
    def test_two_processes_hammering_one_digest_recover(self, tmp_path):
        from concurrent.futures import ProcessPoolExecutor

        spec = spec_for()
        result = execute_spec(spec)
        root = tmp_path / "shared"
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(_hammer_cache, str(root), spec.to_dict(),
                                   result.to_dict(), 25) for _ in range(2)]
            served = [future.result(timeout=120) for future in futures]
        # Neither process crashed, and each was served real results.
        assert all(count > 0 for count in served)
        # The survivor state is sane: a fresh put/get round-trips, the
        # only residue is quarantined bytes, and no temp is stranded.
        cache = ResultCache(root)
        cache.put(spec, result)
        loaded = cache.get(spec)
        assert loaded is not None
        assert loaded.metrics == result.metrics
        assert cache.stale_temps() == []
        for leftover in cache.quarantined():
            assert leftover.name.endswith(".json.corrupt")
