"""Unit tests for the functional execution engine."""

import pytest

from repro.engine import ExecutionError, FunctionalEngine
from repro.engine.state import to_signed, to_unsigned
from repro.isa import Opcode, assemble
from repro.program import ProgramImage


def _image_from_asm(source: str, data: dict[int, int] | None = None,
                    base: int = 0x1000) -> ProgramImage:
    insts, labels = assemble(source, base=base)
    return ProgramImage(instructions=insts, code_base=base, entry=base,
                        labels=labels, data=data or {})


def _run(source: str, max_instructions: int = 10_000, data=None):
    engine = FunctionalEngine(_image_from_asm(source, data=data))
    stream = engine.run(max_instructions)
    return engine, stream


class TestArithmetic:
    def test_addi_and_add(self):
        engine, _ = _run("""
            addi r1, r0, 7
            addi r2, r0, 5
            add  r3, r1, r2
            halt
        """)
        assert engine.state.read(3) == 12

    def test_sub_wraps_to_32_bits(self):
        engine, _ = _run("""
            addi r1, r0, 0
            addi r2, r0, 1
            sub  r3, r1, r2
            halt
        """)
        assert engine.state.read(3) == 0xFFFF_FFFF
        assert to_signed(engine.state.read(3)) == -1

    def test_mul_div(self):
        engine, _ = _run("""
            addi r1, r0, 6
            addi r2, r0, 7
            mul  r3, r1, r2
            div  r4, r3, r2
            halt
        """)
        assert engine.state.read(3) == 42
        assert engine.state.read(4) == 6

    def test_div_by_zero_defined_as_zero(self):
        engine, _ = _run("""
            addi r1, r0, 5
            div  r2, r1, r0
            halt
        """)
        assert engine.state.read(2) == 0

    def test_shifts_and_logic(self):
        engine, _ = _run("""
            addi r1, r0, 3
            slli r2, r1, 4
            srli r3, r2, 2
            ori  r4, r2, 1
            andi r5, r4, 0xF
            xor  r6, r1, r1
            halt
        """)
        assert engine.state.read(2) == 48
        assert engine.state.read(3) == 12
        assert engine.state.read(4) == 49
        assert engine.state.read(5) == 1
        assert engine.state.read(6) == 0

    def test_lui_and_slt(self):
        engine, _ = _run("""
            lui  r1, 1
            slti r2, r0, 1
            slt  r3, r1, r0
            halt
        """)
        assert engine.state.read(1) == 0x1_0000
        assert engine.state.read(2) == 1
        assert engine.state.read(3) == 0

    def test_writes_to_r0_discarded(self):
        engine, _ = _run("""
            addi r0, r0, 99
            halt
        """)
        assert engine.state.read(0) == 0


class TestMemory:
    def test_store_load_round_trip(self):
        engine, _ = _run("""
            lui  r1, 64          # 0x400000 data base
            addi r2, r0, 1234
            sw   r2, 8(r1)
            lw   r3, 8(r1)
            halt
        """)
        assert engine.state.read(3) == 1234

    def test_initial_data_visible(self):
        engine, _ = _run("""
            lui r1, 64
            lw  r2, 0(r1)
            halt
        """, data={0x40_0000: 777})
        assert engine.state.read(2) == 777

    def test_uninitialised_memory_reads_zero(self):
        engine, _ = _run("""
            lui r1, 64
            lw  r2, 100(r1)
            halt
        """)
        assert engine.state.read(2) == 0


class TestControlFlow:
    def test_loop_executes_correct_iterations(self):
        engine, stream = _run("""
            addi r1, r0, 0
            addi r2, r0, 5
        loop:
            addi r1, r1, 1
            blt  r1, r2, loop
            halt
        """)
        assert engine.state.read(1) == 5
        branch_records = [r for r in stream if r.inst.is_conditional_branch]
        assert sum(r.taken for r in branch_records) == 4
        assert sum(not r.taken for r in branch_records) == 1

    def test_call_and_return(self):
        engine, stream = _run("""
            jal  double
            halt
        double:
            add  r1, r1, r1
            jr   ra
        """)
        returns = [r for r in stream if r.inst.is_return]
        assert len(returns) == 1
        # Return goes back to the instruction after the JAL.
        assert returns[0].next_pc == 0x1004

    def test_stream_next_pc_chains(self):
        _, stream = _run("""
            addi r1, r0, 3
        loop:
            addi r1, r1, -1
            bne  r1, r0, loop
            halt
        """)
        for prev, cur in zip(stream, stream[1:]):
            assert prev.next_pc == cur.pc

    def test_wild_indirect_jump_raises(self):
        engine = FunctionalEngine(_image_from_asm("""
            addi r1, r0, 12
            jr   r1
        """))
        with pytest.raises(ExecutionError):
            engine.run(10)

    def test_halt_stops_engine(self):
        engine, stream = _run("halt")
        assert engine.halted
        assert len(stream) == 1
        with pytest.raises(ExecutionError):
            engine.step()

    def test_budget_bounds_run(self):
        _, stream = _run("""
        spin:
            addi r1, r1, 1
            j spin
        """, max_instructions=100)
        assert len(stream) == 100


class TestExecutionErrorPaths:
    def test_wild_indirect_call_raises_with_site_pc(self):
        engine = FunctionalEngine(_image_from_asm("""
            addi r1, r0, 12
            jalr ra, r1
        """))
        with pytest.raises(ExecutionError, match="0x1004.*wild target"):
            engine.run(10)

    def test_fall_off_code_segment_raises(self):
        # No halt: after the last instruction the PC leaves the code
        # segment and the next fetch must fail loudly, not wrap.
        engine = FunctionalEngine(_image_from_asm("addi r1, r0, 1"))
        with pytest.raises(ExecutionError, match="out of code segment"):
            engine.run(10)

    def test_direct_jump_out_of_segment_raises(self):
        engine = FunctionalEngine(_image_from_asm("""
            j 0x2000
        """))
        with pytest.raises(ExecutionError, match="out of code segment"):
            engine.run(10)

    def test_misaligned_indirect_target_raises(self):
        engine = FunctionalEngine(_image_from_asm("""
            addi r1, r0, 0x1002
            jr   r1
        """))
        with pytest.raises(ExecutionError, match="wild target"):
            engine.run(10)

    def test_budget_exhaustion_mid_call_is_resumable(self):
        # The budget runs out inside the callee: the engine is paused,
        # not halted, and stepping resumes exactly where it stopped.
        engine = FunctionalEngine(_image_from_asm("""
            jal  work
            halt
        work:
            addi r1, r1, 1
            addi r1, r1, 1
            jr   ra
        """))
        stream = engine.run(2)  # jal + first callee instruction
        assert len(stream) == 2
        assert not engine.halted
        assert engine.pc == 0x100C  # mid-callee
        resumed = engine.run(10)
        assert engine.halted
        assert resumed[-1].inst.op is Opcode.HALT
        assert engine.state.read(1) == 2

    def test_halt_inside_switch_target(self):
        # An indirect jump (non-return JR = switch dispatch) lands on
        # an arm whose first instruction is HALT: the engine must stop
        # there, and the final record's next_pc is the halt site itself.
        engine = FunctionalEngine(_image_from_asm("""
            addi r1, r0, 0x1010
            jr   r1
        arm0:
            addi r2, r0, 1
            halt
        arm1:
            halt
        """))
        stream = engine.run(10)
        assert engine.halted
        assert len(stream) == 3
        assert stream[-1].pc == 0x1010  # arm1, skipping arm0 entirely
        assert stream[-1].next_pc == stream[-1].pc
        assert engine.state.read(2) == 0
        with pytest.raises(ExecutionError, match="halted"):
            engine.step()


class TestHelpers:
    def test_signed_unsigned_round_trip(self):
        assert to_signed(to_unsigned(-5)) == -5
        assert to_unsigned(-1) == 0xFFFF_FFFF
        assert to_signed(0x7FFF_FFFF) == 0x7FFF_FFFF
        assert to_signed(0x8000_0000) == -0x8000_0000
