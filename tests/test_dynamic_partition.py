"""Tests for the dynamic TC/PB partitioning extension."""

import pytest

from repro.runner import build_frontend_config
from repro.engine import FunctionalEngine
from repro.sim import (
    DynamicPartitionConfig,
    DynamicPartitionFrontend,
    run_dynamic_frontend,
    run_frontend,
)
from repro.workloads import build_workload

INSTRUCTIONS = 25_000


@pytest.fixture(scope="module")
def gcc():
    workload = build_workload("gcc")
    return workload.image, FunctionalEngine(workload.image).run(INSTRUCTIONS)


class TestDynamicPartition:
    def test_requires_preconstruction(self, gcc):
        image, _ = gcc
        with pytest.raises(ValueError):
            DynamicPartitionFrontend(image, build_frontend_config(512, 0))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DynamicPartitionConfig(total_entries=128, initial_pb_entries=256)
        with pytest.raises(ValueError):
            DynamicPartitionConfig(step_entries=0)
        with pytest.raises(ValueError):
            DynamicPartitionConfig(hold_tolerance=-0.1)

    def test_partition_conserves_total(self, gcc):
        image, stream = gcc
        partition = DynamicPartitionConfig(epoch_traces=300)
        sim = DynamicPartitionFrontend(image, build_frontend_config(384, 128),
                                       partition)
        sim.run(stream)
        assert (sim.trace_cache.config.entries + sim.pb_entries
                == partition.total_entries)

    def test_bounds_respected(self, gcc):
        image, stream = gcc
        partition = DynamicPartitionConfig(
            epoch_traces=200, min_pb_entries=64, max_pb_entries=192)
        sim = DynamicPartitionFrontend(image, build_frontend_config(384, 128),
                                       partition)
        sim.run(stream)
        for event in sim.events:
            assert 64 <= event.pb_entries <= 192

    def test_migration_preserves_traces(self, gcc):
        """Repartitioning keeps resident traces (up to new capacity)."""
        image, stream = gcc
        sim = DynamicPartitionFrontend(image, build_frontend_config(384, 128),
                                       DynamicPartitionConfig())
        # Warm up, then force a repartition and compare occupancy.
        for record in stream[:8000]:
            trace = sim.selector.feed(record)
            if trace is not None:
                sim._process_trace(trace)
        before = sim.trace_cache.occupancy()
        sim._apply_partition(sim.pb_entries + 32)
        after = sim.trace_cache.occupancy()
        # The TC shrank by 32 entries; at most that many traces lost.
        assert after >= before - 32 - sim.trace_cache.config.ways

    def test_events_recorded(self, gcc):
        image, stream = gcc
        result = run_frontend(
            image, build_frontend_config(384, 128), stream=stream,
            partition=DynamicPartitionConfig(epoch_traces=300))
        events = result.partition_events
        assert events
        assert all(event.epoch_miss_rate >= 0 for event in events)
        assert events[0].at_traces >= 300

    def test_runs_match_normal_accounting(self, gcc):
        image, stream = gcc
        result = run_frontend(image, build_frontend_config(384, 128),
                              stream=stream,
                              partition=DynamicPartitionConfig())
        stats = result.stats
        assert stats.instructions == len(stream)
        assert stats.trace_hits + stats.trace_misses == stats.traces

    def test_run_dynamic_frontend_shim(self, gcc):
        """The old entry point still works but warns."""
        image, stream = gcc
        partition = DynamicPartitionConfig(epoch_traces=300)
        with pytest.warns(DeprecationWarning, match="run_frontend"):
            result, events = run_dynamic_frontend(
                image, build_frontend_config(384, 128), stream, partition)
        fresh = run_frontend(image, build_frontend_config(384, 128),
                             stream=stream, partition=partition)
        assert events == fresh.partition_events
        assert result.stats.summary() == fresh.stats.summary()
