"""Host-domain telemetry: spans, metrics, sessions, merged Perfetto.

The tentpole guarantees under test:

* span nesting/propagation — including across the process-pool
  boundary via explicit context handoff;
* deterministic exports — OpenMetrics and canonical JSON golden
  files, registry merge round-trips;
* zero interference — ``repro all`` results and stdout are identical
  with telemetry on and off, serial and parallel;
* the merged host+sim Perfetto trace validates with both domains.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.telemetry import (
    MetricsRegistry,
    SpanTracer,
    Telemetry,
    current_telemetry,
    disable_telemetry,
    enable_telemetry,
    format_hotspots,
    format_metrics,
    format_span_tree,
    format_telemetry,
    host_perfetto_events,
    hotspot_rows,
    load_telemetry,
    merged_perfetto_trace,
    profile_call,
    span,
    telemetry_session,
    utc_timestamp,
    validate_merged_trace,
    write_merged_perfetto,
    write_telemetry,
)

GOLDEN = Path(__file__).parent / "golden"


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Every test starts and ends with telemetry off."""
    disable_telemetry()
    yield
    disable_telemetry()


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpanTracer:
    def test_nesting_records_parentage(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        names = [record["name"] for record in tracer.spans()]
        assert names == ["outer", "inner"]

    def test_ids_unique_across_tracer_instances(self):
        # A pool worker gets a fresh tracer per group task; ids must
        # not restart, or spans from different groups in one worker
        # collide and cross-link trees.
        first = SpanTracer()
        with first.span("a"):
            pass
        second = SpanTracer()
        with second.span("b"):
            pass
        ids = [record["id"]
               for record in first.spans() + second.spans()]
        assert len(ids) == len(set(ids))

    def test_attrs_coerced_to_scalars(self):
        tracer = SpanTracer()
        with tracer.span("s", path=Path("x/y"), count=3, ok=True):
            pass
        attrs = tracer.spans()[0]["attrs"]
        assert attrs == {"path": "x/y", "count": 3, "ok": True}

    def test_live_record_attrs_mutable(self):
        tracer = SpanTracer()
        with tracer.span("cache.get") as record:
            record["attrs"]["outcome"] = "hit"
        assert tracer.spans()[0]["attrs"]["outcome"] == "hit"

    def test_context_handoff_parents_across_tracers(self):
        parent = SpanTracer()
        with parent.span("runner.batch") as batch:
            context = parent.current_context()
            worker = SpanTracer(context)
            with worker.span("runner.group"):
                pass
        assert context["span"] == batch["id"]
        assert worker.spans()[0]["parent"] == batch["id"]

    def test_explicit_context_wins_over_stack(self):
        tracer = SpanTracer()
        with tracer.span("a") as a:
            context = {"schema": 1, "span": a["id"], "pid": os.getpid()}
            with tracer.span("b"):
                with tracer.span("c", context=context) as c:
                    pass
        assert c["parent"] == a["id"]

    def test_format_span_tree_collapses_leaf_groups(self):
        tracer = SpanTracer()
        with tracer.span("runner.batch"):
            for _ in range(6):
                with tracer.span("runner.point"):
                    pass
        text = format_span_tree(tracer.spans())
        assert "runner.point x6" in text
        assert text.count("runner.point") == 1

    def test_format_span_tree_keeps_small_groups(self):
        tracer = SpanTracer()
        with tracer.span("parent"):
            with tracer.span("child", label="x"):
                pass
        text = format_span_tree(tracer.spans())
        assert "child" in text and "label=x" in text
        assert "x1" not in text


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
def build_golden_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_cache_requests", {"outcome": "hit"},
                     help="Result-cache requests").add(3)
    registry.counter("repro_cache_requests", {"outcome": "miss"},
                     help="Result-cache requests").add(1)
    registry.gauge("repro_jobs", help="Configured worker count").set(2)
    histogram = registry.histogram("repro_runner_point_seconds",
                                   boundaries=(0.1, 1.0, 10.0),
                                   help="Per-point wall seconds")
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        histogram.observe(value)
    return registry


class TestMetricsRegistry:
    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").add(-1)

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x")

    def test_histogram_boundaries_must_increase(self):
        from repro.telemetry import Histogram

        with pytest.raises(ValueError):
            Histogram(boundaries=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(boundaries=(2.0, 1.0))

    def test_histogram_le_bucket_semantics(self):
        from repro.telemetry import Histogram

        histogram = Histogram(boundaries=(0.1, 1.0))
        histogram.observe(0.1)      # exactly on a boundary: le="0.1"
        histogram.observe(0.5)
        histogram.observe(2.0)      # overflow bucket
        assert histogram.bucket_counts == [1, 1, 1]

    def test_openmetrics_matches_golden(self):
        expected = (GOLDEN / "telemetry_metrics.om").read_text()
        assert build_golden_registry().to_openmetrics() == expected

    def test_json_matches_golden(self):
        expected = (GOLDEN / "telemetry_metrics.json").read_text()
        assert build_golden_registry().to_json() == expected

    def test_merge_round_trip_is_identity(self):
        original = build_golden_registry().to_dict()
        assert MetricsRegistry.from_dict(original).to_dict() == original

    def test_merge_is_additive_for_counters_and_histograms(self):
        registry = build_golden_registry()
        registry.merge(build_golden_registry().to_dict())
        dump = registry.to_dict()
        by_name = {entry["name"]: entry for entry in dump["metrics"]}
        hits = by_name["repro_cache_requests"]["samples"][0]
        assert hits["value"] == 6
        histogram = by_name["repro_runner_point_seconds"]["samples"][0]
        assert histogram["count"] == 10
        # Gauges take the incoming value instead of adding.
        assert by_name["repro_jobs"]["samples"][0]["value"] == 2

    def test_merge_rejects_boundary_mismatch(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h", boundaries=(1.0, 2.0)).observe(1.5)
        other = MetricsRegistry()
        other.histogram("repro_h", boundaries=(1.0, 2.0, 3.0)).observe(1.5)
        with pytest.raises(ValueError, match="boundary mismatch"):
            registry.merge(other.to_dict())

    def test_format_metrics_renders_every_sample(self):
        text = format_metrics(build_golden_registry().to_dict())
        assert 'repro_cache_requests{outcome="hit"} = 3' in text
        assert "repro_runner_point_seconds count=5" in text


# ----------------------------------------------------------------------
# Session lifecycle
# ----------------------------------------------------------------------
class TestSession:
    def test_enable_is_idempotent(self):
        first = enable_telemetry()
        assert enable_telemetry() is first
        assert current_telemetry() is first
        assert disable_telemetry() is first
        assert current_telemetry() is None

    def test_module_span_is_noop_when_off(self):
        with span("anything") as record:
            assert record is None

    def test_module_span_records_when_on(self):
        session = enable_telemetry()
        with span("check.case", benchmark="gcc") as record:
            assert record is not None
        assert session.tracer.spans()[0]["name"] == "check.case"

    def test_telemetry_session_scopes_and_nests(self):
        with telemetry_session() as outer:
            assert current_telemetry() is outer
            with telemetry_session() as inner:
                assert inner is outer
            assert current_telemetry() is outer
        assert current_telemetry() is None

    def test_harvest_absorb_folds_worker_state(self):
        parent = Telemetry()
        with parent.span("runner.batch"):
            context = parent.handoff()
        worker = Telemetry(context)
        with worker.span("runner.group"):
            pass
        worker.registry.counter("repro_cache_requests",
                                {"outcome": "miss"}).add(2)
        parent.absorb(worker.harvest())
        names = {record["name"] for record in parent.tracer.spans()}
        assert names == {"runner.batch", "runner.group"}
        text = parent.registry.to_openmetrics()
        assert 'repro_cache_requests_total{outcome="miss"} 2' in text

    def test_absorb_tolerates_empty_payload(self):
        session = Telemetry()
        session.absorb(None)
        session.absorb({})
        assert session.tracer.spans() == []

    def test_write_load_format_round_trip(self, tmp_path):
        session = Telemetry()
        with session.span("cli.bench"):
            pass
        session.registry.counter("repro_runner_requested").add(4)
        path = write_telemetry(session, tmp_path / "t" / "dump.json")
        payload = load_telemetry(path)
        assert payload["schema"] == 1
        assert payload["spans"][0]["name"] == "cli.bench"
        text = format_telemetry(payload)
        assert "cli.bench" in text
        assert "repro_runner_requested = 4" in text

    def test_load_rejects_non_object(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_telemetry(bad)


class TestUtcTimestamp:
    def test_pinned_format(self):
        assert utc_timestamp(1700000000.0) == "2023-11-14T22:13:20+0000"

    def test_tz_invariant_across_processes(self):
        """Two processes in different TZ envs must emit identical bytes."""
        src = str(Path(__file__).parents[1] / "src")
        script = ("from repro.telemetry import utc_timestamp;"
                  "print(utc_timestamp(1700000000.0))")
        outputs = []
        for tz in ("UTC", "America/New_York", "Australia/Sydney"):
            env = dict(os.environ, TZ=tz, PYTHONPATH=src)
            result = subprocess.run([sys.executable, "-c", script],
                                    capture_output=True, text=True,
                                    env=env, check=True, timeout=60)
            outputs.append(result.stdout.strip())
        assert outputs == ["2023-11-14T22:13:20+0000"] * 3


# ----------------------------------------------------------------------
# Merged Perfetto export
# ----------------------------------------------------------------------
def tracer_with_spans() -> SpanTracer:
    tracer = SpanTracer()
    with tracer.span("runner.batch", specs=2):
        with tracer.span("runner.point", label="a"):
            pass
        with tracer.span("runner.point", label="b"):
            pass
    return tracer


class TestMergedPerfetto:
    def test_host_events_remap_pids_and_tids(self):
        spans = tracer_with_spans().spans()
        worker = [dict(record, pid=record["pid"] + 1, id="w-1")
                  for record in spans[:1]]
        events = host_perfetto_events(spans + worker)
        process_names = {event["args"]["name"]: event["pid"]
                         for event in events
                         if event.get("name") == "process_name"}
        assert process_names[f"host:worker-{os.getpid() + 1}"] == 101
        assert process_names["host:main"] == 100
        slices = [event for event in events if event["ph"] == "X"]
        assert len(slices) == 4
        assert min(event["ts"] for event in slices) == 0
        assert all(event["cat"] == "host" for event in slices)

    def test_host_events_empty_for_no_spans(self):
        assert host_perfetto_events([]) == []

    def test_merged_trace_validates_with_both_domains(self, tmp_path):
        spans = tracer_with_spans().spans()
        payload = merged_perfetto_trace(spans, [])
        assert validate_merged_trace(payload) == []
        names = [event["args"]["name"] for event in payload["traceEvents"]
                 if event.get("name") == "process_name"]
        assert any(name.startswith("host:") for name in names)
        assert any(name.startswith("sim:") for name in names)
        path = write_merged_perfetto(spans, [], tmp_path / "merged.json")
        reloaded = json.loads(path.read_text())
        assert validate_merged_trace(reloaded) == []

    def test_validator_requires_host_domain(self):
        payload = merged_perfetto_trace([], [])
        problems = validate_merged_trace(payload)
        assert any("no host-domain" in problem for problem in problems)

    def test_validator_flags_pid_range_violations(self):
        payload = merged_perfetto_trace(tracer_with_spans().spans(), [])
        for event in payload["traceEvents"]:
            if event.get("name") != "process_name":
                continue
            name = event["args"]["name"]
            if name.startswith("host:"):
                event["pid"] = 1        # collide with the sim domain
        problems = validate_merged_trace(payload)
        assert any("below HOST_PID_BASE" in problem
                   for problem in problems)
        assert any("pid collision" in problem for problem in problems)


# ----------------------------------------------------------------------
# cProfile capture
# ----------------------------------------------------------------------
class TestProfileCapture:
    def test_profile_call_returns_rows_and_writes_pstats(self, tmp_path):
        pstats_path = tmp_path / "prof" / "out.pstats"
        result, rows, written = profile_call(
            lambda: sum(range(1000)), pstats_path=pstats_path, top=5)
        assert result == 499500
        assert written == pstats_path and pstats_path.is_file()
        assert 0 < len(rows) <= 5
        assert all({"function", "ncalls", "tottime", "cumtime"}
                   <= set(row) for row in rows)
        table = format_hotspots(rows)
        assert "cumtime" in table and rows[0]["function"] in table

    def test_blocked_profiler_degrades_to_unprofiled(self, monkeypatch):
        # Some interpreters raise when a second profiler activates
        # (e.g. under ``repro profile all --profile``); the capture
        # must degrade to an unprofiled run, never fail the run.
        import cProfile

        def refuse(self):
            raise ValueError("another profiling tool is already active")

        monkeypatch.setattr(cProfile.Profile, "enable", refuse)
        value, rows, written = profile_call(lambda: 42)
        assert value == 42
        assert rows == [] and written is None

    def test_format_hotspots_empty(self):
        assert format_hotspots([]) == "no profile data captured"

    def test_hotspot_rows_sorted_by_cumtime(self):
        _, rows, _ = profile_call(
            lambda: [sorted(range(100)) for _ in range(50)])
        cums = [row["cumtime"] for row in rows]
        assert cums == sorted(cums, reverse=True)
        assert isinstance(hotspot_rows.__doc__, str)


# ----------------------------------------------------------------------
# Runner / cache integration
# ----------------------------------------------------------------------
def small_specs():
    from repro.runner import ExperimentSpec

    return [ExperimentSpec(benchmark=benchmark, tc_entries=64,
                           pb_entries=pb, instructions=4000)
            for benchmark in ("compress", "lisp")
            for pb in (0, 32)]


class TestRunnerIntegration:
    def test_serial_parallel_results_identical_with_telemetry(self):
        from repro.runner import ExperimentRunner

        specs = small_specs()

        def metrics_of(jobs, telemetry):
            disable_telemetry()
            if telemetry:
                enable_telemetry()
            runner = ExperimentRunner(jobs=jobs, cache=None)
            results = runner.run(specs)
            disable_telemetry()
            return [result.metrics for result in results]

        plain = metrics_of(1, telemetry=False)
        assert metrics_of(1, telemetry=True) == plain
        assert metrics_of(2, telemetry=True) == plain
        assert metrics_of(2, telemetry=False) == plain

    def test_spans_propagate_across_the_pool(self):
        from repro.runner import ExperimentRunner

        session = enable_telemetry()
        runner = ExperimentRunner(jobs=2, cache=None)
        runner.run(small_specs())
        spans = session.tracer.spans()
        by_name = {}
        for record in spans:
            by_name.setdefault(record["name"], []).append(record)
        assert len(by_name["runner.batch"]) == 1
        assert len(by_name["runner.group"]) == 2
        assert len(by_name["runner.point"]) == 4
        batch = by_name["runner.batch"][0]
        # Worker groups parent under the submitting batch span even
        # though they were recorded in other processes.
        assert all(record["parent"] == batch["id"]
                   for record in by_name["runner.group"])
        worker_pids = {record["pid"] for record in by_name["runner.group"]}
        assert batch["pid"] not in worker_pids

    def test_span_ids_unique_with_multiple_groups_per_worker(self):
        # Four benchmark groups over two workers: each worker runs
        # more than one group task, i.e. more than one tracer per
        # process.  Every id must stay unique and every resolvable
        # parent must sit in the same process or be the batch span.
        from repro.runner import ExperimentRunner, ExperimentSpec

        specs = [ExperimentSpec(benchmark=benchmark, tc_entries=64,
                                pb_entries=0, instructions=4000)
                 for benchmark in ("compress", "lisp", "m88ksim",
                                   "ijpeg")]
        session = enable_telemetry()
        runner = ExperimentRunner(jobs=2, cache=None)
        runner.run(specs)
        spans = session.tracer.spans()
        ids = [record["id"] for record in spans]
        assert len(ids) == len(set(ids))
        by_id = {record["id"]: record for record in spans}
        for record in spans:
            parent = record["parent"]
            if parent is None or parent not in by_id:
                continue
            holder = by_id[parent]
            assert (holder["pid"] == record["pid"]
                    or holder["name"] == "runner.batch"), (record, holder)

    def test_session_metrics_match_timing_report(self):
        from repro.runner import ExperimentRunner

        session = enable_telemetry()
        runner = ExperimentRunner(jobs=1, cache=None)
        runner.run(small_specs())
        text = session.registry.to_openmetrics()
        assert "repro_runner_requested_total 4" in text
        assert "repro_runner_executed_total 4" in text
        assert "repro_runner_point_seconds_count 4" in text
        assert runner.report.requested == 4

    def test_cache_counters_hit_miss_write(self, tmp_path):
        from repro.runner import ResultCache, run_point

        session = enable_telemetry()
        cache = ResultCache(tmp_path / "cache")
        spec = small_specs()[0]
        run_point(spec, cache=cache)          # miss + write
        run_point(spec, cache=cache)          # hit
        text = session.registry.to_openmetrics()
        assert 'repro_cache_requests_total{outcome="miss"} 1' in text
        assert 'repro_cache_requests_total{outcome="hit"} 1' in text
        assert "repro_cache_writes_total 1" in text
        outcomes = [record["attrs"].get("outcome")
                    for record in session.tracer.spans()
                    if record["name"] == "cache.get"]
        assert outcomes == ["miss", "hit"]

    def test_cache_quarantine_counter(self, tmp_path):
        from repro.runner import ResultCache, run_point

        session = enable_telemetry()
        cache = ResultCache(tmp_path / "cache")
        spec = small_specs()[0]
        run_point(spec, cache=cache)
        cache.path_for(spec).write_text("{not json")
        run_point(spec, cache=cache)          # corrupt -> quarantine
        text = session.registry.to_openmetrics()
        assert "repro_cache_quarantined_total 1" in text

    def test_timing_report_keeps_public_shape(self):
        from repro.runner import TimingReport

        report = TimingReport(jobs=2)
        report.add(requested=3, unique=2, executed=1, cache_hits=1,
                   wall_seconds=0.5)
        assert (report.requested, report.unique, report.executed,
                report.cache_hits) == (3, 2, 1, 1)
        assert report.wall_seconds == 0.5
        payload = report.to_dict()
        for key in ("jobs", "requested", "unique", "executed",
                    "cache_hits", "wall_seconds", "points"):
            assert key in payload
        assert json.loads(report.to_json()) == payload
        assert "3 points (2 unique)" in report.summary()

    def test_profile_dir_writes_pstats_and_manifest(self, tmp_path):
        from repro.runner import ExperimentRunner

        profile_dir = tmp_path / "profiles"
        runner = ExperimentRunner(jobs=1, cache=None,
                                  profile_dir=profile_dir)
        results = runner.run(small_specs()[:1])
        profile = results[0].manifest.get("profile")
        assert profile is not None
        assert Path(profile["pstats"]).is_file()
        assert profile["pstats"].endswith(".pstats")
        assert profile["hotspots"]
        assert all("cumtime" in row for row in profile["hotspots"])

    def test_profile_dir_works_across_the_pool(self, tmp_path):
        from repro.runner import ExperimentRunner

        profile_dir = tmp_path / "profiles"
        runner = ExperimentRunner(jobs=2, cache=None,
                                  profile_dir=profile_dir)
        results = runner.run(small_specs())
        assert len(list(profile_dir.glob("*.pstats"))) == 4
        assert all(result.manifest.get("profile") for result in results)


# ----------------------------------------------------------------------
# Bench trajectory
# ----------------------------------------------------------------------
def bench_payload(seconds=16.0, mode="quick"):
    return {"schema": 1, "mode": mode, "jobs": 1,
            "baseline_commit": "abc1234",
            "sections": {"figure5": {"specs": 4,
                                     "baseline_seconds": 20.0,
                                     "current_seconds": seconds,
                                     "speedup": None}},
            "total": {"baseline_seconds": 20.0,
                      "current_seconds": seconds, "speedup": None}}


class TestBenchTrajectory:
    def test_append_read_round_trip(self, tmp_path):
        from repro.runner import append_trajectory, read_trajectory

        path = tmp_path / "hist.jsonl"
        append_trajectory(bench_payload(16.0), path, commit="aaa1111")
        append_trajectory(bench_payload(12.0), path, commit="bbb2222")
        rows = read_trajectory(path)
        assert [row["commit"] for row in rows] == ["aaa1111", "bbb2222"]
        assert rows[0]["sections"]["figure5"]["current_seconds"] == 16.0
        assert rows[1]["recorded_at"].endswith("+0000")

    def test_read_skips_damaged_lines_and_missing_file(self, tmp_path):
        from repro.runner import append_trajectory, read_trajectory

        assert read_trajectory(tmp_path / "absent.jsonl") == []
        path = tmp_path / "hist.jsonl"
        append_trajectory(bench_payload(), path, commit="aaa1111")
        with path.open("a") as handle:
            handle.write('{"truncated": \n')
        append_trajectory(bench_payload(), path, commit="bbb2222")
        assert [row["commit"] for row in read_trajectory(path)] \
            == ["aaa1111", "bbb2222"]

    def test_trajectory_reference_picks_last_matching_mode(self, tmp_path):
        from repro.runner import (
            append_trajectory,
            check_bench,
            trajectory_reference,
        )

        path = tmp_path / "hist.jsonl"
        append_trajectory(bench_payload(10.0, mode="full"), path,
                          commit="aaa1111")
        append_trajectory(bench_payload(16.0), path, commit="bbb2222")
        append_trajectory(bench_payload(12.0), path, commit="ccc3333")
        reference = trajectory_reference(path, "quick")
        assert reference is not None
        assert reference["sections"]["figure5"]["current_seconds"] == 12.0
        assert trajectory_reference(path, "nope") is None
        # The reference row is check_bench-compatible.
        assert check_bench(bench_payload(12.5), reference,
                           tolerance=0.5) == []
        assert check_bench(bench_payload(30.0), reference,
                           tolerance=0.5)

    def test_cli_bench_appends_and_checks_trajectory(self, capsys,
                                                     tmp_path,
                                                     monkeypatch):
        from repro.cli import main
        from repro.runner import read_trajectory

        monkeypatch.setattr("repro.runner.run_bench",
                            lambda **kwargs: bench_payload(16.0))
        trajectory = tmp_path / "hist.jsonl"
        base = ["bench", "--quick",
                "--output", str(tmp_path / "bench.json"),
                "--trajectory", str(trajectory)]
        # First run: an empty trajectory cannot be a reference.
        assert main(base + ["--check", str(trajectory)]) == 1
        assert "no 'quick' rows" in capsys.readouterr().err
        assert read_trajectory(trajectory) == []
        # Unchecked run records a row...
        assert main(base) == 0
        assert "trajectory appended" in capsys.readouterr().err
        assert len(read_trajectory(trajectory)) == 1
        # ...and the next run checks against it (identical -> pass).
        assert main(base + ["--check", str(trajectory)]) == 0
        err = capsys.readouterr().err
        assert "within +50%" in err
        assert len(read_trajectory(trajectory)) == 2

    def test_cli_report_renders_trajectory(self, capsys, tmp_path):
        from repro.cli import main
        from repro.runner import append_trajectory

        trajectory = tmp_path / "hist.jsonl"
        append_trajectory(bench_payload(16.0), trajectory,
                          commit="aaa1111")
        append_trajectory(bench_payload(12.0), trajectory,
                          commit="bbb2222")
        out = tmp_path / "report.html"
        assert main(["report", "--trajectory", str(trajectory),
                     "--output", str(out)]) == 0
        html = out.read_text()
        assert "Bench trajectory" in html
        assert "aaa1111" in html and "bbb2222" in html


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestTelemetryCLI:
    def test_all_stdout_identical_with_telemetry(self, capsys, tmp_path):
        from repro.cli import main

        args = ["--instructions", "4000", "all",
                "--benchmarks", "compress", "--jobs", "2"]
        assert main(args) == 0
        plain = capsys.readouterr().out
        dump = tmp_path / "telemetry.json"
        assert main(args + ["--telemetry-json", str(dump)]) == 0
        captured = capsys.readouterr()
        assert captured.out == plain
        assert dump.is_file()
        payload = load_telemetry(dump)
        names = {record["name"] for record in payload["spans"]}
        assert "cli.all" in names and "runner.batch" in names
        assert current_telemetry() is None   # session torn down

    def test_telemetry_command_renders_dump(self, capsys, tmp_path):
        from repro.cli import main

        dump = tmp_path / "telemetry.json"
        assert main(["--instructions", "4000", "all",
                     "--benchmarks", "compress",
                     "--telemetry-json", str(dump)]) == 0
        capsys.readouterr()
        assert main(["telemetry", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "telemetry dump" in out and "cli.all" in out
        assert main(["telemetry", str(dump), "--openmetrics"]) == 0
        openmetrics = capsys.readouterr().out
        assert "# EOF" in openmetrics
        assert "repro_runner_requested_total" in openmetrics
        assert main(["telemetry", str(dump), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["schema"] == 1

    def test_telemetry_command_default_reads_cache_root(self, capsys,
                                                        tmp_path):
        from repro.cli import main

        # The run also drops last_telemetry.json under the (hermetic)
        # cache root, which a bare ``repro telemetry`` then reads.
        assert main(["--instructions", "4000", "all",
                     "--benchmarks", "compress", "--telemetry-json",
                     str(tmp_path / "dump.json")]) == 0
        capsys.readouterr()
        assert main(["telemetry"]) == 0
        assert "telemetry dump" in capsys.readouterr().out

    def test_telemetry_command_without_dump_errors(self, capsys,
                                                   tmp_path):
        from repro.cli import main

        assert main(["telemetry", str(tmp_path / "absent.json")]) == 2
        assert "cannot read dump" in capsys.readouterr().err

    def test_profile_command_wraps_a_cli_command(self, capsys, tmp_path):
        from repro.cli import main

        pstats_path = tmp_path / "list.pstats"
        assert main(["profile", "--pstats", str(pstats_path),
                     "list"]) == 0
        captured = capsys.readouterr()
        assert "gcc" in captured.out          # wrapped command ran
        assert "cumtime" in captured.err      # hotspot table
        assert f"pstats written to {pstats_path}" in captured.err
        assert pstats_path.is_file()

    def test_profile_command_requires_a_command(self, capsys):
        from repro.cli import main

        assert main(["profile"]) == 2
        assert "no command given" in capsys.readouterr().err

    def test_bench_perfetto_writes_merged_trace(self, capsys, tmp_path,
                                                monkeypatch):
        from repro.cli import main

        monkeypatch.setattr("repro.runner.run_bench",
                            lambda **kwargs: bench_payload(16.0))
        trace_path = tmp_path / "merged.json"
        assert main(["bench", "--quick", "--no-trajectory",
                     "--output", str(tmp_path / "bench.json"),
                     "--perfetto", str(trace_path)]) == 0
        assert "merged perfetto trace" in capsys.readouterr().err
        payload = json.loads(trace_path.read_text())
        assert validate_merged_trace(payload) == []
        names = [event["args"]["name"]
                 for event in payload["traceEvents"]
                 if event.get("name") == "process_name"]
        assert any(name.startswith("host:") for name in names)
        assert any(name.startswith("sim:") for name in names)


# ----------------------------------------------------------------------
# Triage host evidence
# ----------------------------------------------------------------------
class TestTriageHostEvidence:
    def test_diff_specs_carries_host_spans(self, tmp_path):
        from repro.runner import ResultCache
        from repro.triage import diff_specs

        enable_telemetry()
        spec = small_specs()[0]
        other = small_specs()[1]
        cache = ResultCache(tmp_path / "cache")
        diff = diff_specs(spec, other, cache=cache)
        assert not diff.identical
        names = {row["name"] for row in diff.host}
        assert "triage.capture" in names
        assert any(name.startswith("cache.") for name in names)
        assert "host-span evidence" in diff.format()
        assert diff.to_dict()["host"] == diff.host

    def test_host_evidence_empty_without_telemetry(self, tmp_path):
        from repro.triage import diff_specs, host_evidence

        assert host_evidence() == []
        spec = small_specs()[0]
        diff = diff_specs(spec, spec)
        assert diff.identical
        assert diff.host == []
        assert "host-span evidence" not in diff.format()
