"""Tests for the observability layer (:mod:`repro.obs`).

Covers the sink implementations, the event bus, interval metrics and
histograms, run manifests, logging helpers, the Perfetto exporter's
schema, and the determinism contract: for a fixed spec the event
stream is a pure function of the simulation — identical across reruns
and across serial vs parallel observed execution.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path

import pytest

from repro.obs import (
    Histogram,
    IntervalMetrics,
    JsonlSink,
    NullSink,
    ObsBus,
    RingBufferSink,
    build_manifest,
    perfetto_trace,
    run_observed,
    run_observed_many,
    validate_chrome_trace,
    write_events_jsonl,
)
from repro.obs.log import configure_logging, get_logger, level_from_args
from repro.obs.sinks import read_events_jsonl
from repro.runner import ExperimentSpec, run_point

GOLDEN_DIR = Path(__file__).parent / "golden"

SPEC = ExperimentSpec(benchmark="compress", tc_entries=256, pb_entries=256,
                      instructions=6000)


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class TestSinks:
    def test_null_sink_discards(self):
        sink = NullSink()
        assert sink.emit({"seq": 1}) is None
        sink.close()  # idempotent, no resource

    def test_ring_buffer_unbounded(self):
        sink = RingBufferSink()
        for i in range(5):
            sink.emit({"seq": i})
        assert len(sink.events) == 5
        assert sink.capacity is None

    def test_ring_buffer_bounded_keeps_tail(self):
        sink = RingBufferSink(capacity=3)
        for i in range(10):
            sink.emit({"seq": i})
        assert [r["seq"] for r in sink.events] == [7, 8, 9]

    def test_ring_buffer_drain(self):
        sink = RingBufferSink()
        sink.emit({"seq": 1})
        assert sink.drain() == [{"seq": 1}]
        assert not sink.events

    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"seq": 1, "cycle": 0, "event": "x"})
            sink.emit({"seq": 2, "cycle": 4, "event": "y"})
            assert sink.emitted == 2
        assert read_events_jsonl(path) == [
            {"seq": 1, "cycle": 0, "event": "x"},
            {"seq": 2, "cycle": 4, "event": "y"},
        ]

    def test_jsonl_is_canonical(self, tmp_path):
        """Key order in the source dict must not affect the bytes."""
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        write_events_jsonl([{"b": 1, "a": 2}], a)
        write_events_jsonl([{"a": 2, "b": 1}], b)
        assert a.read_bytes() == b.read_bytes()
        assert a.read_text() == '{"a":2,"b":1}\n'


# ----------------------------------------------------------------------
# Event bus
# ----------------------------------------------------------------------
class TestObsBus:
    def test_stamps_seq_and_cycle(self):
        sink = RingBufferSink()
        bus = ObsBus(sink)
        bus.now = 42
        bus.emit("frontend", "trace_hit", pc=4096)
        bus.emit("frontend", "trace_miss", pc=8192)
        first, second = sink.events
        assert first == {"seq": 1, "cycle": 42, "source": "frontend",
                         "event": "trace_hit", "pc": 4096}
        assert second["seq"] == 2 and second["event"] == "trace_miss"

    def test_defaults_to_null_sink(self):
        bus = ObsBus()
        bus.emit("frontend", "trace_hit")
        assert bus.seq == 1  # counted even when discarded


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestHistogram:
    def test_stats(self):
        hist = Histogram("x")
        for value in (4, 4, 8):
            hist.add(value)
        assert hist.total == 3
        assert hist.min == 4 and hist.max == 8
        assert hist.mean == pytest.approx(16 / 3)

    def test_empty(self):
        hist = Histogram("x")
        assert hist.min is None and hist.max is None and hist.mean is None

    def test_to_dict_sorted_string_keys(self):
        hist = Histogram("x")
        hist.add(10)
        hist.add(2)
        assert list(hist.to_dict()["counts"]) == ["2", "10"]


class TestIntervalMetrics:
    def test_bucketing(self):
        metrics = IntervalMetrics(bucket_cycles=100)
        metrics.on_trace(50, length=16, hit=True, buffer_hit=True)
        metrics.on_trace(150, length=8, hit=False, buffer_hit=False)
        metrics.on_idle_burst(120, 30)
        rows = metrics.interval_rows()
        assert [row["bucket"] for row in rows] == [0, 1]
        assert rows[0]["trace_hits"] == 1 and rows[0]["buffer_hits"] == 1
        assert rows[1]["trace_misses"] == 1
        assert rows[1]["idle_cycles"] == 30
        assert rows[1]["trace_misses_per_ki"] == pytest.approx(1000 / 8)

    def test_rejects_bad_bucket_width(self):
        with pytest.raises(ValueError):
            IntervalMetrics(bucket_cycles=0)

    def test_jsonl_layout(self, tmp_path):
        metrics = IntervalMetrics(bucket_cycles=100)
        metrics.on_trace(0, length=4, hit=True, buffer_hit=False)
        path = metrics.write_jsonl(tmp_path / "metrics.jsonl")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0]["type"] == "meta"
        assert rows[1]["type"] == "interval"
        assert {row["name"] for row in rows if row["type"] == "histogram"} \
            == {"trace_length", "construction_latency",
                "buffer_occupancy", "idle_burst_length"}


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------
class TestManifest:
    def test_fields(self):
        manifest = build_manifest(SPEC)
        assert manifest["spec_digest"] == SPEC.digest()
        assert manifest["benchmark"] == "compress"
        assert manifest["instructions"] == 6000
        assert "host" in manifest and "created_at" in manifest

    def test_deterministic_subset(self):
        manifest = build_manifest(SPEC, include_host=False)
        assert "host" not in manifest and "created_at" not in manifest
        assert manifest == build_manifest(SPEC, include_host=False)

    def test_attached_to_executed_results(self):
        result = run_point(SPEC.replace(instructions=2000), cache=None)
        assert result.manifest is not None
        assert result.manifest["spec_digest"] == \
            SPEC.replace(instructions=2000).digest()

    def test_survives_cache_roundtrip(self, tmp_path):
        from repro.runner import ResultCache

        cache = ResultCache(tmp_path / "cache")
        spec = SPEC.replace(instructions=2000)
        result = run_point(spec, cache=cache)
        cached = cache.get(spec)
        assert cached is not None
        assert cached.manifest == result.manifest


# ----------------------------------------------------------------------
# Logging
# ----------------------------------------------------------------------
class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger("runner.cache").name == "repro.runner.cache"
        assert get_logger("repro.sim").name == "repro.sim"

    def test_level_from_args(self):
        assert level_from_args(0) == logging.WARNING
        assert level_from_args(1) == logging.INFO
        assert level_from_args(2) == logging.DEBUG
        assert level_from_args(5) == logging.DEBUG
        assert level_from_args(0, "error") == logging.ERROR
        assert level_from_args(2, "warning") == logging.WARNING  # name wins
        with pytest.raises(ValueError):
            level_from_args(0, "loud")

    def test_configure_is_idempotent(self):
        root = configure_logging(logging.INFO)
        before = len(root.handlers)
        configure_logging(logging.DEBUG)
        assert len(root.handlers) == before
        assert root.level == logging.DEBUG

    def test_corrupted_cache_entry_warns(self, tmp_path, caplog):
        from repro.runner import ResultCache

        cache = ResultCache(tmp_path / "cache")
        spec = SPEC.replace(instructions=2000)
        result = run_point(spec, cache=cache)
        path = cache.path_for(spec)
        path.write_text("{not json")
        with caplog.at_level(logging.WARNING, logger="repro.runner.cache"):
            assert cache.get(spec) is None
        assert any("corrupted" in record.message
                   for record in caplog.records)
        # and the next run repairs the entry
        repaired = run_point(spec, cache=cache)
        assert repaired.metrics == result.metrics


# ----------------------------------------------------------------------
# Observed execution: determinism + zero-interference
# ----------------------------------------------------------------------
class TestObservedRuns:
    def test_event_stream_deterministic_across_reruns(self):
        first = run_observed(SPEC)
        second = run_observed(SPEC)
        assert first.events == second.events
        assert first.metrics.rows() == second.metrics.rows()

    def test_serial_matches_parallel(self):
        specs = [SPEC, SPEC.replace(benchmark="go")]
        serial = run_observed_many(specs, jobs=1)
        parallel = run_observed_many(specs, jobs=2)
        for left, right in zip(serial, parallel):
            assert left.events == right.events
            assert left.metrics.rows() == right.metrics.rows()
            assert left.result.metrics == right.result.metrics

    def test_observation_does_not_perturb_results(self):
        """The bus is read-only: observed metrics == unobserved metrics."""
        observed = run_observed(SPEC)
        plain = run_point(SPEC, cache=None)
        assert observed.result.metrics == plain.metrics

    def test_rejects_non_frontend_specs(self):
        with pytest.raises(ValueError):
            run_observed(SPEC.replace(kind="dynamic"))

    def test_event_taxonomy_present(self):
        observed = run_observed(SPEC)
        kinds = {(r["source"], r["event"]) for r in observed.events}
        for expected in [
            ("frontend", "trace_hit"), ("frontend", "trace_miss"),
            ("frontend", "idle_burst_start"), ("frontend", "idle_burst_end"),
            ("engine", "region_spawn"), ("engine", "region_assign"),
            ("engine", "region_complete"), ("engine", "trace_constructed"),
            ("engine", "constructor_release"),
            ("buffers", "probe"), ("buffers", "insert"), ("buffers", "take"),
            ("trace_cache", "fill"),
        ]:
            assert expected in kinds, f"missing event {expected}"

    def test_events_are_ordered(self):
        observed = run_observed(SPEC)
        seqs = [r["seq"] for r in observed.events]
        assert seqs == list(range(1, len(seqs) + 1))
        cycles = [r["cycle"] for r in observed.events]
        assert all(b >= a for a, b in zip(cycles, cycles[1:]))

    def test_golden_interval_metrics(self, tmp_path):
        """Pinned metrics.jsonl for one Figure-5 point.

        Regenerate (deliberately, after a simulator change) with::

            PYTHONPATH=src python -c "
            from repro.obs import run_observed
            from repro.runner import ExperimentSpec
            run_observed(ExperimentSpec(benchmark='compress',
                tc_entries=256, pb_entries=256, instructions=6000)
            ).write_metrics(
                'tests/golden/metrics_compress_tc256_pb256_i6000.jsonl')"
        """
        golden = GOLDEN_DIR / "metrics_compress_tc256_pb256_i6000.jsonl"
        produced = run_observed(SPEC).write_metrics(
            tmp_path / "metrics.jsonl")
        assert produced.read_text() == golden.read_text()


# ----------------------------------------------------------------------
# Perfetto export
# ----------------------------------------------------------------------
class TestPerfetto:
    def test_real_run_validates(self, tmp_path):
        observed = run_observed(SPEC)
        path = observed.write_perfetto(tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["traceEvents"]

    def test_track_layout(self):
        observed = run_observed(SPEC)
        trace = perfetto_trace(observed.events)
        events = trace["traceEvents"]
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {"frontend", "preconstruction", "storage"}
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "C", "b", "e"} <= phases

    def test_balanced_and_closed_spans(self):
        """Every async region span opened is closed (at end-of-trace if
        the region was still live), and B/E nest per track."""
        observed = run_observed(SPEC)
        events = perfetto_trace(observed.events)["traceEvents"]
        begins = sum(1 for e in events if e["ph"] == "b")
        ends = sum(1 for e in events if e["ph"] == "e")
        assert begins == ends
        assert sum(1 for e in events if e["ph"] == "B") == \
            sum(1 for e in events if e["ph"] == "E")

    def test_validator_catches_malformed_events(self):
        assert validate_chrome_trace({"traceEvents": "nope"})
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "Z", "pid": 1, "tid": 1,
                              "ts": 0, "name": "x"}]})
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1,
                              "ts": 0, "name": "x"}]})  # X without dur
        unbalanced = {"traceEvents": [
            {"ph": "B", "pid": 1, "tid": 1, "ts": 0, "name": "x"}]}
        assert validate_chrome_trace(unbalanced)

    def test_export_deterministic(self, tmp_path):
        observed = run_observed(SPEC)
        a = observed.write_perfetto(tmp_path / "a.json")
        b = observed.write_perfetto(tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()
