"""End-to-end integration tests: the paper's claims in miniature.

These run the complete stack (workload generation -> functional
execution -> frontend/processor simulation with preconstruction and
preprocessing) at a small instruction budget and assert the headline
qualitative results hold.
"""

import pytest

from repro.analysis import StreamCache, run_frontend_point, run_processor_point
from repro.runner import ExperimentSpec

INSTRUCTIONS = 40_000


@pytest.fixture(scope="module")
def cache():
    return StreamCache(instructions=INSTRUCTIONS)


def frontend(cache, benchmark, tc, pb=0):
    spec = ExperimentSpec(benchmark=benchmark, tc_entries=tc, pb_entries=pb,
                          instructions=INSTRUCTIONS)
    return run_frontend_point(cache, spec)


def processor(cache, benchmark, tc, pb=0, preprocess=False):
    spec = ExperimentSpec(benchmark=benchmark, tc_entries=tc, pb_entries=pb,
                          preprocess=preprocess, kind="processor",
                          instructions=INSTRUCTIONS)
    return run_processor_point(cache, spec)


class TestHeadlineClaims:
    def test_preconstruction_reduces_misses_large_benchmarks(self, cache):
        """Abstract: 'The three benchmarks that have the largest working
        set (gcc, go and vortex) see a 30% to 80% reduction in trace
        cache misses.'  We assert a >=20% reduction at the same TC size
        with the largest PB (shape, not exact magnitude)."""
        for name in ("gcc", "go", "vortex"):
            base = frontend(cache, name, 256)
            pre = frontend(cache, name, 256, 256)
            reduction = 1 - (pre.trace_misses / base.trace_misses)
            assert reduction >= 0.20, (name, reduction)

    def test_small_benchmarks_have_little_room(self, cache):
        """'compress and ijpeg have such small working sets that even a
        very small trace cache performs very well.'"""
        # Threshold is generous because the short test budget inflates
        # compulsory misses per KI; at the standard budget these sit
        # near 1-2 misses/KI (vs ~12+ for the stressed benchmarks).
        for name in ("compress", "ijpeg"):
            base = frontend(cache, name, 256)
            assert base.trace_miss_rate_per_ki < 5.0, name

    def test_equal_area_preconstruction_wins_for_stressed(self, cache):
        """'The benefit from preconstruction is noticeably more
        significant than allocating comparable area to the trace
        cache' — at least one split beats the TC-only configuration."""
        for name in ("gcc", "vortex"):
            tc_only = frontend(cache, name, 512)
            split_small = frontend(cache, name, 384, 128)
            split_even = frontend(cache, name, 256, 256)
            best = min(split_small.trace_misses, split_even.trace_misses)
            assert best < tc_only.trace_misses, name

    def test_icache_prefetch_side_effect(self, cache):
        """Table 3: preconstruction prefetches lines the slow path
        later uses, cutting its miss-supplied instructions."""
        base = frontend(cache, "go", 512)
        pre = frontend(cache, "go", 256, 256)
        assert (pre.icache_miss_instructions_per_ki
                < base.icache_miss_instructions_per_ki)

    def test_extended_pipeline_stacks(self, cache):
        """§6: frontend (preconstruction) and backend (preprocessing)
        mechanisms address different bottlenecks and combine."""
        name = "vortex"
        base = processor(cache, name, 256)
        pre = processor(cache, name, 128, 128)
        prep = processor(cache, name, 256, preprocess=True)
        both = processor(cache, name, 128, 128, preprocess=True)
        assert pre.cycles < base.cycles
        assert prep.cycles < base.cycles
        assert both.cycles < prep.cycles
        assert both.cycles < pre.cycles

    def test_run_to_run_determinism(self, cache):
        first = frontend(cache, "gcc", 256, 256).summary()
        second = frontend(cache, "gcc", 256, 256).summary()
        assert first == second
