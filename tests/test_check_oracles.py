"""Tests for the cross-model oracle catalogue and check harness."""

import dataclasses

import pytest

from repro.check.harness import (
    CheckReport,
    check_profile,
    execute_check,
    resolve_oracles,
)
from repro.check.oracles import (
    MAX_DETAILED_VIOLATIONS,
    ORACLES,
    CheckBundle,
    Violation,
    _Claims,
    check_cfg,
    check_conservation,
    check_coverage,
    check_determinism,
    check_intervals,
    oracle_names,
)
from repro.runner import ExperimentSpec
from repro.workloads import generate, profile_for

BUDGET = 3_000


@pytest.fixture(scope="module")
def compress_report():
    return check_profile(profile_for("compress"), BUDGET)


def _bundle(name="compress", budget=BUDGET, **kwargs) -> CheckBundle:
    return CheckBundle(profile_for(name), budget, **kwargs)


class TestViolation:
    def test_str_without_detail(self):
        assert str(Violation("cfg", "bad edge")) == "[cfg] bad edge"

    def test_str_renders_sorted_detail(self):
        violation = Violation("cfg", "bad edge", {"pc": 8, "index": 1})
        assert str(violation) == "[cfg] bad edge (index=1, pc=8)"

    def test_claims_cap_described_violations(self):
        claims = _Claims("demo")
        for i in range(MAX_DETAILED_VIOLATIONS + 3):
            claims.violate("boom", index=i)
        out = claims.done()
        assert len(out) == MAX_DETAILED_VIOLATIONS + 1
        assert "3 further violations" in out[-1].message


class TestResolveOracles:
    def test_default_is_every_oracle(self):
        assert resolve_oracles(None) == oracle_names()

    def test_subset_keeps_registry_order(self):
        assert resolve_oracles(["cfg", "determinism", "cfg"]) == \
            ("determinism", "cfg")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            resolve_oracles(["not-an-oracle"])


class TestCheckProfile:
    def test_clean_profile_passes_every_oracle(self, compress_report):
        assert compress_report.ok
        assert compress_report.oracles == oracle_names()
        assert all(count == 0 for count
                   in compress_report.by_oracle().values())

    def test_summary_carries_headline_stats(self, compress_report):
        assert compress_report.summary["instructions"] == BUDGET
        assert compress_report.summary["traces"] > 0

    def test_metrics_are_flat_and_complete(self, compress_report):
        metrics = compress_report.to_metrics()
        assert metrics["violations"] == 0
        for name in oracle_names():
            assert metrics[f"oracle_{name}_violations"] == 0
        assert metrics["oracle_generate_violations"] == 0
        assert metrics["violation_messages"] == []
        assert metrics["instructions"] == BUDGET

    def test_oracle_subset_runs_only_that_leg(self):
        report = check_profile(profile_for("compress"), BUDGET,
                               oracles=["conservation"])
        assert report.oracles == ("conservation",)
        assert report.ok

    def test_generator_failure_is_a_finding(self, monkeypatch):
        from repro.workloads.generator import WorkloadVerificationError

        def explode(profile):
            raise WorkloadVerificationError(
                profile.name, ["synthetic lint finding"])

        monkeypatch.setattr("repro.check.oracles.generate", explode)
        report = check_profile(profile_for("compress"), BUDGET)
        assert not report.ok
        assert report.by_oracle()["generate"] == 1
        assert "verifier gate" in str(report.violations[0])

    def test_execute_check_matches_check_profile(self):
        spec = ExperimentSpec(benchmark="compress", tc_entries=64,
                              pb_entries=32, kind="check",
                              instructions=BUDGET)
        metrics = execute_check(spec)
        direct = check_profile(profile_for("compress"), BUDGET,
                               tc_entries=64, pb_entries=32).to_metrics()
        assert metrics == direct

    def test_fuzz_benchmarks_flow_through_execute_check(self):
        spec = ExperimentSpec(benchmark="fuzz-3", kind="check",
                              instructions=2_000)
        metrics = execute_check(spec)
        assert metrics["violations"] == 0


class TestBundleLaziness:
    def test_legs_materialise_on_demand(self):
        bundle = _bundle()
        assert "plain_run" not in bundle.__dict__
        check_determinism(bundle)
        # The determinism oracle never touches the timing legs.
        assert "plain_run" not in bundle.__dict__
        assert "stream" in bundle.__dict__

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError, match="positive"):
            CheckBundle(profile_for("compress"), 0)


class TestOraclesCatchTampering:
    """Each oracle must actually fire when its invariant is broken."""

    def test_determinism_sees_divergent_regeneration(self):
        bundle = _bundle()
        other = generate(profile_for("compress", seed=999))
        bundle.__dict__["second_workload"] = other
        violations = check_determinism(bundle)
        assert violations
        assert all(v.oracle == "determinism" for v in violations)

    def test_determinism_sees_divergent_streams(self):
        bundle = _bundle()
        tampered = list(bundle.stream)
        tampered[5] = dataclasses.replace(tampered[5],
                                          next_pc=tampered[5].next_pc + 4)
        bundle.__dict__["second_stream"] = tampered
        assert any("diverge" in v.message
                   for v in check_determinism(bundle))

    def test_conservation_sees_skewed_counter(self):
        bundle = _bundle()
        bundle.plain_run.stats.trace_hits += 1
        messages = [v.message for v in check_conservation(bundle)]
        assert any("trace_hits + trace_misses" in m for m in messages)

    def test_intervals_sees_skewed_total(self):
        bundle = _bundle()
        result, _bus = bundle.observed_run
        result.stats.idle_cycles += 1
        messages = [v.message for v in check_intervals(bundle)]
        assert any("idle_cycles" in m for m in messages)

    def test_cfg_sees_uncovered_pc(self):
        bundle = _bundle()
        stream = list(bundle.stream)
        stream.append(dataclasses.replace(stream[-1], pc=0x10))
        bundle.__dict__["stream"] = stream
        assert any("not covered" in v.message for v in check_cfg(bundle))

    def test_cfg_sees_missing_edge(self):
        bundle = _bundle()
        stream = list(bundle.stream)
        index = next(i for i, r in enumerate(stream)
                     if r.inst.is_conditional_branch and r.taken)
        stream[index] = dataclasses.replace(
            stream[index], next_pc=stream[index].pc + 8)
        bundle.__dict__["stream"] = stream
        assert any(v.oracle == "cfg" for v in check_cfg(bundle))


class TestCoverageOracle:
    """The static-vs-dynamic containment loop closes — and its failure
    modes (broken predictor, exhausted budget, stray coverage) are each
    caught, so the oracle cannot silently rot (mutation tests)."""

    def test_clean_bundle_has_no_coverage_violations(self):
        assert check_coverage(_bundle()) == []

    @staticmethod
    def _shrunken(**overrides):
        """A predict_coverage stand-in returning a damaged prediction."""
        from repro.static.predictor import predict_coverage

        def broken(image, config=None, facts=None):
            real = predict_coverage(image, config=config, facts=facts)
            return dataclasses.replace(real, **overrides)

        return broken

    def test_dropped_start_points_are_caught(self, monkeypatch):
        """Mutation test: a predictor that forgets start points must
        fail the oracle, not pass silently."""
        bundle = _bundle()
        sample = frozenset(sorted(
            {t.start_pc for t in bundle.traces})[:1])
        monkeypatch.setattr(
            "repro.static.predictor.predict_coverage",
            self._shrunken(start_pcs=sample))
        violations = check_coverage(bundle)
        assert any("not statically predicted" in v.message
                   for v in violations)

    def test_dropped_coverage_is_caught(self, monkeypatch):
        bundle = _bundle()
        monkeypatch.setattr(
            "repro.static.predictor.predict_coverage",
            self._shrunken(covered_pcs=frozenset()))
        violations = check_coverage(bundle)
        assert any("outside predicted coverage" in v.message
                   for v in violations)

    def test_incomplete_prediction_is_flagged(self, monkeypatch):
        bundle = _bundle()
        monkeypatch.setattr(
            "repro.static.predictor.predict_coverage",
            self._shrunken(complete=False))
        violations = check_coverage(bundle)
        assert len(violations) == 1
        assert "incomplete" in violations[0].message

    def test_stray_coverage_is_flagged(self, monkeypatch):
        """Claiming a pc outside static reachability is gross
        over-approximation and must violate."""
        bundle = _bundle()
        bogus = bundle.image.code_end + 0x1000
        monkeypatch.setattr(
            "repro.static.predictor.predict_coverage",
            self._shrunken(covered_pcs=frozenset({bogus})
                           | self._live(bundle)))
        violations = check_coverage(bundle)
        assert any("reachability" in v.message for v in violations)

    @staticmethod
    def _live(bundle):
        from repro.static.predictor import predict_coverage
        return predict_coverage(bundle.image).covered_pcs


class TestOracleRegistry:
    def test_every_oracle_callable_and_named(self):
        assert set(oracle_names()) == set(ORACLES)
        for name, oracle in ORACLES.items():
            assert callable(oracle), name

    def test_report_by_oracle_counts(self):
        report = CheckReport(profile=profile_for("compress"),
                             instructions=BUDGET, tc_entries=128,
                             pb_entries=64, static_seed=False,
                             oracles=("cfg",))
        report.violations = [Violation("cfg", "a"), Violation("cfg", "b")]
        assert report.by_oracle() == {"cfg": 2, "generate": 0}
        assert not report.ok
