"""Regression tests for the timing-model bugfixes and determinism
guarantees that rode along with the hot-path overhaul:

* trace-hit retire pacing uses ceiling division, not banker's ``round``;
* the preconstruction I-cache port carries its overdraft across ticks;
* invalidating a cache entry demotes its way in the replacement policy;
* the default set-index hash is PYTHONHASHSEED-independent, so results
  are byte-identical across processes;
* a golden pin of ``FrontendStats.summary()`` for a seeded workload.
"""

import json
import os
import subprocess
import sys

from repro.branch import BimodalPredictor
from repro.caches import (
    LRU,
    InstructionCache,
    SetAssociativeCache,
    stable_index,
)
from repro.core import PreconstructionEngine
from repro.isa import assemble
from repro.program import ProgramImage
from repro.runner import ExperimentSpec, execute_spec
from repro.sim.frontend_runner import retire_pace_table
from repro.trace import TraceCache


# ----------------------------------------------------------------------
# Fix 1: retire pacing is ceiling division.
# ----------------------------------------------------------------------
class TestRetirePaceCeiling:
    def test_half_cycle_drains_round_up(self):
        # 15 instructions at 2.5 IPC need 6 cycles; 16 need 6.4 -> 7.
        # round() gave 6 for both (banker's rounding on 6.5 went down
        # via 16/2.5=6.4? no: 15/2.5=6.0, 16/2.5=6.4->6), undercharging
        # any trace whose drain lands between integers.
        table = retire_pace_table(2.5)
        assert table[15] == 6
        assert table[16] == 7

    def test_floor_is_one_fetch_cycle(self):
        table = retire_pace_table(4.0)
        assert table[0] == 1
        assert table[1] == 1

    def test_exact_multiples_unchanged(self):
        table = retire_pace_table(2.0)
        assert [table[n] for n in (2, 4, 8, 16)] == [1, 2, 4, 8]


# ----------------------------------------------------------------------
# Fix 2: I-cache port overdraft is carried across ticks.
# ----------------------------------------------------------------------
def _straight_line_engine():
    source = "main:\n" + "\n".join(
        f"    addi r{1 + (i % 5)}, r0, {i}" for i in range(40)
    ) + "\n    halt\n"
    insts, labels = assemble(source, base=0x1000)
    image = ProgramImage(instructions=insts, code_base=0x1000,
                         entry=0x1000, labels=labels)
    icache = InstructionCache()
    engine = PreconstructionEngine(
        image=image, icache=icache, bimodal=BimodalPredictor(),
        trace_cache=TraceCache())
    return engine, icache


class TestPortOverdraftCarried:
    def test_overdraft_stalls_next_burst(self):
        engine, icache = _straight_line_engine()
        engine.stack.push(0x1000)

        # One idle cycle funds one step per constructor; the first step
        # issues a line fetch that misses (10 cycles against a budget
        # of 1), leaving 9 cycles of port debt.
        engine.tick(1)
        traffic = icache.traffic["preconstruct"]
        assert traffic.lines_accessed == 1
        assert engine._port_debt == 9
        assert engine.stats.port_overdraft_carried == 9

        # The next 5-cycle burst repays debt: no new fetch may issue.
        engine.tick(5)
        assert traffic.lines_accessed == 1
        assert engine._port_debt == 4

        # Once the debt is repaid, the port opens again.
        engine.tick(5)
        assert traffic.lines_accessed == 2

    def test_no_overdraft_without_miss_pressure(self):
        engine, _ = _straight_line_engine()
        engine.stack.push(0x1000)
        engine.tick(50)  # plenty of budget: the fetch is fully funded
        assert engine._port_debt == 0


# ----------------------------------------------------------------------
# Fix 3: invalidate demotes the way in the replacement policy.
# ----------------------------------------------------------------------
class TestInvalidateNotifiesPolicy:
    def test_lru_order_demotes_invalidated_way(self):
        policy = LRU(num_sets=1, ways=4)
        cache = SetAssociativeCache(num_sets=1, ways=4, policy=policy)
        for key in "abcd":
            cache.insert(key, key.upper())
        cache.lookup("a")  # recency: a d c b
        assert cache.invalidate("a")
        # The freed way (a's) must now be the least-recent of the set.
        order = policy.recency_order(0)
        assert order == (3, 2, 1, 0)  # a held way 0; demoted to last

    def test_refill_reclaims_freed_way_before_live_lines(self):
        cache = SetAssociativeCache(num_sets=1, ways=2)
        cache.insert("a", 1)
        cache.insert("b", 2)
        cache.lookup("a")
        cache.invalidate("b")
        # Without on_invalidate, "b"'s stale recency would leave "a" as
        # the victim and the refill would evict a live line.
        assert cache.insert("c", 3) is None
        assert "a" in cache and "c" in cache

    def test_invalidate_absent_key_is_noop(self):
        cache = SetAssociativeCache(num_sets=2, ways=2)
        assert not cache.invalidate("missing")


# ----------------------------------------------------------------------
# Fix 4: the default set index is PYTHONHASHSEED-independent.
# ----------------------------------------------------------------------
_CHILD_SCRIPT = """
import json
from repro.runner import ExperimentSpec, execute_spec
spec = ExperimentSpec(benchmark="compress", tc_entries=64, pb_entries=32,
                      instructions=4000)
print(json.dumps(execute_spec(spec).metrics, sort_keys=True))
"""


def _metrics_under_hashseed(seed: str) -> dict:
    env = dict(os.environ, PYTHONHASHSEED=seed,
               PYTHONPATH=os.pathsep.join(
                   filter(None, [os.path.join(os.path.dirname(__file__),
                                              os.pardir, "src"),
                                 os.environ.get("PYTHONPATH", "")])))
    out = subprocess.run([sys.executable, "-c", _CHILD_SCRIPT],
                         capture_output=True, text=True, env=env, check=True)
    return json.loads(out.stdout)


class TestHashSeedIndependence:
    def test_stable_index_covers_key_shapes(self):
        assert stable_index(7) == 7
        assert stable_index("gcc") == stable_index("gcc")
        assert (stable_index((0x1000, (True, False)))
                == stable_index((0x1000, (True, False))))
        assert stable_index(frozenset({1, 2})) == stable_index(
            frozenset({2, 1}))

    def test_metrics_identical_across_hash_seeds(self):
        first = _metrics_under_hashseed("1")
        second = _metrics_under_hashseed("2")
        assert first == second


# ----------------------------------------------------------------------
# Golden pin: the headline metrics of a seeded workload.  Any timing
# change — intended or not — must update these numbers consciously.
# ----------------------------------------------------------------------
GOLDEN_SUMMARY = {
    "instructions": 8000,
    "traces": 569,
    "cycles": 4649,
    "trace_misses_per_ki": 18.75,
    "icache_instructions_per_ki": 262.5,
    "icache_misses_per_ki": 1.625,
    "icache_miss_instructions_per_ki": 6.25,
    "ntp_accuracy": 0.6783831282952548,
    "trace_hit_fraction": 0.7363796133567663,
    "buffer_hits": 44,
}


class TestGoldenMetrics:
    def test_summary_matches_pin(self):
        spec = ExperimentSpec(benchmark="compress", tc_entries=64,
                              pb_entries=32, instructions=8000)
        assert execute_spec(spec).metrics == GOLDEN_SUMMARY
