"""Tests for the data-cache timing model."""

import pytest

from repro.caches.dcache import DataCache, DCacheConfig


class TestDCacheBasics:
    def test_geometry(self):
        config = DCacheConfig()
        assert config.num_sets == 256

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            DCacheConfig(size_bytes=1000).num_sets

    def test_miss_then_hit(self):
        dcache = DataCache()
        assert dcache.access(0x40_0000, False, cycle=0) == 10
        assert dcache.access(0x40_0004, False, cycle=1) == 2  # same line
        assert dcache.stats.loads == 2
        assert dcache.stats.load_misses == 1

    def test_store_sets_dirty_and_writeback_counted(self):
        config = DCacheConfig(size_bytes=256, ways=1, line_bytes=64)
        dcache = DataCache(config)  # 4 sets, direct mapped
        dcache.access(0x0, True, cycle=0)          # store miss, dirty
        dcache.access(0x400, False, cycle=1)       # same set, evicts dirty
        assert dcache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        config = DCacheConfig(size_bytes=256, ways=1, line_bytes=64)
        dcache = DataCache(config)
        dcache.access(0x0, False, cycle=0)
        dcache.access(0x400, False, cycle=1)
        assert dcache.stats.writebacks == 0

    def test_port_contention_delays(self):
        config = DCacheConfig(ports=1, ports_per_pe=1)
        dcache = DataCache(config)
        first = dcache.access(0x0, False, cycle=5)
        second = dcache.access(0x0, False, cycle=5)
        # Second access in the same cycle waits one cycle for the port.
        assert second == first - 10 + 2 + 1 or second == first + 1 \
            or dcache.stats.port_stall_cycles >= 1

    def test_per_pe_port_limit(self):
        config = DCacheConfig(ports=4, ports_per_pe=2)
        dcache = DataCache(config)
        for _ in range(2):
            dcache.access(0x0, False, cycle=0, pe=0)
        before = dcache.stats.port_stall_cycles
        dcache.access(0x0, False, cycle=0, pe=0)  # third from same PE
        assert dcache.stats.port_stall_cycles > before

    def test_stats_aggregation(self):
        dcache = DataCache()
        dcache.access(0x0, False, cycle=0)
        dcache.access(0x1000, True, cycle=0)
        stats = dcache.stats
        assert stats.accesses == 2
        assert stats.misses == 2
        assert stats.miss_rate == 1.0
