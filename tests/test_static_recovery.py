"""Tests for static CFG recovery, dominators/loops, call graph, seeding."""

from repro.isa import INSTRUCTION_BYTES, assemble
from repro.program import ProgramImage
from repro.static import (
    DominatorTree,
    RecoveredCFG,
    StaticCallGraph,
    compute_static_seeds,
    find_loops,
    irreducible_components,
)
from repro.static.recovery import START_PROC, resolve_indirect_table


def _image(source: str, procs=None, data=None, relocs=None):
    """Assemble ``source``; labels not named in ``procs`` are treated as
    block-internal and dropped (the assembler already resolved them)."""
    insts, labels = assemble(source, base=0x1000)
    if procs is not None:
        labels = {k: v for k, v in labels.items() if k in procs}
    return ProgramImage(instructions=insts, code_base=0x1000, entry=0x1000,
                        labels=labels, data=data or {}, relocs=relocs or {})


DIAMOND = """
main:
    jal f
    halt
f:
    andi r1, r1, 1
    bne  r1, r0, then
    addi r2, r0, 1
    j    join
then:
    addi r2, r0, 2
join:
    jr ra
"""


LOOP = """
main:
    jal f
    halt
f:
    addi r1, r0, 0
    addi r2, r0, 8
head:
    addi r1, r1, 1
    blt  r1, r2, head
    jr ra
"""

NESTED = """
main:
    jal f
    halt
f:
    addi r1, r0, 0
outer:
    addi r2, r0, 0
inner:
    addi r2, r2, 1
    blt  r2, r4, inner
    addi r1, r1, 1
    blt  r1, r3, outer
    jr ra
"""

# Two-entry cycle: main can enter the a<->b cycle at either node, so
# neither dominates the other (classic irreducible shape).
IRREDUCIBLE = """
f:
    bne r1, r0, b
a:
    addi r2, r2, 1
    j b
b:
    addi r2, r2, 2
    beq r2, r3, done
    j a
done:
    jr ra
"""


class TestProcedureRanges:
    def test_partition_and_stub(self):
        image = _image(DIAMOND, procs={"main", "f"})
        cfg = RecoveredCFG(image)
        names = [p.name for p in cfg.procedures]
        assert names == ["main", "f"]
        main, f = cfg.procedures
        assert main.start == 0x1000 and main.end == f.start
        assert f.end == image.code_end
        assert cfg.procedure_of(f.start + 4) is f
        assert cfg.procedure_of(0x9999) is None

    def test_synthetic_start_proc(self):
        # Labels placed past the first instructions leave a stub range.
        insts, labels = assemble("nop\nhalt\nmain:\njr ra", base=0x1000)
        image = ProgramImage(instructions=insts, code_base=0x1000,
                             entry=0x1000, labels=labels)
        cfg = RecoveredCFG(image)
        assert cfg.procedures[0].name == START_PROC
        assert cfg.procedures[0].start == 0x1000
        assert cfg.procedures[1].name == "main"


class TestBlockDiscovery:
    def test_diamond_blocks(self):
        image = _image(DIAMOND, procs={"main", "f"})
        cfg = RecoveredCFG(image)
        f = cfg.procedure("f")
        blocks = cfg.proc_blocks(f)
        terms = [b.terminator for b in blocks]
        assert terms == ["branch", "jump", "fallthrough", "return"]
        branch = blocks[0]
        then_start, join_start = blocks[2].start, blocks[3].start
        assert set(branch.successors) == {then_start, branch.end}
        assert blocks[1].successors == (join_start,)
        assert blocks[3].successors == ()

    def test_call_does_not_end_block(self):
        image = _image(DIAMOND, procs={"main", "f"})
        cfg = RecoveredCFG(image)
        main_blocks = cfg.proc_blocks(cfg.procedure("main"))
        # JAL + HALT form a single block (the call falls through).
        assert len(main_blocks) == 1
        assert main_blocks[0].instructions == 2
        assert main_blocks[0].terminator == "halt"

    def test_block_at_interior_address(self):
        image = _image(DIAMOND, procs={"main", "f"})
        cfg = RecoveredCFG(image)
        f = cfg.procedure("f")
        entry_block = cfg.block_at(f.start + INSTRUCTION_BYTES)
        assert entry_block is not None
        assert entry_block.start == f.start

    def test_reachability_excludes_orphans(self):
        src = """
        f:
            jr ra
            addi r1, r1, 1
            jr ra
        """
        image = _image(src, procs={"f"})
        cfg = RecoveredCFG(image)
        f = cfg.procedure("f")
        reachable = cfg.reachable_blocks(f)
        assert reachable == {f.start}
        assert len(cfg.proc_blocks(f)) == 2


class TestDominatorsAndLoops:
    def test_diamond_dominance(self):
        image = _image(DIAMOND, procs={"main", "f"})
        cfg = RecoveredCFG(image)
        f = cfg.procedure("f")
        tree = DominatorTree(cfg, f)
        blocks = cfg.proc_blocks(f)
        entry, else_b, then_b, join = (b.start for b in blocks)
        assert tree.dominates(entry, join)
        assert not tree.dominates(else_b, join)
        assert not tree.dominates(then_b, join)
        assert find_loops(tree) == []

    def test_single_loop(self):
        image = _image(LOOP, procs={"main", "f"})
        cfg = RecoveredCFG(image)
        tree = DominatorTree(cfg, cfg.procedure("f"))
        loops = find_loops(tree)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.depth == 1
        assert len(loop.back_edges) == 1
        source, header = loop.back_edges[0]
        assert header == loop.header
        assert cfg.blocks[source].terminator == "branch"

    def test_nested_loop_depths(self):
        image = _image(NESTED, procs={"main", "f"})
        cfg = RecoveredCFG(image)
        tree = DominatorTree(cfg, cfg.procedure("f"))
        loops = find_loops(tree)
        assert [loop.depth for loop in loops] == [1, 2]
        outer, inner = loops
        assert inner.body < outer.body

    def test_irreducible_detected(self):
        image = _image(IRREDUCIBLE, procs={"f"})
        cfg = RecoveredCFG(image)
        tree = DominatorTree(cfg, cfg.procedure("f"))
        comps = irreducible_components(tree)
        assert len(comps) == 1
        assert len(comps[0]) >= 2

    def test_reducible_has_no_components(self):
        image = _image(NESTED, procs={"main", "f"})
        cfg = RecoveredCFG(image)
        tree = DominatorTree(cfg, cfg.procedure("f"))
        assert irreducible_components(tree) == []


class TestIndirectResolution:
    SWITCH = """
    f:
        andi r16, r16, 1
        slli r16, r16, 2
        lui  r17, 64
        ori  r17, r17, 0
        add  r17, r17, r16
        lw   r18, 0(r17)
        jr   r18
    arm0:
        j out
    arm1:
        addi r1, r1, 1
    out:
        jr ra
    """

    def _switch_image(self):
        insts, labels = assemble(self.SWITCH, base=0x1000)
        table = 64 << 16
        relocs = {table: labels["arm0"], table + 4: labels["arm1"]}
        return ProgramImage(
            instructions=insts, code_base=0x1000, entry=0x1000,
            labels={"f": labels["f"]}, data=dict(relocs),
            relocs=relocs), labels

    def test_exact_table_resolution(self):
        image, labels = self._switch_image()
        jr_pc = labels["arm0"] - INSTRUCTION_BYTES
        targets = resolve_indirect_table(image, jr_pc, image.relocs)
        assert targets == (labels["arm0"], labels["arm1"])

    def test_switch_block_successors(self):
        image, labels = self._switch_image()
        cfg = RecoveredCFG(image)
        block = cfg.block_at(labels["arm0"] - INSTRUCTION_BYTES)
        assert block.terminator == "switch"
        assert set(block.successors) == {labels["arm0"], labels["arm1"]}

    def test_unmatched_pattern_returns_none(self):
        image = _image(DIAMOND, procs={"main", "f"})
        # The return JR has no table-producing chain behind it.
        ret_pc = image.code_end - INSTRUCTION_BYTES
        assert resolve_indirect_table(image, ret_pc, {}) is None


class TestCallGraph:
    def test_direct_edges_and_liveness(self):
        src = """
        main:
            jal a
            halt
        a:
            jal b
            jr ra
        b:
            jr ra
        dead:
            jr ra
        """
        image = _image(src, procs={"main", "a", "b", "dead"})
        graph = StaticCallGraph(RecoveredCFG(image))
        assert graph.edges["main"] == {"a"}
        assert graph.edges["a"] == {"b"}
        assert graph.live == {"main", "a", "b"}
        assert graph.dead_procedures == ("dead",)
        assert graph.max_call_depth == 2
        assert graph.callers_of("b") == {"a"}

    def test_recursion_unbounded_depth(self):
        src = """
        main:
            jal a
            halt
        a:
            jal a
            jr ra
        """
        image = _image(src, procs={"main", "a"})
        graph = StaticCallGraph(RecoveredCFG(image))
        assert graph.max_call_depth is None


class TestStaticSeeding:
    def test_loop_exit_and_call_return_seeds(self):
        image = _image(LOOP, procs={"main", "f"})
        cfg = RecoveredCFG(image)
        seeds = compute_static_seeds(image)
        kinds = {s.kind for s in seeds}
        assert kinds == {"loop_exit", "call_return"}
        loop_seed = next(s for s in seeds if s.kind == "loop_exit")
        # The exit point is the fall-through of the back-edge branch.
        back_branch = loop_seed.cue_pc
        assert image.fetch(back_branch).is_backward_branch()
        assert loop_seed.pc == back_branch + INSTRUCTION_BYTES
        call_seed = next(s for s in seeds if s.kind == "call_return")
        assert image.fetch(call_seed.cue_pc).is_call
        assert call_seed.pc == call_seed.cue_pc + INSTRUCTION_BYTES

    def test_best_first_order(self):
        image = _image(NESTED, procs={"main", "f"})
        seeds = compute_static_seeds(image)
        kinds = [s.kind for s in seeds]
        # All loop exits precede all call returns.
        assert kinds == sorted(kinds, key=lambda k: k != "loop_exit")
        exits = [s for s in seeds if s.kind == "loop_exit"]
        depths = [s.loop_depth for s in exits]
        assert depths == sorted(depths, reverse=True)

    def test_dead_procedures_contribute_nothing(self):
        src = """
        main:
            jal a
            halt
        a:
            jr ra
        dead:
            addi r1, r0, 0
            addi r2, r0, 9
            jal a
            blt r1, r2, dead
            jr ra
        """
        image = _image(src, procs={"main", "a", "dead"})
        seeds = compute_static_seeds(image)
        assert all(s.procedure != "dead" for s in seeds)

    def test_footprints_positive_and_capped(self):
        image = _image(NESTED, procs={"main", "f"})
        for seed in compute_static_seeds(image):
            assert seed.footprint_instructions > 0
            assert seed.footprint_lines >= 1
