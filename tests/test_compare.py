"""Tests for the head-to-head mechanism comparison (`repro compare`)."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    COMPARE_PB_SIZES,
    compare_from_results,
    compare_specs,
    compare_sweep,
    format_compare,
    rows_to_dicts,
)
from repro.frontends import mechanism_names
from repro.runner import sweep

GOLDEN = Path(__file__).parent / "golden" / "compare_mechanisms.json"

INSTRUCTIONS = 8_000


class TestCompareSpecs:
    def test_grid_shape(self):
        specs = compare_specs("gcc", instructions=INSTRUCTIONS)
        assert len(specs) == 1 + len(mechanism_names()) * len(COMPARE_PB_SIZES)
        # One shared baseline first.
        assert specs[0].pb_entries == 0
        assert all(spec.pb_entries > 0 for spec in specs[1:])
        assert all(spec.benchmark == "gcc" for spec in specs)

    def test_mechanism_subset_preserves_order(self):
        specs = compare_specs("gcc", ["pmap", "nextline", "pmap"],
                              pb_sizes=(64,), instructions=INSTRUCTIONS)
        assert [s.mechanism for s in specs[1:]] == ["pmap", "nextline"]

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError, match="unknown mechanism"):
            compare_specs("gcc", ["markov"], instructions=INSTRUCTIONS)

    def test_mechanism_in_spec_digest(self):
        specs = compare_specs("gcc", ["pmap", "nextline"], pb_sizes=(64,),
                              instructions=INSTRUCTIONS)
        assert specs[1].digest() != specs[2].digest()
        assert specs[1].replace(mechanism="nextline").digest() \
            == specs[2].digest()


class TestCompareAssembly:
    @pytest.fixture(scope="class")
    def rows(self):
        specs = compare_specs("compress", pb_sizes=(64,),
                              tc_entries=128, instructions=INSTRUCTIONS)
        return compare_from_results(sweep(specs))

    def test_baseline_relabelled(self, rows):
        assert rows[0].mechanism == "baseline"
        assert rows[0].pb_entries == 0
        assert {row.mechanism for row in rows[1:]} == set(mechanism_names())

    def test_rows_to_dicts_round_trips(self, rows):
        dicts = rows_to_dicts(rows)
        assert json.loads(json.dumps(dicts)) == dicts
        assert all("trace_misses_per_ki" in d and "cycles" in d
                   for d in dicts)

    def test_format_contains_all_mechanisms(self, rows):
        text = format_compare(rows, INSTRUCTIONS)
        assert "compress (tc=128, 8000 instructions)" in text
        for name in ("baseline",) + mechanism_names():
            assert name in text
        # The baseline row is its own reference point.
        baseline_line = next(line for line in text.splitlines()
                             if line.startswith("baseline"))
        assert baseline_line.rstrip().endswith("1.000")

    def test_preconstruction_uniquely_cuts_trace_misses(self, rows):
        """The asymmetry the exhibit exists to show: prefetchers leave
        trace misses at the baseline; preconstruction removes them."""
        by_mechanism = {row.mechanism: row for row in rows}
        base = by_mechanism["baseline"].metrics["trace_misses_per_ki"]
        for name in ("mana", "nextline", "pmap"):
            assert by_mechanism[name].metrics["trace_misses_per_ki"] == base
        precon = by_mechanism["preconstruction"]
        assert precon.metrics["trace_misses_per_ki"] < base
        assert precon.metrics["buffer_hits"] > 0


class TestGoldenPins:
    """Per-mechanism sweep results pinned for two SPEC stand-ins."""

    def test_sweep_matches_golden(self):
        golden = json.loads(GOLDEN.read_text())
        rows = compare_sweep(["compress", "gcc"], tc_entries=128,
                             pb_sizes=(64,), instructions=INSTRUCTIONS)
        assert rows_to_dicts(rows) == golden

    def test_golden_covers_every_mechanism_twice(self):
        golden = json.loads(GOLDEN.read_text())
        for benchmark in ("compress", "gcc"):
            seen = {row["mechanism"] for row in golden
                    if row["benchmark"] == benchmark}
            assert seen == {"baseline", *mechanism_names()}


class TestCompareSweep:
    def test_multi_benchmark_grouping(self):
        rows = compare_sweep(["compress", "gcc"], ["nextline"],
                             tc_entries=128, pb_sizes=(64,),
                             instructions=INSTRUCTIONS)
        assert [row.benchmark for row in rows] == ["compress", "compress",
                                                   "gcc", "gcc"]
        text = format_compare(rows, INSTRUCTIONS)
        assert "compress (tc=128" in text and "gcc (tc=128" in text
