"""Unit tests for trace identity and the selection/alignment rules."""

import pytest

from repro.engine import FunctionalEngine
from repro.isa import Instruction, Opcode, assemble, ret
from repro.program import ProgramImage
from repro.trace import (
    MAX_TRACE_LENGTH,
    SelectionConfig,
    Trace,
    TraceBuilder,
    TraceID,
    traces_of_stream,
)


def _nop_entry(pc):
    inst = Instruction(Opcode.NOP)
    return pc, inst, False, pc + 4


def _stream_of(source: str, n: int = 100_000):
    insts, labels = assemble(source, base=0x1000)
    image = ProgramImage(instructions=insts, code_base=0x1000, entry=0x1000,
                        labels=labels)
    return FunctionalEngine(image).run(n)


class TestTraceID:
    def test_equality_and_hash(self):
        a = TraceID(0x1000, (True, False))
        b = TraceID(0x1000, (True, False))
        c = TraceID(0x1000, (False, False))
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_str_rendering(self):
        assert "T" in str(TraceID(0x1000, (True,)))


class TestTraceInvariants:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            Trace(trace_id=TraceID(0x1000, ()), instructions=(), pcs=(),
                  next_pc=0, ends_in_call=False, ends_in_return=False)

    def test_start_pc_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(trace_id=TraceID(0x1000, ()),
                  instructions=(Instruction(Opcode.NOP),), pcs=(0x2000,),
                  next_pc=0, ends_in_call=False, ends_in_return=False)

    def test_oversized_trace_rejected(self):
        insts = tuple(Instruction(Opcode.NOP) for _ in range(17))
        pcs = tuple(0x1000 + 4 * i for i in range(17))
        with pytest.raises(ValueError):
            Trace(trace_id=TraceID(0x1000, ()), instructions=insts, pcs=pcs,
                  next_pc=0, ends_in_call=False, ends_in_return=False)


class TestBuilderRules:
    def test_max_length_emits_at_16(self):
        builder = TraceBuilder()
        trace = None
        for i in range(MAX_TRACE_LENGTH):
            trace = builder.add(*_nop_entry(0x1000 + 4 * i))
        assert trace is not None
        assert len(trace) == MAX_TRACE_LENGTH

    def test_ends_at_return(self):
        builder = TraceBuilder()
        builder.add(*_nop_entry(0x1000))
        trace = builder.add(0x1004, ret(), False, 0x9000)
        assert trace is not None
        assert trace.ends_in_return
        assert trace.next_pc == 0x9000

    def test_ends_at_indirect_jump(self):
        builder = TraceBuilder()
        trace = builder.add(0x1000, Instruction(Opcode.JR, rs1=9), False,
                            0x2000)
        assert trace is not None
        assert not trace.ends_in_return

    def test_call_does_not_end_trace(self):
        builder = TraceBuilder()
        trace = builder.add(0x1000, Instruction(Opcode.JAL, imm=0x5000),
                            False, 0x5000)
        assert trace is None

    def test_flush_emits_partial(self):
        builder = TraceBuilder()
        builder.add(*_nop_entry(0x1000))
        trace = builder.flush()
        assert trace is not None and len(trace) == 1
        assert builder.flush() is None

    def test_outcome_vector_matches_branches(self):
        builder = TraceBuilder()
        builder.add(0x1000, Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=64),
                    True, 0x1040)
        builder.add(0x1040, Instruction(Opcode.BNE, rs1=1, rs2=2, imm=64),
                    False, 0x1044)
        trace = builder.add(0x1044, ret(), False, 0x9000)
        assert trace.trace_id.outcomes == (True, False)


class TestAlignmentHeuristic:
    def _fill_with_backward_branch(self, branch_index: int,
                                   align: int = 4) -> Trace:
        """Build a 16-entry buffer whose only backward branch sits at
        ``branch_index``; return the emitted (possibly truncated) trace."""
        builder = TraceBuilder(SelectionConfig(align_multiple=align))
        trace = None
        for i in range(MAX_TRACE_LENGTH):
            pc = 0x1000 + 4 * i
            if i == branch_index:
                inst = Instruction(Opcode.BNE, rs1=1, rs2=2, imm=-32)
                trace = builder.add(pc, inst, True, pc - 32)
            else:
                trace = builder.add(*_nop_entry(pc))
        return trace

    def test_truncation_lands_on_multiple_of_four(self):
        for branch_index in range(MAX_TRACE_LENGTH):
            trace = self._fill_with_backward_branch(branch_index)
            beyond = len(trace) - branch_index - 1
            assert beyond >= 0
            assert beyond % 4 == 0, (branch_index, len(trace))

    def test_no_backward_branch_means_no_truncation(self):
        builder = TraceBuilder()
        trace = None
        for i in range(MAX_TRACE_LENGTH):
            trace = builder.add(*_nop_entry(0x1000 + 4 * i))
        assert len(trace) == MAX_TRACE_LENGTH

    def test_alignment_disabled(self):
        trace = self._fill_with_backward_branch(branch_index=5, align=0)
        assert len(trace) == MAX_TRACE_LENGTH

    def test_leftover_starts_next_trace(self):
        builder = TraceBuilder(SelectionConfig(align_multiple=4))
        first = None
        for i in range(MAX_TRACE_LENGTH):
            pc = 0x1000 + 4 * i
            if i == 13:
                # A not-taken backward branch (loop exit): the stream
                # falls through, so the leftover is sequential.
                inst = Instruction(Opcode.BNE, rs1=1, rs2=2, imm=-32)
                first = builder.add(pc, inst, False, pc + 4)
            else:
                first = builder.add(*_nop_entry(pc))
        assert first is not None and len(first) == 14
        # Two leftover entries stay buffered and begin the next trace.
        assert len(builder) == 2
        assert builder.pending_start_pc == first.next_pc


class TestStreamPartition:
    SOURCE = """
        addi r2, r0, 6
    outer:
        addi r1, r0, 0
    inner:
        addi r1, r1, 1
        addi r3, r1, 0
        blt  r1, r2, inner
        jal  helper
        addi r2, r2, -1
        bne  r2, r0, outer
        halt
    helper:
        add  r4, r1, r2
        jr   ra
    """

    def test_traces_cover_stream_exactly(self):
        stream = _stream_of(self.SOURCE)
        traces = traces_of_stream(stream)
        flat_pcs = [pc for t in traces for pc in t.pcs]
        assert flat_pcs == [r.pc for r in stream]

    def test_traces_chain_by_next_pc(self):
        stream = _stream_of(self.SOURCE)
        traces = traces_of_stream(stream)
        for prev, cur in zip(traces, traces[1:]):
            assert prev.next_pc == cur.start_pc

    def test_identical_ids_have_identical_content(self):
        """The trace-identity invariant: same (start, outcomes) => same
        instructions.  This is what makes preconstruction alignment
        possible at all."""
        stream = _stream_of(self.SOURCE)
        seen: dict[TraceID, tuple] = {}
        for trace in traces_of_stream(stream):
            key = trace.trace_id
            if key in seen:
                assert seen[key] == trace.pcs
            else:
                seen[key] = trace.pcs

    def test_returns_end_traces(self):
        stream = _stream_of(self.SOURCE)
        for trace in traces_of_stream(stream):
            for inst in trace.instructions[:-1]:
                assert not inst.is_return
