"""Unit tests for CFG construction and the layout/linking pass."""

import pytest

from repro.isa import Instruction, Opcode
from repro.program import (
    BasicBlock,
    Call,
    ControlFlowGraph,
    DataSegment,
    LayoutError,
    Procedure,
    Reloc,
    TermKind,
    Terminator,
    layout,
)


def _leaf(name: str) -> Procedure:
    """A one-block procedure that just returns."""
    cfg = ControlFlowGraph()
    cfg.add(BasicBlock(
        label=name,
        body=[Instruction(Opcode.ADDI, rd=1, rs1=1, imm=1)],
        terminator=Terminator(TermKind.RETURN),
    ))
    return Procedure(name=name, cfg=cfg)


def _main_calling(callee: str) -> Procedure:
    cfg = ControlFlowGraph()
    cfg.add(BasicBlock(
        label="main",
        body=[Call(callee)],
        terminator=Terminator(TermKind.RETURN),
    ))
    return Procedure(name="main", cfg=cfg)


class TestLayoutBasics:
    def test_stub_then_entry(self):
        image = layout([_main_calling("leaf"), _leaf("leaf")], entry="main")
        stub = image.fetch(image.entry)
        assert stub.op is Opcode.JAL
        assert stub.imm == image.labels["main"]
        assert image.fetch(image.entry + 4).op is Opcode.HALT

    def test_call_resolved_to_callee_address(self):
        image = layout([_main_calling("leaf"), _leaf("leaf")], entry="main")
        call = image.fetch(image.labels["main"])
        assert call.op is Opcode.JAL
        assert call.imm == image.labels["leaf"]

    def test_branch_immediates_are_pc_relative(self):
        cfg = ControlFlowGraph()
        cfg.add(BasicBlock(
            label="main",
            terminator=Terminator(TermKind.FALLTHROUGH, targets=("main:loop",)),
        ))
        cfg.add(BasicBlock(
            label="main:loop",
            body=[Instruction(Opcode.ADDI, rd=1, rs1=1, imm=1)],
            terminator=Terminator(
                TermKind.BRANCH, targets=("main:loop", "main:done"),
                branch_op=Opcode.BLT, rs1=1, rs2=2),
        ))
        cfg.add(BasicBlock(label="main:done",
                           terminator=Terminator(TermKind.RETURN)))
        image = layout([Procedure("main", cfg)], entry="main")
        loop_addr = image.labels["main:loop"]
        branch_pc = loop_addr + 4  # one body instruction before the branch
        branch = image.fetch(branch_pc)
        assert branch.op is Opcode.BLT
        assert branch_pc + branch.imm == loop_addr
        assert branch.is_backward_branch()

    def test_fallthrough_to_next_block_emits_nothing(self):
        cfg = ControlFlowGraph()
        cfg.add(BasicBlock(
            label="main",
            body=[Instruction(Opcode.NOP)],
            terminator=Terminator(TermKind.FALLTHROUGH, targets=("main:b",)),
        ))
        cfg.add(BasicBlock(label="main:b",
                           terminator=Terminator(TermKind.RETURN)))
        image = layout([Procedure("main", cfg)], entry="main")
        # stub(2) + nop + jr = 4 instructions, no inserted J
        assert image.code_size == 4

    def test_fallthrough_to_distant_block_inserts_jump(self):
        cfg = ControlFlowGraph()
        cfg.add(BasicBlock(
            label="main",
            terminator=Terminator(TermKind.FALLTHROUGH, targets=("main:far",)),
        ))
        cfg.add(BasicBlock(label="main:near",
                           terminator=Terminator(TermKind.RETURN)))
        cfg.add(BasicBlock(label="main:far",
                           terminator=Terminator(TermKind.RETURN)))
        image = layout([Procedure("main", cfg)], entry="main")
        inserted = image.fetch(image.labels["main"])
        assert inserted.op is Opcode.J
        assert inserted.imm == image.labels["main:far"]


class TestLayoutErrors:
    def test_missing_entry(self):
        with pytest.raises(LayoutError):
            layout([_leaf("leaf")], entry="main")

    def test_duplicate_procedures(self):
        with pytest.raises(LayoutError):
            layout([_leaf("p"), _leaf("p")], entry="p")

    def test_undefined_call_target(self):
        with pytest.raises(LayoutError):
            layout([_main_calling("ghost")], entry="main")

    def test_cfg_validation_catches_bad_successor(self):
        cfg = ControlFlowGraph()
        cfg.add(BasicBlock(
            label="main",
            terminator=Terminator(TermKind.JUMP, targets=("main:missing",)),
        ))
        with pytest.raises(ValueError):
            layout([Procedure("main", cfg)], entry="main")


class TestDataSegment:
    def test_relocations_resolve_to_code_addresses(self):
        data = DataSegment()
        table_addr = data.extend([Reloc("leaf"), Reloc("leaf", addend=4), 42])
        image = layout([_main_calling("leaf"), _leaf("leaf")], entry="main",
                       data=data)
        leaf = image.labels["leaf"]
        assert image.data[table_addr] == leaf
        assert image.data[table_addr + 4] == leaf + 4
        assert image.data[table_addr + 8] == 42

    def test_append_returns_addresses(self):
        data = DataSegment(base=0x5000)
        first = data.append(1)
        second = data.append(2)
        assert (first, second) == (0x5000, 0x5004)
