"""Differential test battery for the batched struct-of-arrays kernel.

``simulator="vectorized"`` is an *execution strategy*, never a result
change: the spec digest excludes the field, so both kernels share one
cache entry and their outputs must be interchangeable.  This battery
is the proof obligation behind that contract — it pins equivalence at
every observable surface:

* **stats counters** — every :class:`FrontendStats` field, per
  mechanism, per sizing, batched-many-at-once and one-at-a-time;
* **cache end states** — resident trace-cache contents and occupancy;
* **event streams & interval metrics** — observed runs byte-identical,
  including against the pinned golden metrics file;
* **CLI stdout** — exhibit tables identical under ``--simulator``,
  serial and parallel;
* **manifests & caching** — kernel-blind provenance, cross-kernel
  cache hits in both directions;

plus hypothesis property tests for the struct-of-arrays decode itself
(:class:`DecodedImage` round-trip, including jump-table and
function-pointer/reloc edges) and for the vectorized trace
delimitation against the scalar :func:`traces_of_stream` partition.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.engine import FunctionalEngine
from repro.obs import build_manifest, run_observed
from repro.runner import (
    SIMULATOR_KINDS,
    ExperimentRunner,
    ExperimentSpec,
    ResultCache,
    run_point,
)
from repro.runner.pool import StreamCache
from repro.sim import run_frontend
from repro.trace import SelectionConfig, traces_of_stream
from repro.vector import (
    DecodedImage,
    PlanMismatchError,
    build_plan,
    final_trace_is_partial,
    occurrence_branch_counts,
    occurrence_lengths,
    plan_key,
    run_frontend_batch,
    stream_arrays,
    trace_boundaries,
)
from repro.workloads import WorkloadProfile, generate

GOLDEN_DIR = Path(__file__).parent / "golden"
BUDGET = 6_000

#: The golden-metrics exhibit point (mirrors tests/test_obs.py).
SPEC = ExperimentSpec(benchmark="compress", tc_entries=256, pb_entries=256,
                      instructions=BUDGET)


def _legs(spec):
    """Scalar and batched runs of ``spec`` from one shared stream."""
    stream_cache = StreamCache(spec.instructions)
    image = stream_cache.image(spec.benchmark, spec.workload_seed)
    config = spec.frontend_config()
    traces = stream_cache.traces(spec.benchmark, spec.instructions,
                                 config.selection, spec.workload_seed)
    scalar = run_frontend(image, config, spec.instructions, traces=traces)
    plan = stream_cache.plan(spec.benchmark, spec.instructions, config,
                             spec.workload_seed)
    vector = run_frontend_batch(image, [config], plan)[0]
    return scalar, vector


def _assert_equivalent(scalar, vector):
    """Every observable of the two legs must match exactly."""
    assert dataclasses.asdict(scalar.stats) == dataclasses.asdict(
        vector.stats)
    assert ([t.trace_id for t in scalar.trace_cache.resident_traces()]
            == [t.trace_id for t in vector.trace_cache.resident_traces()])
    assert scalar.trace_cache.occupancy() == vector.trace_cache.occupancy()


# ----------------------------------------------------------------------
# Spec surface: the simulator field's contract
# ----------------------------------------------------------------------
class TestSimulatorSpecSurface:
    def test_simulator_kinds(self):
        assert SIMULATOR_KINDS == ("scalar", "vectorized")

    def test_default_is_scalar(self):
        assert ExperimentSpec(benchmark="compress").simulator == "scalar"

    def test_unknown_simulator_rejected(self):
        with pytest.raises(ValueError, match="unknown simulator"):
            ExperimentSpec(benchmark="compress", simulator="turbo")

    @pytest.mark.parametrize("kind", ["processor", "dynamic"])
    def test_vectorized_rejected_for_unbatched_kinds(self, kind):
        with pytest.raises(ValueError, match="scalar simulator"):
            ExperimentSpec(benchmark="compress", kind=kind,
                           simulator="vectorized")

    @pytest.mark.parametrize("kind", ["frontend", "check"])
    def test_vectorized_accepted_for_batched_kinds(self, kind):
        spec = ExperimentSpec(benchmark="compress", kind=kind,
                              simulator="vectorized")
        assert spec.simulator == "vectorized"

    def test_digest_excludes_simulator(self):
        # The load-bearing interchangeability contract: both kernels
        # share one content address (and therefore one cache entry).
        assert SPEC.digest() == SPEC.replace(
            simulator="vectorized").digest()

    def test_digest_still_varies_with_real_identity(self):
        assert SPEC.digest() != SPEC.replace(tc_entries=128).digest()

    def test_label_marks_non_default_kernel_only(self):
        assert "vectorized" not in SPEC.label
        assert "vectorized" in SPEC.replace(simulator="vectorized").label

    def test_spec_roundtrips_through_dict(self):
        spec = SPEC.replace(simulator="vectorized")
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec


# ----------------------------------------------------------------------
# DecodedImage: struct-of-arrays decode round-trip (property-tested)
# ----------------------------------------------------------------------

#: Derived classification flags the decode must preserve bit-for-bit.
FLAGS = ("is_control", "is_conditional_branch", "is_call", "is_return",
         "is_indirect", "is_backward")

profile_strategy = st.builds(
    WorkloadProfile,
    name=st.just("vecprop"),
    seed=st.integers(0, 2**16),
    procedures=st.integers(2, 8),
    constructs_min=st.just(2),
    constructs_max=st.integers(3, 5),
    loop_weight=st.floats(0.1, 0.4),
    diamond_weight=st.floats(0.1, 0.4),
    switch_weight=st.sampled_from([0.0, 0.1, 0.3]),
    call_weight=st.floats(0.05, 0.3),
    biased_fraction=st.floats(0.0, 1.0),
    call_guard_prob=st.floats(0.0, 0.8),
    fptr_call_prob=st.sampled_from([0.0, 0.5]),
    fanout=st.integers(1, 3),
)

#: Dispatch-heavy edge profiles: dense jump tables (switch relocation
#: targets) and function-pointer calls (reloc-loaded targets) stress
#: the successor-resolution arrays hardest.
EDGE_PROFILES = [
    WorkloadProfile(name="jumptables", seed=11, switch_weight=0.6,
                    switch_arms=8, procedures=6),
    WorkloadProfile(name="fptrs", seed=12, fptr_call_prob=1.0,
                    call_weight=0.6, procedures=10),
]


class TestDecodedImage:
    @settings(max_examples=15, deadline=None)
    @given(profile_strategy)
    def test_decode_round_trips_every_instruction(self, profile):
        image = generate(profile).image
        decoded = DecodedImage.from_image(image)
        assert len(decoded) == len(image.instructions)
        for i, inst in enumerate(image.instructions):
            assert decoded.instruction(i) == inst
            for flag in FLAGS:
                assert bool(getattr(decoded, flag)[i]) == getattr(inst, flag)

    @settings(max_examples=15, deadline=None)
    @given(profile_strategy)
    def test_pc_index_bijection(self, profile):
        image = generate(profile).image
        decoded = DecodedImage.from_image(image)
        for i in range(len(decoded)):
            assert decoded.index_of(decoded.pc_of(i)) == i

    @pytest.mark.parametrize("profile", EDGE_PROFILES,
                             ids=lambda p: p.name)
    def test_dispatch_heavy_edges_round_trip(self, profile):
        image = generate(profile).image
        decoded = DecodedImage.from_image(image)
        # The edge shapes must actually be present, or the test is vacuous.
        assert decoded.is_indirect.any()
        for i, inst in enumerate(image.instructions):
            assert decoded.instruction(i) == inst


# ----------------------------------------------------------------------
# Vectorized trace delimitation vs the scalar partition
# ----------------------------------------------------------------------
class TestVectorizedDelimitation:
    @settings(max_examples=10, deadline=None)
    @given(profile_strategy, st.integers(0, 3), st.booleans(), st.booleans())
    def test_matches_scalar_partition(self, profile, align_choice,
                                      end_at_returns, end_at_indirect):
        selection = SelectionConfig(align_multiple=(0, 2, 4, 8)[align_choice],
                                    end_at_returns=end_at_returns,
                                    end_at_indirect=end_at_indirect)
        image = generate(profile).image
        stream = FunctionalEngine(image).run(3_000)
        traces = traces_of_stream(stream, selection)
        decoded = DecodedImage.from_image(image)
        arrays = stream_arrays(stream, decoded)
        ends = trace_boundaries(arrays, decoded, selection)
        assert occurrence_lengths(ends).tolist() == [
            len(trace) for trace in traces]
        assert occurrence_branch_counts(arrays, decoded, ends).tolist() == [
            len(trace.trace_id.outcomes) for trace in traces]
        if traces:
            assert final_trace_is_partial(
                arrays, decoded, selection, ends) == traces[-1].partial

    def test_boundaries_tile_the_stream(self):
        image = generate(WorkloadProfile(name="tile", seed=5)).image
        stream = FunctionalEngine(image).run(4_000)
        decoded = DecodedImage.from_image(image)
        arrays = stream_arrays(stream, decoded)
        ends = trace_boundaries(arrays, decoded, SelectionConfig())
        assert int(ends[-1]) == len(stream)
        assert (occurrence_lengths(ends) > 0).all()


# ----------------------------------------------------------------------
# Batch plan: keying, cross-checks, compatibility gating
# ----------------------------------------------------------------------
class TestBatchPlan:
    def _materials(self, spec=SPEC):
        stream_cache = StreamCache(spec.instructions)
        image = stream_cache.image(spec.benchmark, spec.workload_seed)
        config = spec.frontend_config()
        stream = FunctionalEngine(image).run(spec.instructions)
        traces = stream_cache.traces(spec.benchmark, spec.instructions,
                                     config.selection, spec.workload_seed)
        return image, stream, traces, config

    def _build(self, image, stream, traces, config):
        return build_plan(
            image, stream, traces, selection=config.selection,
            predictor=config.predictor,
            bimodal_entries=config.bimodal_entries,
            train_bimodal=config.train_bimodal_on_all_branches,
            line_bytes=config.icache.line_bytes)

    def test_plan_key_is_hashable_and_stable(self):
        config = SPEC.frontend_config()
        again = SPEC.frontend_config()
        assert plan_key(config) == plan_key(again)
        assert {plan_key(config): "plan"}[plan_key(again)] == "plan"
        # Sizing knobs are per-point: they must not split the batch.
        assert plan_key(SPEC.replace(tc_entries=32).frontend_config()) \
            == plan_key(config)

    def test_build_cross_checks_against_scalar_partition(self):
        image, stream, traces, config = self._materials()
        with pytest.raises(PlanMismatchError, match="traces"):
            self._build(image, stream, traces[:-1], config)

    def test_incompatible_config_rejected_by_kernel(self):
        image, stream, traces, config = self._materials()
        plan = self._build(image, stream, traces, config)
        other = dataclasses.replace(
            SPEC.frontend_config(),
            bimodal_entries=config.bimodal_entries * 2)
        with pytest.raises(ValueError, match="bimodal_entries"):
            run_frontend_batch(image, [other], plan)

    def test_obs_requires_a_batch_of_one(self):
        from repro.obs import IntervalMetrics, ObsBus, RingBufferSink

        image, stream, traces, config = self._materials()
        plan = self._build(image, stream, traces, config)
        bus = ObsBus(RingBufferSink(), IntervalMetrics())
        with pytest.raises(ValueError, match="batch of exactly one"):
            run_frontend_batch(image, [config, config], plan, obs=bus)


# ----------------------------------------------------------------------
# Kernel equivalence: stats and cache end states, every mechanism
# ----------------------------------------------------------------------
class TestKernelEquivalence:
    @pytest.mark.parametrize("mechanism", ["preconstruction", "mana",
                                           "nextline", "pmap"])
    def test_every_mechanism_is_bit_identical(self, mechanism):
        spec = ExperimentSpec(benchmark="compress", tc_entries=64,
                              pb_entries=64, mechanism=mechanism,
                              instructions=BUDGET)
        _assert_equivalent(*_legs(spec))

    @pytest.mark.parametrize("spec", [
        ExperimentSpec(benchmark="compress", tc_entries=32, pb_entries=0,
                       instructions=BUDGET),
        ExperimentSpec(benchmark="gcc", tc_entries=256, pb_entries=128,
                       instructions=BUDGET),
        ExperimentSpec(benchmark="go", tc_entries=128, pb_entries=64,
                       static_seed=True, instructions=BUDGET),
    ], ids=lambda spec: spec.label)
    def test_sizing_sweep_points_are_bit_identical(self, spec):
        _assert_equivalent(*_legs(spec))

    def test_batch_of_many_equals_scalar_one_by_one(self):
        # The actual batching win: many points, one plan, one pass —
        # each point still bit-identical to its lone scalar run.
        stream_cache = StreamCache(BUDGET)
        image = stream_cache.image("compress", None)
        specs = [ExperimentSpec(benchmark="compress", tc_entries=tc,
                                pb_entries=pb, instructions=BUDGET)
                 for tc in (32, 128, 256) for pb in (0, 64)]
        configs = [spec.frontend_config() for spec in specs]
        plan = stream_cache.plan("compress", BUDGET, configs[0], None)
        batched = run_frontend_batch(image, configs, plan)
        traces = stream_cache.traces("compress", BUDGET,
                                     configs[0].selection, None)
        for config, vector in zip(configs, batched):
            scalar = run_frontend(image, config, BUDGET, traces=traces)
            _assert_equivalent(scalar, vector)


# ----------------------------------------------------------------------
# Runner-level differential: run_point / ExperimentRunner / caching
# ----------------------------------------------------------------------
class TestRunnerDifferential:
    def test_run_point_metrics_identical(self):
        scalar = run_point(SPEC)
        vector = run_point(SPEC.replace(simulator="vectorized"))
        assert scalar.metrics == vector.metrics

    def test_check_verdicts_identical(self):
        spec = ExperimentSpec(benchmark="fuzz-3", kind="check",
                              tc_entries=64, pb_entries=64,
                              instructions=3_000)
        scalar = run_point(spec)
        vector = run_point(spec.replace(simulator="vectorized"))
        assert scalar.metrics == vector.metrics
        assert scalar.metrics["violations"] == 0

    def test_parallel_vectorized_sweep_matches_serial_scalar(self):
        specs = [ExperimentSpec(benchmark="compress", tc_entries=tc,
                                instructions=3_000)
                 for tc in (32, 64, 128, 256)]
        scalar = ExperimentRunner(jobs=1).run(specs)
        vector = ExperimentRunner(jobs=2).run(
            [spec.replace(simulator="vectorized") for spec in specs])
        for a, b in zip(scalar, vector):
            assert a.metrics == b.metrics

    @pytest.mark.parametrize("first,second", [("scalar", "vectorized"),
                                              ("vectorized", "scalar")])
    def test_cross_kernel_cache_hits_both_ways(self, tmp_path, first,
                                               second):
        # One digest, one entry: a point computed under either kernel
        # serves the other from cache, re-labelled to the requesting
        # spec so the caller sees its own simulator choice.
        cache = ResultCache(tmp_path)
        spec = ExperimentSpec(benchmark="compress", tc_entries=64,
                              instructions=3_000)
        cold = run_point(spec.replace(simulator=first), cache=cache)
        warm = run_point(spec.replace(simulator=second), cache=cache)
        assert not cold.cached
        assert warm.cached
        assert warm.spec.simulator == second
        assert warm.metrics == cold.metrics


# ----------------------------------------------------------------------
# Observed runs: event streams, interval metrics, golden file
# ----------------------------------------------------------------------
class TestObservedDifferential:
    def test_event_streams_are_identical(self):
        scalar = run_observed(SPEC)
        vector = run_observed(SPEC.replace(simulator="vectorized"))
        assert scalar.events == vector.events
        assert scalar.stats.summary() == vector.stats.summary()

    def test_vectorized_metrics_match_golden_file(self, tmp_path):
        # The same pinned golden the scalar kernel is held to
        # (tests/test_obs.py) — byte-for-byte.
        golden = GOLDEN_DIR / "metrics_compress_tc256_pb256_i6000.jsonl"
        observed = run_observed(SPEC.replace(simulator="vectorized"))
        produced = observed.write_metrics(tmp_path / "metrics.jsonl")
        assert produced.read_bytes() == golden.read_bytes()

    def test_manifests_are_kernel_blind(self):
        scalar = build_manifest(SPEC, include_host=False)
        vector = build_manifest(SPEC.replace(simulator="vectorized"),
                                include_host=False)
        assert scalar == vector


# ----------------------------------------------------------------------
# CLI: exhibit stdout under --simulator
# ----------------------------------------------------------------------
class TestCLIDifferential:
    def _stdout(self, capsys, argv):
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_figure5_stdout_identical(self, capsys):
        base = ["--no-cache", "--instructions", "3000",
                "figure5", "--benchmarks", "compress"]
        scalar = self._stdout(capsys, base)
        vector = self._stdout(capsys, base + ["--simulator", "vectorized"])
        assert scalar == vector
        assert "compress" in scalar

    def test_all_stdout_identical_including_parallel(self, capsys):
        # "all" mixes frontend, processor and dynamic points —
        # --simulator must apply to the batchable kinds and leave the
        # rest scalar, with stdout unchanged either way.
        base = ["--no-cache", "--instructions", "2000",
                "all", "--benchmarks", "compress"]
        scalar = self._stdout(capsys, base)
        vector = self._stdout(capsys, base + ["--simulator", "vectorized"])
        parallel = self._stdout(
            capsys, ["--no-cache", "--instructions", "2000",
                     "all", "--benchmarks", "compress", "--jobs", "2",
                     "--simulator", "vectorized"])
        assert scalar == vector
        assert vector == parallel

    def test_compare_stdout_identical(self, capsys):
        base = ["--no-cache", "--instructions", "3000",
                "compare", "--benchmarks", "compress",
                "--mechanisms", "preconstruction,mana", "--pb", "64"]
        scalar = self._stdout(capsys, base)
        vector = self._stdout(capsys, base + ["--simulator", "vectorized"])
        assert scalar == vector
