"""Detailed frontend-policy tests: prediction gating, penalties, pacing."""

import pytest

from repro.engine import FunctionalEngine
from repro.isa import assemble
from repro.program import ProgramImage
from repro.sim import FrontendConfig, FrontendSimulation
from repro.trace import TraceCacheConfig

# A two-phase loop nest that exercises prediction + trace reuse.
SOURCE = """
main:
    addi r9, r0, 40
outer:
    addi r1, r0, 0
inner:
    addi r1, r1, 1
    addi r2, r1, 3
    addi r3, r2, 1
    blt  r1, r9, inner
    addi r9, r9, -1
    bne  r9, r0, outer
    halt
"""


@pytest.fixture(scope="module")
def stream():
    insts, labels = assemble(SOURCE, base=0x1000)
    image = ProgramImage(instructions=insts, code_base=0x1000, entry=0x1000,
                        labels=labels)
    return image, FunctionalEngine(image).run(6000)


def _run(stream_fixture, **kwargs):
    image, stream = stream_fixture
    config = FrontendConfig(trace_cache=TraceCacheConfig(entries=64),
                            **kwargs)
    return FrontendSimulation(image, config).run(stream).stats


class TestPredictionGating:
    def test_first_trace_has_no_prediction(self, stream):
        stats = _run(stream)
        assert stats.ntp_none >= 1

    def test_hot_loop_converges_to_hits(self, stream):
        stats = _run(stream)
        # A tight loop nest: overwhelmingly trace-cache supplied.
        assert stats.trace_hit_fraction > 0.9
        assert stats.ntp_accuracy > 0.7


class TestCycleAccounting:
    def test_mispredict_penalty_visible_in_cycles(self, stream):
        cheap = _run(stream, trace_mispredict_penalty=1)
        dear = _run(stream, trace_mispredict_penalty=40)
        assert dear.cycles > cheap.cycles
        # Frontend path counts identical; only the penalty differs.
        assert dear.trace_misses == cheap.trace_misses

    def test_retire_ipc_paces_cycles(self, stream):
        slow = _run(stream, retire_ipc=1.0)
        fast = _run(stream, retire_ipc=8.0)
        assert slow.cycles > fast.cycles

    def test_fetch_width_matters_on_slow_path(self, stream):
        narrow = _run(stream, fetch_width=1)
        wide = _run(stream, fetch_width=16)
        assert narrow.cycles >= wide.cycles

    def test_fetch_ipc_bounded(self, stream):
        stats = _run(stream)
        assert 0 < stats.fetch_ipc <= 16
