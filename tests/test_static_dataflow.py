"""Unit tests for the generic dataflow engine and its analyses.

Small hand-assembled programs with facts worked out by hand: the
engine's direction semantics, each analysis' transfer functions, the
interprocedural summaries, trip-count bounds, and the dataflow-driven
jump-table resolver (differentially checked against the pattern
matcher it subsumes).
"""

import pytest

from repro.isa import INSTRUCTION_BYTES, assemble
from repro.program import ProgramImage
from repro.static import (
    ALL_REGS_MASK,
    ENTRY_DEF,
    TOP,
    ConstantRangeAnalysis,
    Direction,
    Interval,
    LivenessAnalysis,
    ReachingDefsAnalysis,
    StaticFacts,
    build_flow_graph,
    resolve_table_via_dataflow,
    solve,
)
from repro.static.recovery import resolve_indirect_table
from repro.workloads import generate, profile_for

BASE = 0x1000


def _facts(source: str, procs: list[str]) -> StaticFacts:
    insts, labels = assemble(source, base=BASE)
    image = ProgramImage(instructions=insts, code_base=BASE,
                         entry=BASE, labels={p: labels[p] for p in procs})
    return StaticFacts(image)


def _proc(facts: StaticFacts, name: str):
    return facts.cfg.procedure(name)


STRAIGHT = """
main:
    addi r1, r0, 5
    addi r2, r1, 3
    add  r3, r1, r2
    halt
"""


class TestEngine:
    def test_flow_graph_is_sorted_and_rpo_starts_at_entry(self):
        facts = _facts(STRAIGHT, ["main"])
        graph = build_flow_graph(facts.cfg, _proc(facts, "main"))
        assert list(graph.nodes) == sorted(graph.nodes)
        assert graph.rpo[0] == graph.entry == BASE

    def test_forward_rows_carry_fact_before_each_instruction(self):
        facts = _facts(STRAIGHT, ["main"])
        proc = _proc(facts, "main")
        result = facts.reaching(proc)
        assert result.analysis.direction is Direction.FORWARD
        rows = result.instruction_facts(facts.cfg, proc.start)
        # At the first instruction nothing has been defined yet.
        pc0, _, fact0 = rows[0]
        assert pc0 == BASE
        assert fact0.get(1) == frozenset({ENTRY_DEF})
        # At the second instruction r1's definition has landed.
        _, _, fact1 = rows[1]
        assert fact1.get(1) == frozenset({BASE})

    def test_backward_rows_carry_fact_after_each_instruction(self):
        facts = _facts(STRAIGHT, ["main"])
        proc = _proc(facts, "main")
        result = facts.liveness(proc)
        assert result.analysis.direction is Direction.BACKWARD
        rows = {pc: fact for pc, _, fact
                in result.instruction_facts(facts.cfg, proc.start)}
        # After ``addi r1, r0, 5`` the value is still awaited by the
        # two readers below, so r1 must be live in the fact *after* it.
        assert (rows[BASE] >> 1) & 1
        # After the last reader redefines nothing, r1 stays live only
        # because the exit boundary is all-live; the intra-procedural
        # variant kills it.
        local = facts.liveness_local(proc)
        local_rows = {pc: fact for pc, _, fact
                      in local.instruction_facts(facts.cfg, proc.start)}
        assert not (local_rows[BASE + 2 * INSTRUCTION_BYTES] >> 1) & 1

    def test_fixpoint_converges_and_is_reproducible(self):
        source = """
        main:
            addi r1, r0, 0
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """
        for analysis_cls in (LivenessAnalysis, ReachingDefsAnalysis,
                             ConstantRangeAnalysis):
            runs = []
            for _ in range(2):
                facts = _facts(source, ["main"])
                proc = _proc(facts, "main")
                analysis = analysis_cls(facts.cfg.image,
                                        facts.summaries.call_effects)
                result = solve(analysis, facts.cfg,
                               graph=facts.flow_graph(proc))
                assert result.converged
                runs.append((result.in_facts, result.out_facts))
            assert runs[0] == runs[1]


class TestLiveness:
    def test_exit_boundary_variants(self):
        facts = _facts(STRAIGHT, ["main"])
        proc = _proc(facts, "main")
        assert facts.liveness(proc).out_facts[proc.start] == ALL_REGS_MASK
        assert facts.liveness_local(proc).out_facts[proc.start] == 0

    def test_branch_operands_are_live_in(self):
        facts = _facts("""
        main:
            beq r5, r6, out
            addi r1, r0, 1
        out:
            halt
        """, ["main"])
        proc = _proc(facts, "main")
        live_in = facts.liveness(proc).in_facts[proc.start]
        assert (live_in >> 5) & 1 and (live_in >> 6) & 1


class TestReachingDefs:
    def test_redefinition_kills_earlier_def(self):
        facts = _facts("""
        main:
            addi r1, r0, 1
            addi r1, r0, 2
            add  r2, r1, r1
            halt
        """, ["main"])
        proc = _proc(facts, "main")
        rows = facts.reaching(proc).instruction_facts(facts.cfg,
                                                      proc.start)
        _, _, at_use = rows[2]
        assert at_use.get(1) == frozenset({BASE + INSTRUCTION_BYTES})

    def test_join_unions_defs_from_both_arms(self):
        facts = _facts("""
        main:
            beq r9, r0, other
            addi r1, r0, 1
            j out
        other:
            addi r1, r0, 2
        out:
            halt
        """, ["main"])
        proc = _proc(facts, "main")
        # The join block (the one holding ``halt``) is the last block;
        # both arms' definitions of r1 must reach it.
        halt_start = max(facts.reaching(proc).in_facts)
        fact = facts.reaching(proc).in_facts[halt_start]
        assert len(fact.get(1, frozenset())) == 2


class TestConstantRange:
    def test_straight_line_intervals_are_exact(self):
        facts = _facts(STRAIGHT, ["main"])
        proc = _proc(facts, "main")
        out = facts.constants(proc).out_facts[proc.start]
        assert out[1] == Interval(5, 5)
        assert out[2] == Interval(8, 8)
        assert out[3] == Interval(13, 13)

    def test_loop_counter_widens_to_top_but_converges(self):
        facts = _facts("""
        main:
            addi r1, r0, 0
        loop:
            addi r1, r1, 1
            beq r9, r0, loop
            halt
        """, ["main"])
        proc = _proc(facts, "main")
        result = facts.constants(proc)
        assert result.converged
        header = next(b for b in result.in_facts
                      if b != proc.start)
        fact = result.in_facts[header]
        assert fact.get(1, TOP) is TOP


class TestSPDelta:
    def test_balanced_and_unbalanced_deltas(self):
        facts = _facts("""
        main:
            jal f
            jal g
            halt
        f:
            addi sp, sp, -16
            addi sp, sp, 16
            jr ra
        g:
            addi sp, sp, -8
            jr ra
        """, ["main", "f", "g"])
        f, g = _proc(facts, "f"), _proc(facts, "g")
        assert facts.sp_delta(f).out_facts[f.start] == 0
        assert facts.sp_delta(g).out_facts[g.start] == -8
        assert facts.summaries["f"].sp_balanced
        assert not facts.summaries["g"].sp_balanced


class TestSummaries:
    SOURCE = """
    main:
        addi r2, r0, 1
        jal outer
        halt
    outer:
        addi r4, r0, 2
        jal inner
        jr ra
    inner:
        add r5, r6, r6
        jr ra
    """

    def test_clobbers_propagate_transitively(self):
        facts = _facts(self.SOURCE, ["main", "outer", "inner"])
        outer = facts.summaries["outer"]
        # outer writes r4 itself and r5 transitively via inner; the
        # implicit RA write of ``jal`` is handled at call sites, not
        # carried in the summary mask.
        assert (outer.clobbered >> 4) & 1
        assert (outer.clobbered >> 5) & 1
        assert not (outer.clobbered >> 2) & 1

    def test_used_is_upward_exposed_not_may_read(self):
        facts = _facts(self.SOURCE, ["main", "outer", "inner"])
        inner = facts.summaries["inner"]
        assert (inner.used >> 6) & 1       # reads caller's r6
        outer = facts.summaries["outer"]
        assert (outer.used >> 6) & 1       # exposed through the call
        # r4 is defined locally before any use: not upward-exposed.
        assert not (outer.used >> 4) & 1


class TestTripBounds:
    def test_counted_loop_bounds_are_exact(self):
        facts = _facts("""
        main:
            addi r1, r0, 0
            addi r2, r0, 5
        loop:
            addi r1, r1, 1
            blt r1, r2, loop
            halt
        """, ["main"])
        proc = _proc(facts, "main")
        bounds = facts.trip_bounds(proc)
        assert len(bounds) == 1
        (bound,) = bounds.values()
        assert (bound.lo, bound.hi) == (5, 5)
        assert not bound.is_degenerate

    def test_non_canonical_loop_left_unbounded(self):
        facts = _facts("""
        main:
            addi r1, r0, 0
        loop:
            addi r1, r1, 1
            beq r9, r0, loop
            halt
        """, ["main"])
        assert facts.trip_bounds(_proc(facts, "main")) == {}


class TestTableResolution:
    @pytest.mark.parametrize("name", ["perl", "gcc", "fuzz-7", "fuzz-11"])
    def test_dataflow_resolver_matches_pattern_matcher(self, name):
        """The dataflow-driven resolver must agree with the ad-hoc
        backward pattern matcher it subsumes on every indirect site
        the matcher can resolve."""
        image = generate(profile_for(name)).image
        facts = StaticFacts(image)
        cfg = facts.cfg
        checked = 0
        for proc in facts.live_procedures():
            for start in sorted(cfg.reachable_blocks(proc)):
                block = cfg.blocks[start]
                pc = block.end - INSTRUCTION_BYTES
                inst = image.try_fetch(pc)
                if inst is None or not inst.is_indirect \
                        or inst.is_return:
                    continue
                pattern = resolve_indirect_table(image, pc,
                                                 cfg.reloc_targets)
                dataflow = resolve_table_via_dataflow(facts, proc, pc)
                if pattern is not None and dataflow is not None:
                    assert sorted(set(pattern)) == sorted(set(dataflow))
                    checked += 1
        assert checked > 0, f"no resolvable indirect sites in {name}"


class TestStaticFacts:
    def test_results_are_memoised(self):
        facts = _facts(STRAIGHT, ["main"])
        proc = _proc(facts, "main")
        assert facts.liveness(proc) is facts.liveness(proc)
        assert facts.reaching(proc) is facts.reaching(proc)
        assert facts.constants(proc) is facts.constants(proc)
        assert facts.cfg is facts.cfg

    def test_live_procedures_in_address_order(self):
        facts = _facts(TestSummaries.SOURCE, ["main", "outer", "inner"])
        names = [p.name for p in facts.live_procedures()]
        assert names == ["main", "outer", "inner"]
