"""The documented `repro.api` surface stays in lockstep with reality."""

import re
from pathlib import Path

from repro import api

README = Path(__file__).parent.parent / "README.md"


def documented_surface() -> list[str]:
    text = README.read_text()
    match = re.search(r"<!-- api-surface-begin -->(.*?)<!-- api-surface-end -->",
                      text, re.DOTALL)
    assert match, "README.md is missing the api-surface marker block"
    return re.findall(r"`([A-Za-z_][A-Za-z0-9_]*)`", match.group(1))


class TestSurface:
    def test_all_is_sorted(self):
        assert list(api.__all__) == sorted(api.__all__)

    def test_all_names_resolve(self):
        for name in api.__all__:
            assert hasattr(api, name), name

    def test_readme_matches_all(self):
        documented = documented_surface()
        assert documented == list(api.__all__), (
            "README's api-surface block is out of sync with "
            "repro.api.__all__; update the block between the "
            "api-surface-begin/end markers")

    def test_new_zoo_names_exported(self):
        for name in ("FrontendMechanism", "MechanismContext",
                     "register_mechanism", "mechanism_names",
                     "create_mechanism", "compare_specs", "compare_sweep",
                     "compare_from_results", "format_compare",
                     "rows_to_dicts", "CompareRow", "COMPARE_PB_SIZES"):
            assert name in api.__all__, name

    def test_telemetry_names_exported(self):
        for name in ("Telemetry", "SpanTracer", "MetricsRegistry",
                     "enable_telemetry", "disable_telemetry",
                     "telemetry_session", "current_telemetry", "span",
                     "format_span_tree", "merged_perfetto_trace",
                     "validate_merged_trace", "write_merged_perfetto",
                     "hotspot_rows", "append_trajectory",
                     "read_trajectory", "trajectory_reference"):
            assert name in api.__all__, name

    def test_vector_names_exported(self):
        for name in ("SIMULATOR_KINDS", "DecodedImage", "BatchPlan",
                     "PlanMismatchError", "build_plan",
                     "run_frontend_batch"):
            assert name in api.__all__, name


class TestSimulatorDocs:
    """DESIGN.md §17 and the README kernel section stay in lockstep
    with the shipped `SIMULATOR_KINDS`."""

    DESIGN = Path(__file__).parent.parent / "DESIGN.md"

    def test_readme_documents_kernel_choice(self):
        text = README.read_text()
        assert "### Choosing a simulator kernel" in text
        for kind in api.SIMULATOR_KINDS:
            assert f"`{kind}`" in text, kind
        assert "tests/test_vector.py" in text

    def test_design_documents_the_kernel(self):
        text = self.DESIGN.read_text()
        assert "## 17. The batched struct-of-arrays kernel" in text
        assert '("scalar", "vectorized")' in text
        assert "excluded from the spec digest" in text
