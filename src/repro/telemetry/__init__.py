"""Host-domain observability: wall-clock spans, metrics, profiles.

The mirror image of :mod:`repro.obs`: where ``obs`` makes the
*simulated machine* observable in the cycle domain, ``telemetry``
makes the *harness that runs it* observable in the wall-clock domain —
the process-pool scheduler, the content-addressed result cache,
workload generation, and every CLI command.

Pieces:

* :mod:`repro.telemetry.spans` — zero-dependency span tracer with
  thread and process propagation (span-context handoff across the
  ``ProcessPoolExecutor`` boundary);
* :mod:`repro.telemetry.registry` — counters/gauges/histograms with
  fixed bucket boundaries, exported as OpenMetrics text and canonical
  sorted-keys JSON;
* :mod:`repro.telemetry.session` — the process-wide on/off switch and
  the ``if self.tele:`` guard discipline (off-cost by default;
  ``repro all`` output is byte-identical either way);
* :mod:`repro.telemetry.perfetto` — merged host+sim Perfetto export
  (host tracks keyed by pid/tid, sim tracks by cycle, one file);
* :mod:`repro.telemetry.profile` — optional per-point ``cProfile``
  capture behind ``repro --profile`` / ``profile_dir=``.
"""

from repro.telemetry.perfetto import (
    HOST_PID_BASE,
    host_perfetto_events,
    merged_perfetto_trace,
    validate_merged_trace,
    write_merged_perfetto,
)
from repro.telemetry.profile import (
    DEFAULT_TOP,
    format_hotspots,
    hotspot_rows,
    profile_call,
)
from repro.telemetry.registry import (
    DEFAULT_SECONDS_BUCKETS,
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metrics,
)
from repro.telemetry.session import (
    LAST_TELEMETRY_FILE,
    TELEMETRY_SCHEMA,
    Telemetry,
    activate_worker,
    current_telemetry,
    disable_telemetry,
    enable_telemetry,
    format_telemetry,
    load_telemetry,
    span,
    telemetry_session,
    utc_timestamp,
    write_telemetry,
)
from repro.telemetry.spans import SPAN_SCHEMA, SpanTracer, format_span_tree

__all__ = [
    "Counter",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_TOP",
    "Gauge",
    "HOST_PID_BASE",
    "Histogram",
    "LAST_TELEMETRY_FILE",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "SPAN_SCHEMA",
    "SpanTracer",
    "TELEMETRY_SCHEMA",
    "Telemetry",
    "activate_worker",
    "current_telemetry",
    "disable_telemetry",
    "enable_telemetry",
    "format_hotspots",
    "format_metrics",
    "format_span_tree",
    "format_telemetry",
    "host_perfetto_events",
    "hotspot_rows",
    "load_telemetry",
    "merged_perfetto_trace",
    "profile_call",
    "span",
    "telemetry_session",
    "utc_timestamp",
    "validate_merged_trace",
    "write_merged_perfetto",
]
