"""Process-wide metrics registry: counters, gauges, histograms.

The host-domain counterpart of :mod:`repro.obs.metrics`.  Where the
cycle-domain collector buckets by simulated interval, this registry
accumulates over a process's lifetime and exports two deterministic
forms: OpenMetrics text (:meth:`MetricsRegistry.to_openmetrics`) and
canonical sorted-keys JSON (:meth:`MetricsRegistry.to_json`).

Determinism rules, matching the rest of the repo's artifact policy:

* histogram bucket boundaries are fixed at metric-creation time (the
  default :data:`DEFAULT_SECONDS_BUCKETS` never changes shape between
  runs), so two runs of the same workload expose identical series;
* families sort by name, samples by label items, labels by key — the
  byte output depends only on what was recorded, not on call order;
* worker registries merge additively into the parent's
  (:meth:`MetricsRegistry.merge`), mirroring how the scheduler folds
  worker results back in spec order.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping, Optional, Union

#: Bump when the exported JSON layout changes incompatibly.
METRICS_SCHEMA = 1

#: Fixed wall-clock histogram boundaries (seconds).  Chosen to span
#: cache probes (~1ms) through full-benchmark sweeps (~minutes).
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(key), str(value))
                        for key, value in labels.items()))


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(items: LabelItems,
                   extra: Optional[tuple[str, str]] = None) -> str:
    pairs = list(items)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{_escape(value)}"' for key, value in pairs)
    return "{" + body + "}"


def _render_value(value: Union[int, float]) -> str:
    if isinstance(value, int):
        return str(value)
    if float(value).is_integer():
        return str(int(value))
    return repr(value)


class Counter:
    """Monotonically increasing count (int or float)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def add(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """Point-in-time value (set or adjusted)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def add(self, amount: Union[int, float] = 1) -> None:
        self.value += amount


class Histogram:
    """Fixed-boundary histogram (last implicit bucket is ``+Inf``)."""

    __slots__ = ("boundaries", "bucket_counts", "total", "count")

    def __init__(self, boundaries: Iterable[float] =
                 DEFAULT_SECONDS_BUCKETS) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                "histogram boundaries must be strictly increasing")
        self.boundaries = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: Union[int, float]) -> None:
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.total += float(value)
        self.count += 1

    def merge_counts(self, bucket_counts: Iterable[int],
                     total: float, count: int) -> None:
        counts = list(bucket_counts)
        if len(counts) != len(self.bucket_counts):
            raise ValueError("histogram boundary mismatch on merge")
        for index, extra in enumerate(counts):
            self.bucket_counts[index] += int(extra)
        self.total += float(total)
        self.count += int(count)


Metric = Union[Counter, Gauge, Histogram]


class _Family:
    """One named metric family: a kind plus its labelled children."""

    __slots__ = ("name", "kind", "help", "boundaries", "children")

    def __init__(self, name: str, kind: str, help_text: str,
                 boundaries: Optional[tuple[float, ...]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.boundaries = boundaries
        self.children: dict[LabelItems, Metric] = {}

    def child(self, key: LabelItems) -> Metric:
        metric = self.children.get(key)
        if metric is None:
            if self.kind == "counter":
                metric = Counter()
            elif self.kind == "gauge":
                metric = Gauge()
            else:
                metric = Histogram(self.boundaries
                                   or DEFAULT_SECONDS_BUCKETS)
            self.children[key] = metric
        return metric


class MetricsRegistry:
    """Create-on-first-use registry of named metric families."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    def _family(self, name: str, kind: str, help_text: str,
                boundaries: Optional[tuple[float, ...]] = None) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, boundaries)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind}, not {kind}")
            return family

    def counter(self, name: str,
                labels: Optional[Mapping[str, str]] = None, *,
                help: str = "") -> Counter:
        family = self._family(name, "counter", help)
        with self._lock:
            metric = family.child(_label_key(labels))
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str,
              labels: Optional[Mapping[str, str]] = None, *,
              help: str = "") -> Gauge:
        family = self._family(name, "gauge", help)
        with self._lock:
            metric = family.child(_label_key(labels))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str,
                  labels: Optional[Mapping[str, str]] = None, *,
                  boundaries: Iterable[float] = DEFAULT_SECONDS_BUCKETS,
                  help: str = "") -> Histogram:
        family = self._family(name, "histogram", help,
                              tuple(float(b) for b in boundaries))
        with self._lock:
            metric = family.child(_label_key(labels))
        assert isinstance(metric, Histogram)
        return metric

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-ready payload (families and samples sorted)."""
        metrics: list[dict[str, Any]] = []
        for name in sorted(self._families):
            family = self._families[name]
            samples: list[dict[str, Any]] = []
            for key in sorted(family.children):
                metric = family.children[key]
                sample: dict[str, Any] = {"labels": dict(key)}
                if isinstance(metric, Histogram):
                    sample["buckets"] = list(metric.bucket_counts)
                    sample["sum"] = round(metric.total, 9)
                    sample["count"] = metric.count
                else:
                    sample["value"] = metric.value
                samples.append(sample)
            entry: dict[str, Any] = {"name": family.name,
                                     "type": family.kind,
                                     "help": family.help,
                                     "samples": samples}
            if family.kind == "histogram":
                entry["boundaries"] = list(family.boundaries
                                           or DEFAULT_SECONDS_BUCKETS)
            metrics.append(entry)
        return {"schema": METRICS_SCHEMA, "metrics": metrics}

    def to_json(self) -> str:
        """Canonical sorted-keys JSON text."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def to_openmetrics(self) -> str:
        """OpenMetrics text exposition (deterministic byte output)."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {family.name} "
                             f"{_escape(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key in sorted(family.children):
                metric = family.children[key]
                if isinstance(metric, Histogram):
                    cumulative = 0
                    for bound, bucket in zip(metric.boundaries,
                                             metric.bucket_counts):
                        cumulative += bucket
                        labels = _render_labels(
                            key, ("le", _render_value(bound)))
                        lines.append(f"{family.name}_bucket{labels} "
                                     f"{cumulative}")
                    labels = _render_labels(key, ("le", "+Inf"))
                    lines.append(f"{family.name}_bucket{labels} "
                                 f"{metric.count}")
                    base = _render_labels(key)
                    lines.append(f"{family.name}_sum{base} "
                                 f"{_render_value(round(metric.total, 9))}")
                    lines.append(f"{family.name}_count{base} "
                                 f"{metric.count}")
                else:
                    suffix = "_total" if family.kind == "counter" else ""
                    labels = _render_labels(key)
                    lines.append(f"{family.name}{suffix}{labels} "
                                 f"{_render_value(metric.value)}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    def merge(self, dump: Mapping[str, Any]) -> None:
        """Fold a :meth:`to_dict` payload (a worker's registry) in.

        Counters and histograms add; gauges take the incoming value
        (last writer wins, matching completion order).
        """
        for entry in dump.get("metrics", []):
            name = str(entry["name"])
            kind = str(entry["type"])
            help_text = str(entry.get("help", ""))
            for sample in entry.get("samples", []):
                labels = {str(k): str(v)
                          for k, v in (sample.get("labels") or {}).items()}
                if kind == "counter":
                    self.counter(name, labels,
                                 help=help_text).add(sample["value"])
                elif kind == "gauge":
                    self.gauge(name, labels,
                               help=help_text).set(sample["value"])
                elif kind == "histogram":
                    boundaries = tuple(
                        float(b) for b in
                        entry.get("boundaries", DEFAULT_SECONDS_BUCKETS))
                    histogram = self.histogram(name, labels,
                                               boundaries=boundaries,
                                               help=help_text)
                    histogram.merge_counts(sample["buckets"],
                                           sample["sum"],
                                           sample["count"])
                else:
                    raise ValueError(f"unknown metric type {kind!r}")

    @classmethod
    def from_dict(cls, dump: Mapping[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(dump)
        return registry


def format_metrics(dump: Mapping[str, Any]) -> str:
    """One-line-per-sample plain-text rendering of a registry dump."""
    lines: list[str] = []
    for entry in dump.get("metrics", []):
        name = entry["name"]
        for sample in entry.get("samples", []):
            labels = _render_labels(_label_key(sample.get("labels")))
            if entry["type"] == "histogram":
                lines.append(f"{name}{labels} count={sample['count']} "
                             f"sum={sample['sum']}")
            else:
                lines.append(f"{name}{labels} = "
                             f"{_render_value(sample['value'])}")
    return "\n".join(lines)
