"""Merged host+sim Perfetto export.

One ``trace.json`` carrying *both* time domains on separate track
groups, so a slow sweep point on the host timeline can be visually
correlated with what the simulated frontend was doing:

* **host tracks** — one process group per OS pid that produced spans
  (``host:main`` for the scheduler process, ``host:worker-<pid>`` for
  pool workers), one thread track per OS thread, complete (``X``)
  events in wall-clock microseconds rebased to the earliest span;
* **sim tracks** — the cycle-domain payload from
  :func:`repro.obs.perfetto.perfetto_trace`, its process names
  prefixed ``sim:`` (1 cycle = 1 us, same units either way).

Host pids are remapped to :data:`HOST_PID_BASE` + index so they can
never collide with the sim's fixed pids 1-3; OS thread idents are
remapped to small per-process ordinals for readable track names.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.perfetto import perfetto_trace, validate_chrome_trace

#: First pid used for host-domain track groups (sim uses 1-3).
HOST_PID_BASE = 100


def host_perfetto_events(
        spans: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Chrome trace events (metadata + ``X`` slices) for host spans."""
    if not spans:
        return []
    records = sorted((dict(record) for record in spans),
                     key=lambda r: (int(r["start_us"]), int(r["pid"]),
                                    str(r["id"])))
    base_us = min(int(record["start_us"]) for record in records)
    main_pid = int(records[0]["pid"])
    os_pids = sorted({int(record["pid"]) for record in records},
                     key=lambda pid: (pid != main_pid, pid))
    pid_map = {os_pid: HOST_PID_BASE + index
               for index, os_pid in enumerate(os_pids)}
    tid_map: dict[tuple[int, int], int] = {}
    for record in records:
        key = (int(record["pid"]), int(record["tid"]))
        if key not in tid_map:
            tid_map[key] = sum(1 for k in tid_map
                               if k[0] == key[0]) + 1

    events: list[dict[str, Any]] = []
    for os_pid in os_pids:
        name = ("host:main" if os_pid == main_pid
                else f"host:worker-{os_pid}")
        events.append({"ph": "M", "pid": pid_map[os_pid], "tid": 0,
                       "ts": 0, "name": "process_name",
                       "args": {"name": name}})
    for (os_pid, os_tid), tid in sorted(tid_map.items()):
        events.append({"ph": "M", "pid": pid_map[os_pid], "tid": tid,
                       "ts": 0, "name": "thread_name",
                       "args": {"name": f"thread-{tid}"}})
    for record in records:
        events.append({
            "ph": "X", "cat": "host",
            "pid": pid_map[int(record["pid"])],
            "tid": tid_map[(int(record["pid"]), int(record["tid"]))],
            "ts": int(record["start_us"]) - base_us,
            "dur": max(int(record["dur_us"]), 0),
            "name": str(record["name"]),
            "args": dict(record.get("attrs") or {}),
        })
    return events


def merged_perfetto_trace(spans: Sequence[Mapping[str, Any]],
                          sim_events: Iterable[Mapping[str, Any]], *,
                          label: str = "repro") -> dict[str, Any]:
    """One Chrome trace payload holding host spans and sim events."""
    sim = perfetto_trace(sim_events, label=label)
    sim_trace_events: list[dict[str, Any]] = []
    for event in sim["traceEvents"]:
        event = dict(event)
        if event.get("ph") == "M" and event.get("name") == "process_name":
            args = dict(event.get("args") or {})
            args["name"] = f"sim:{args.get('name')}"
            event["args"] = args
        sim_trace_events.append(event)
    return {
        "displayTimeUnit": "ms",
        "otherData": {"producer": label,
                      "time_unit": "host: us wall clock; "
                                   "sim: 1 cycle = 1 us"},
        "traceEvents": host_perfetto_events(spans) + sim_trace_events,
    }


def write_merged_perfetto(spans: Sequence[Mapping[str, Any]],
                          sim_events: Iterable[Mapping[str, Any]],
                          path: str | Path, *,
                          label: str = "repro") -> Path:
    """Write the merged ``trace.json``; returns the path."""
    target = Path(path)
    payload = merged_perfetto_trace(spans, sim_events, label=label)
    target.write_text(json.dumps(payload, sort_keys=True) + "\n",
                      encoding="utf-8")
    return target


def validate_merged_trace(payload: Mapping[str, Any]) -> list[str]:
    """The PR 4 structural validator, extended to two track domains.

    On top of :func:`~repro.obs.perfetto.validate_chrome_trace`, a
    merged file must carry at least one ``host:``-named process group
    (with every host event's pid at/above :data:`HOST_PID_BASE`) and
    at least one ``sim:``-named process group below it.
    """
    problems = validate_chrome_trace(payload)
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return problems
    host_pids: set[int] = set()
    sim_pids: set[int] = set()
    for event in events:
        if not isinstance(event, dict) or event.get("ph") != "M" \
                or event.get("name") != "process_name":
            continue
        name = str((event.get("args") or {}).get("name", ""))
        pid = event.get("pid")
        if not isinstance(pid, int):
            continue
        if name.startswith("host:"):
            host_pids.add(pid)
            if pid < HOST_PID_BASE:
                problems.append(f"host process {name!r} has pid {pid} "
                                f"below HOST_PID_BASE")
        elif name.startswith("sim:"):
            sim_pids.add(pid)
            if pid >= HOST_PID_BASE:
                problems.append(f"sim process {name!r} has pid {pid} "
                                f"inside the host pid range")
    if not host_pids:
        problems.append("no host-domain track group (host:* process)")
    if not sim_pids:
        problems.append("no sim-domain track group (sim:* process)")
    if host_pids & sim_pids:
        problems.append(f"pid collision between domains: "
                        f"{sorted(host_pids & sim_pids)}")
    return problems
