"""Zero-dependency wall-clock span tracer.

The host-domain counterpart of :class:`repro.obs.events.ObsBus`: where
the bus stamps *cycles*, the tracer stamps *wall-clock microseconds*,
so the harness that runs the simulator (scheduler, result cache,
workload generation, CLI commands) becomes observable in the same
queryable, plain-dict form as the simulated machine.

Span records are plain dicts with a stable shape — they must survive
pickling across the :class:`~concurrent.futures.ProcessPoolExecutor`
boundary and JSON round-trips::

    {"name": str, "id": "<pid>-<seq>", "parent": "<pid>-<seq>" | None,
     "pid": int, "tid": int, "start_us": int, "dur_us": int,
     "attrs": {str: scalar}}

Nesting is tracked per thread (a :class:`threading.local` stack);
cross-thread and cross-process parentage is explicit: the submitting
side captures :meth:`SpanTracer.current_context` and the worker side
passes it to a fresh tracer, whose root spans then parent under the
submitting span.  Start times use ``time.time_ns()`` (one wall-clock
anchor shared by all processes on the host); durations use
``time.perf_counter_ns()`` so they are monotonic.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Mapping, Optional, Sequence

#: Bump when the span record shape changes incompatibly.
SPAN_SCHEMA = 1

_SCALARS = (str, int, float, bool, type(None))


def _clean_attrs(attrs: Mapping[str, Any]) -> dict[str, Any]:
    """Attrs coerced to JSON-safe scalars (never raises at the span site)."""
    return {key: (value if isinstance(value, _SCALARS) else str(value))
            for key, value in attrs.items()}


# The id sequence is process-global, not per-tracer: a pool worker gets
# a fresh tracer per group task (``activate_worker`` replaces the
# session to avoid double counting), and per-tracer counters would
# restart at 0 each time, so "<pid>-<seq>" ids from different groups in
# the same worker would collide and cross-link span trees.
_seq_lock = threading.Lock()
_seq = 0


def _next_seq() -> int:
    global _seq
    with _seq_lock:
        _seq += 1
        return _seq


class SpanTracer:
    """Collects finished spans for one process.

    ``context`` — a :meth:`current_context` payload from another
    thread or process — makes this tracer's root spans children of the
    context's active span, stitching worker timelines under the
    submitting batch span.
    """

    def __init__(self,
                 context: Optional[Mapping[str, Any]] = None) -> None:
        self.pid = os.getpid()
        self.finished: list[dict[str, Any]] = []
        self._local = threading.local()
        parent = context.get("span") if context else None
        self._root_parent: Optional[str] = (str(parent) if parent
                                            else None)

    # ------------------------------------------------------------------
    def _stack(self) -> list[str]:
        stack: Optional[list[str]] = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_context(self) -> dict[str, Any]:
        """Handoff payload for another thread or process.

        Whatever side receives it (``SpanTracer(context=...)`` or
        ``span(..., context=...)``) parents under this thread's
        innermost open span.
        """
        stack = self._stack()
        active = stack[-1] if stack else self._root_parent
        return {"schema": SPAN_SCHEMA, "span": active, "pid": self.pid}

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, *,
             context: Optional[Mapping[str, Any]] = None,
             **attrs: Any) -> Iterator[dict[str, Any]]:
        """Open a span; yields the live record (mutate ``attrs`` freely).

        Parentage: an explicit ``context`` wins (cross-thread /
        cross-process), else the innermost open span on this thread,
        else the tracer's root parent.
        """
        span_id = f"{self.pid}-{_next_seq()}"
        stack = self._stack()
        if context is not None:
            raw_parent = context.get("span")
            parent = str(raw_parent) if raw_parent else None
        elif stack:
            parent = stack[-1]
        else:
            parent = self._root_parent
        record: dict[str, Any] = {
            "name": name,
            "id": span_id,
            "parent": parent,
            "pid": self.pid,
            "tid": threading.get_ident(),
            "start_us": time.time_ns() // 1_000,
            "dur_us": 0,
            "attrs": _clean_attrs(attrs),
        }
        started = time.perf_counter_ns()
        stack.append(span_id)
        try:
            yield record
        finally:
            stack.pop()
            record["dur_us"] = max(
                (time.perf_counter_ns() - started) // 1_000, 0)
            record["attrs"] = _clean_attrs(record["attrs"])
            self.finished.append(record)

    # ------------------------------------------------------------------
    def adopt(self, spans: Iterable[Mapping[str, Any]]) -> int:
        """Fold spans harvested from another tracer (a pool worker)
        into this one; returns the number adopted."""
        adopted = 0
        for record in spans:
            self.finished.append(dict(record))
            adopted += 1
        return adopted

    def spans(self) -> list[dict[str, Any]]:
        """Start-ordered copies of every finished span."""
        return sorted((dict(record) for record in self.finished),
                      key=lambda r: (int(r["start_us"]), int(r["pid"]),
                                     str(r["id"])))


# ----------------------------------------------------------------------
# Rendering (``repro telemetry``)
# ----------------------------------------------------------------------
def format_span_tree(spans: Sequence[Mapping[str, Any]], *,
                     collapse_after: int = 4) -> str:
    """Indented text tree of a span list.

    Sibling *leaf* spans sharing a name collapse to one ``name xN``
    line once the group exceeds ``collapse_after`` — a 160-point sweep
    reads as one line per stage, not 160.  Spans whose parent is not
    in the list (a worker batch viewed alone) render as roots.
    """
    records = [dict(record) for record in spans]
    records.sort(key=lambda r: (int(r["start_us"]), str(r["id"])))
    ids = {str(record["id"]) for record in records}
    children: dict[Optional[str], list[dict[str, Any]]] = {}
    for record in records:
        parent = record.get("parent")
        key = str(parent) if parent is not None and str(parent) in ids \
            else None
        children.setdefault(key, []).append(record)
    lines: list[str] = []

    def emit(parent_key: Optional[str], depth: int) -> None:
        siblings = children.get(parent_key, [])
        groups: dict[str, list[dict[str, Any]]] = {}
        for record in siblings:
            groups.setdefault(str(record["name"]), []).append(record)
        for record in siblings:
            name = str(record["name"])
            group = groups[name]
            has_children = any(str(g["id"]) in children for g in group)
            if len(group) > collapse_after and not has_children:
                if record is group[0]:
                    total = sum(int(g["dur_us"]) for g in group)
                    lines.append(f"{'  ' * depth}{name} x{len(group)}  "
                                 f"{total / 1e6:.3f}s")
                continue
            attrs = record.get("attrs") or {}
            suffix = "".join(f" {key}={attrs[key]}"
                             for key in sorted(attrs))
            lines.append(f"{'  ' * depth}{name}  "
                         f"{int(record['dur_us']) / 1e6:.3f}s{suffix}")
            emit(str(record["id"]), depth + 1)

    emit(None, 0)
    return "\n".join(lines)
