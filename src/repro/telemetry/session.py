"""The process-wide telemetry session and its on/off switch.

Telemetry is *opt-in per process*: a module-level session holds one
:class:`~repro.telemetry.spans.SpanTracer` plus one
:class:`~repro.telemetry.registry.MetricsRegistry`, and every
instrumentation site in the harness follows the same monomorphic guard
discipline as the cycle-domain bus (PR 4)::

    self.tele = current_telemetry()   # captured once, at construction
    ...
    if self.tele:                     # one attribute test when off
        with self.tele.span("cache.get", outcome="hit"):
            ...

With no session enabled the guard is a single falsy attribute load —
``repro all`` output stays byte-identical whether telemetry is on or
off, which CI's ``telemetry-smoke`` job asserts.

Crossing the process pool: the parent captures
:meth:`Telemetry.handoff` into each submitted task, the worker calls
:func:`activate_worker` (replacing any fork-inherited session so
parent spans are never double-counted), and ships
:meth:`Telemetry.harvest` back for the parent to
:meth:`Telemetry.absorb`.
"""

from __future__ import annotations

import json
import time
from contextlib import AbstractContextManager, contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional

from repro.telemetry.registry import MetricsRegistry, format_metrics
from repro.telemetry.spans import SpanTracer, format_span_tree

#: Bump when the dump layout changes incompatibly.
TELEMETRY_SCHEMA = 1

#: File (under the result-cache root) holding the most recent
#: ``--telemetry-json`` dump — what ``repro telemetry`` reads.
LAST_TELEMETRY_FILE = "last_telemetry.json"


def utc_timestamp(when: Optional[float] = None) -> str:
    """UTC ISO-8601 with the offset pinned to ``+0000``.

    ``time.strftime("...%z", time.gmtime())`` is platform-dependent
    (``%z`` may render empty for a bare ``struct_time``), so the
    offset is a literal — two processes in different ``TZ`` envs
    produce identical bytes.
    """
    return time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(when)) + "+0000"


class Telemetry:
    """One session: a span tracer plus a metrics registry."""

    def __init__(self,
                 context: Optional[Mapping[str, Any]] = None) -> None:
        self.tracer = SpanTracer(context)
        self.registry = MetricsRegistry()
        self.created_at = utc_timestamp()

    # ------------------------------------------------------------------
    def span(self, name: str, *,
             context: Optional[Mapping[str, Any]] = None,
             **attrs: Any) -> AbstractContextManager[dict[str, Any]]:
        """Open a span on this session's tracer."""
        return self.tracer.span(name, context=context, **attrs)

    def handoff(self) -> dict[str, Any]:
        """Context payload to embed in a submitted pool task."""
        return self.tracer.current_context()

    def harvest(self) -> dict[str, Any]:
        """Worker-side: spans + metrics to ship back to the parent."""
        return {"schema": TELEMETRY_SCHEMA,
                "spans": self.tracer.spans(),
                "metrics": self.registry.to_dict()}

    def absorb(self, payload: Optional[Mapping[str, Any]]) -> None:
        """Parent-side: fold a :meth:`harvest` payload in."""
        if not payload:
            return
        self.tracer.adopt(payload.get("spans") or [])
        metrics = payload.get("metrics")
        if metrics:
            self.registry.merge(metrics)

    def dump(self) -> dict[str, Any]:
        """The full session as one JSON-ready payload."""
        return {"schema": TELEMETRY_SCHEMA,
                "created_at": self.created_at,
                "pid": self.tracer.pid,
                "spans": self.tracer.spans(),
                "metrics": self.registry.to_dict()}


# ----------------------------------------------------------------------
# The process-wide session
# ----------------------------------------------------------------------
_ACTIVE: Optional[Telemetry] = None


def enable_telemetry(
        context: Optional[Mapping[str, Any]] = None) -> Telemetry:
    """Enable (or return the already-active) process session."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = Telemetry(context)
    return _ACTIVE


def disable_telemetry() -> Optional[Telemetry]:
    """Tear the session down; returns it for a final dump."""
    global _ACTIVE
    session, _ACTIVE = _ACTIVE, None
    return session


def current_telemetry() -> Optional[Telemetry]:
    """The active session, or ``None`` — the ``self.tele`` guard."""
    return _ACTIVE


def activate_worker(
        context: Optional[Mapping[str, Any]] = None) -> Telemetry:
    """Fresh session for a pool worker.

    Always replaces the module global: under the ``fork`` start method
    the child inherits the parent's session, and harvesting that would
    ship the parent's own spans back as if the worker produced them.
    """
    global _ACTIVE
    _ACTIVE = Telemetry(context)
    return _ACTIVE


@contextmanager
def telemetry_session(
        context: Optional[Mapping[str, Any]] = None
) -> Iterator[Telemetry]:
    """Scoped session: enables on entry, disables on exit.

    Nested use attaches to the existing session and leaves it active.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        yield _ACTIVE
        return
    session = Telemetry(context)
    _ACTIVE = session
    try:
        yield session
    finally:
        if _ACTIVE is session:
            _ACTIVE = None


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Optional[dict[str, Any]]]:
    """Module-level span helper: a no-op when telemetry is off.

    For call sites without a ``self.tele`` slot (free functions, CLI
    dispatch).  Yields the live record, or ``None`` when disabled.
    """
    session = _ACTIVE
    if session is None:
        yield None
        return
    with session.tracer.span(name, **attrs) as record:
        yield record


# ----------------------------------------------------------------------
# Persistence + rendering (``--telemetry-json`` / ``repro telemetry``)
# ----------------------------------------------------------------------
def write_telemetry(session: Telemetry, path: str | Path) -> Path:
    """Write a session dump as sorted-keys JSON; returns the path."""
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(session.dump(), indent=2,
                                 sort_keys=True) + "\n")
    return target


def load_telemetry(path: str | Path) -> dict[str, Any]:
    """Read a :func:`write_telemetry` dump back."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict):
        raise ValueError("telemetry dump must be a JSON object")
    return payload


def format_telemetry(payload: Mapping[str, Any]) -> str:
    """Human-readable dump: header, span tree, metrics table."""
    spans = list(payload.get("spans") or [])
    lines = [f"telemetry dump (pid {payload.get('pid')}, "
             f"{payload.get('created_at')}, {len(spans)} spans)"]
    tree = format_span_tree(spans)
    if tree:
        lines.extend(["", "spans:", tree])
    metrics = payload.get("metrics") or {}
    table = format_metrics(metrics)
    if table:
        lines.extend(["", "metrics:", table])
    return "\n".join(lines)
