"""Optional ``cProfile`` capture for harness hot spots.

Two entry points share the machinery:

* ``repro --profile`` / ``ExperimentRunner(profile_dir=...)`` profile
  *each sweep point* separately, writing ``<digest>.pstats`` files and
  attaching a top-N hotspot summary to the point's run manifest;
* ``repro profile <cmd>`` profiles a whole CLI command in one capture.

Only one ``cProfile.Profile`` can be active per interpreter; when a
capture is requested inside an already-profiled region (``repro
profile all --profile``), the inner capture degrades to an unprofiled
run instead of raising — profiling must never turn a green run red.
"""

from __future__ import annotations

import cProfile
import pstats
from pathlib import Path
from typing import Any, Callable, Optional, Sequence, TypeVar

T = TypeVar("T")

#: Hotspot rows attached to manifests / printed by ``repro profile``.
DEFAULT_TOP = 10


def hotspot_rows(stats: pstats.Stats,
                 top: int = DEFAULT_TOP) -> list[dict[str, Any]]:
    """The ``top`` functions by cumulative time, as JSON-ready rows.

    Ties (and the sort itself) break on the function triple, so the
    summary is deterministic for a given profile.
    """
    raw: dict[tuple[str, int, str], tuple[Any, ...]] = getattr(
        stats, "stats", {})
    order = sorted(raw, key=lambda func: (-float(raw[func][3]), func))
    rows: list[dict[str, Any]] = []
    for func in order[:max(top, 0)]:
        filename, lineno, name = func
        entry = raw[func]
        rows.append({
            "function": f"{Path(filename).name}:{lineno}({name})",
            "ncalls": int(entry[1]),
            "tottime": round(float(entry[2]), 6),
            "cumtime": round(float(entry[3]), 6),
        })
    return rows


def format_hotspots(rows: Sequence[dict[str, Any]]) -> str:
    """Fixed-width table of :func:`hotspot_rows` output."""
    if not rows:
        return "no profile data captured"
    lines = [f"{'ncalls':>8s} {'tottime':>9s} {'cumtime':>9s} function"]
    for row in rows:
        lines.append(f"{row['ncalls']:8d} {row['tottime']:9.4f} "
                     f"{row['cumtime']:9.4f} {row['function']}")
    return "\n".join(lines)


def profile_call(fn: Callable[[], T], *,
                 pstats_path: Optional[str | Path] = None,
                 top: int = DEFAULT_TOP
                 ) -> tuple[T, list[dict[str, Any]], Optional[Path]]:
    """Run ``fn`` under ``cProfile``.

    Returns ``(result, hotspot rows, written .pstats path)``.  If
    another profiler is already active the call runs unprofiled and
    the rows come back empty.
    """
    profiler = cProfile.Profile()
    try:
        profiler.enable()
    except ValueError:
        return fn(), [], None
    try:
        result = fn()
    finally:
        profiler.disable()
    written: Optional[Path] = None
    if pstats_path is not None:
        written = Path(pstats_path)
        if written.parent != Path("."):
            written.parent.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(str(written))
    stats = pstats.Stats(profiler)
    return result, hotspot_rows(stats, top=top), written
