"""A small two-pass assembler / disassembler for the repro ISA.

The assembler exists for tests and examples: it lets control-flow
shapes be written legibly instead of hand-computing immediates.

Syntax (one instruction or label per line, ``#`` comments)::

    loop:
        addi r1, r1, 1
        blt  r1, r2, loop      # branch targets may be labels
        jal  helper            # call targets may be labels
        jr   ra
    helper:
        add  r3, r1, r2
        jr   ra

Labels used as branch targets assemble to PC-relative immediates;
labels used as ``j``/``jal`` targets assemble to absolute addresses.
``assemble`` returns a list of :class:`Instruction` plus the label map.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.isa.instructions import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import Kind, Opcode, info
from repro.isa.registers import parse_register

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_MEM_RE = re.compile(r"^(-?\d+)\((\S+)\)$")


class AsmError(ValueError):
    """Raised for malformed assembly input."""


def _split_operands(rest: str) -> list[str]:
    return [tok.strip() for tok in rest.split(",") if tok.strip()]


def _imm_or_label(token: str, labels: dict[str, int], pc: int,
                  relative: bool) -> int:
    try:
        return int(token, 0)
    except ValueError:
        pass
    if token not in labels:
        raise AsmError(f"undefined label: {token!r}")
    target = labels[token]
    return target - pc if relative else target


def assemble(source: str, base: int = 0) -> tuple[list[Instruction], dict[str, int]]:
    """Assemble ``source`` starting at byte address ``base``.

    Returns ``(instructions, labels)`` where ``labels`` maps each label
    to its byte address.
    """
    lines = []
    for raw in source.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            lines.append(line)

    # Pass 1: assign addresses to labels.
    labels: dict[str, int] = {}
    pc = base
    bodies: list[tuple[int, str]] = []
    for line in lines:
        match = _LABEL_RE.match(line)
        if match:
            labels[match.group(1)] = pc
            continue
        bodies.append((pc, line))
        pc += INSTRUCTION_BYTES

    # Pass 2: encode.
    instructions = [_parse_line(line, pc, labels) for pc, line in bodies]
    return instructions, labels


def _parse_line(line: str, pc: int, labels: dict[str, int]) -> Instruction:
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    rest = parts[1] if len(parts) > 1 else ""
    try:
        op = Opcode(mnemonic)
    except ValueError as exc:
        raise AsmError(f"unknown mnemonic {mnemonic!r} in {line!r}") from exc
    ops = _split_operands(rest)
    kind = info(op).kind

    if op in (Opcode.NOP, Opcode.HALT):
        return Instruction(op)
    if kind is Kind.BRANCH:
        if len(ops) != 3:
            raise AsmError(f"branch needs 3 operands: {line!r}")
        return Instruction(op, rs1=parse_register(ops[0]),
                           rs2=parse_register(ops[1]),
                           imm=_imm_or_label(ops[2], labels, pc, relative=True))
    if kind in (Kind.JUMP, Kind.CALL):
        if len(ops) != 1:
            raise AsmError(f"{mnemonic} needs 1 operand: {line!r}")
        return Instruction(op, imm=_imm_or_label(ops[0], labels, pc,
                                                 relative=False))
    if kind is Kind.CALL_INDIRECT:
        if len(ops) != 2:
            raise AsmError(f"jalr needs 2 operands: {line!r}")
        return Instruction(op, rd=parse_register(ops[0]),
                           rs1=parse_register(ops[1]))
    if kind is Kind.JUMP_INDIRECT:
        if len(ops) != 1:
            raise AsmError(f"jr needs 1 operand: {line!r}")
        return Instruction(op, rs1=parse_register(ops[0]))
    if op is Opcode.LW:
        mem = _MEM_RE.match(ops[1])
        if len(ops) != 2 or not mem:
            raise AsmError(f"lw needs 'rd, imm(rs1)': {line!r}")
        return Instruction(op, rd=parse_register(ops[0]),
                           rs1=parse_register(mem.group(2)),
                           imm=int(mem.group(1)))
    if op is Opcode.SW:
        mem = _MEM_RE.match(ops[1])
        if len(ops) != 2 or not mem:
            raise AsmError(f"sw needs 'rs2, imm(rs1)': {line!r}")
        return Instruction(op, rs2=parse_register(ops[0]),
                           rs1=parse_register(mem.group(2)),
                           imm=int(mem.group(1)))
    if op is Opcode.LUI:
        if len(ops) != 2:
            raise AsmError(f"lui needs 2 operands: {line!r}")
        return Instruction(op, rd=parse_register(ops[0]), imm=int(ops[1], 0))
    if op is Opcode.SADD:
        raise AsmError("sadd is produced only by preprocessing, not assembly")

    # Generic ALU: rd, rs1, rs2  or  rd, rs1, imm
    if len(ops) != 3:
        raise AsmError(f"{mnemonic} needs 3 operands: {line!r}")
    rd = parse_register(ops[0])
    rs1 = parse_register(ops[1])
    if info(op).reads_rs2:
        return Instruction(op, rd=rd, rs1=rs1, rs2=parse_register(ops[2]))
    return Instruction(op, rd=rd, rs1=rs1, imm=int(ops[2], 0))


def disassemble(instructions: Iterable[Instruction]) -> str:
    """Render instructions one per line in assembly syntax."""
    return "\n".join(str(inst) for inst in instructions)
