"""Instruction-set architecture for the reproduction.

A SimpleScalar-flavoured load/store RISC ISA: 32 integer registers,
4-byte instructions, direct conditional branches (PC-relative), direct
jumps/calls (absolute), and register-indirect jumps/calls that the
preconstruction engine treats as statically opaque.
"""

from repro.isa.asm import AsmError, assemble, disassemble
from repro.isa.instructions import (
    INSTRUCTION_BYTES,
    Instruction,
    format_instruction,
    halt,
    nop,
    ret,
)
from repro.isa.opcodes import Kind, OpInfo, Opcode, info
from repro.isa.registers import (
    FP,
    NUM_REGISTERS,
    RA,
    SP,
    ZERO,
    parse_register,
    register_name,
)

__all__ = [
    "INSTRUCTION_BYTES", "Instruction", "format_instruction", "halt", "nop",
    "ret", "Kind", "OpInfo", "Opcode", "info", "FP", "NUM_REGISTERS", "RA",
    "SP", "ZERO", "parse_register", "register_name", "AsmError", "assemble",
    "disassemble",
]
