"""The :class:`Instruction` container and its control-flow helpers.

Instructions are immutable dataclasses.  The program image assigns each
instruction a byte address (PC); instructions are 4 bytes, so sequential
execution advances the PC by :data:`INSTRUCTION_BYTES`.

Control-flow target conventions:

* Conditional branches (``BEQ``/``BNE``/``BLT``/``BGE``) are PC-relative:
  the taken target is ``pc + imm``.  A *backward branch* (``imm < 0``)
  is the loop-closing cue the preconstruction engine watches for.
* ``J`` and ``JAL`` carry an absolute target in ``imm``.
* ``JR`` / ``JALR`` take their target from ``rs1`` and are statically
  unresolvable; ``JR ra`` is the idiomatic procedure return
  (:meth:`Instruction.is_return`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.isa.opcodes import (
    CONTROL_KINDS,
    DIRECT_CONTROL_KINDS,
    INDIRECT_CONTROL_KINDS,
    Kind,
    Opcode,
    info,
)
from repro.isa.registers import RA, ZERO, register_name

INSTRUCTION_BYTES = 4
"""Size of one instruction in bytes (PC stride)."""


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``sh1``/``sh2`` are only meaningful for the fused :data:`Opcode.SADD`
    operation produced by the preprocessing pass (left-shift amounts for
    the two register operands).
    """

    op: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    sh1: int = 0
    sh2: int = 0

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    @property
    def kind(self) -> Kind:
        return info(self.op).kind

    @property
    def latency(self) -> int:
        return info(self.op).latency

    @property
    def is_control(self) -> bool:
        """True for any instruction that may redirect the PC."""
        return self.kind in CONTROL_KINDS

    @property
    def is_conditional_branch(self) -> bool:
        return self.kind is Kind.BRANCH

    @property
    def is_call(self) -> bool:
        """True for direct and indirect calls (they push a return point)."""
        return self.kind in (Kind.CALL, Kind.CALL_INDIRECT)

    @property
    def is_return(self) -> bool:
        """True for ``JR ra`` — the idiomatic procedure return."""
        return self.op is Opcode.JR and self.rs1 == RA

    @property
    def is_indirect(self) -> bool:
        """True when the target comes from a register (statically opaque)."""
        return self.kind in INDIRECT_CONTROL_KINDS

    @property
    def is_direct_control(self) -> bool:
        return self.kind in DIRECT_CONTROL_KINDS

    # ------------------------------------------------------------------
    # Target computation
    # ------------------------------------------------------------------
    def is_backward_branch(self) -> bool:
        """True for a conditional branch whose taken target precedes it."""
        return self.is_conditional_branch and self.imm < 0

    def taken_target(self, pc: int) -> Optional[int]:
        """Static taken-path target, or ``None`` when register-indirect."""
        if self.is_conditional_branch:
            return pc + self.imm
        if self.kind in (Kind.JUMP, Kind.CALL):
            return self.imm
        if self.is_indirect:
            return None
        return None

    def fall_through(self, pc: int) -> int:
        """Address of the sequentially next instruction."""
        return pc + INSTRUCTION_BYTES

    # ------------------------------------------------------------------
    # Register usage (for dependence analysis / renaming)
    # ------------------------------------------------------------------
    def source_registers(self) -> tuple[int, ...]:
        """Architectural registers read, with the hardwired zero removed."""
        meta = info(self.op)
        sources = []
        if meta.reads_rs1 and self.rs1 != ZERO:
            sources.append(self.rs1)
        if meta.reads_rs2 and self.rs2 != ZERO:
            sources.append(self.rs2)
        return tuple(sources)

    def destination_register(self) -> Optional[int]:
        """Architectural register written, or ``None`` (writes to r0 discard)."""
        meta = info(self.op)
        if meta.writes_rd and self.rd != ZERO:
            return self.rd
        return None

    # ------------------------------------------------------------------
    # Rewriting (used by preprocessing passes)
    # ------------------------------------------------------------------
    def with_fields(self, **changes) -> "Instruction":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return format_instruction(self)


def format_instruction(inst: Instruction) -> str:
    """Render ``inst`` in assembly syntax (round-trips through the asm parser)."""
    op = inst.op
    n = register_name
    if op in (Opcode.NOP, Opcode.HALT):
        return op.value
    if op is Opcode.SADD:
        return (f"sadd {n(inst.rd)}, {n(inst.rs1)}<<{inst.sh1}, "
                f"{n(inst.rs2)}<<{inst.sh2}, {inst.imm}")
    kind = inst.kind
    if kind is Kind.BRANCH:
        return f"{op.value} {n(inst.rs1)}, {n(inst.rs2)}, {inst.imm}"
    if kind is Kind.JUMP:
        return f"j {inst.imm}"
    if kind is Kind.CALL:
        return f"jal {inst.imm}"
    if kind is Kind.CALL_INDIRECT:
        return f"jalr {n(inst.rd)}, {n(inst.rs1)}"
    if kind is Kind.JUMP_INDIRECT:
        return f"jr {n(inst.rs1)}"
    if op is Opcode.LW:
        return f"lw {n(inst.rd)}, {inst.imm}({n(inst.rs1)})"
    if op is Opcode.SW:
        return f"sw {n(inst.rs2)}, {inst.imm}({n(inst.rs1)})"
    if op is Opcode.LUI:
        return f"lui {n(inst.rd)}, {inst.imm}"
    meta = info(op)
    if meta.reads_rs2:
        return f"{op.value} {n(inst.rd)}, {n(inst.rs1)}, {n(inst.rs2)}"
    return f"{op.value} {n(inst.rd)}, {n(inst.rs1)}, {inst.imm}"


# Convenience constructors used heavily by the generator and tests.
def nop() -> Instruction:
    return Instruction(Opcode.NOP)


def halt() -> Instruction:
    return Instruction(Opcode.HALT)


def ret() -> Instruction:
    """``JR ra`` — procedure return."""
    return Instruction(Opcode.JR, rs1=RA)
