"""The :class:`Instruction` container and its control-flow helpers.

Instructions are immutable dataclasses.  The program image assigns each
instruction a byte address (PC); instructions are 4 bytes, so sequential
execution advances the PC by :data:`INSTRUCTION_BYTES`.

Control-flow target conventions:

* Conditional branches (``BEQ``/``BNE``/``BLT``/``BGE``) are PC-relative:
  the taken target is ``pc + imm``.  A *backward branch* (``imm < 0``)
  is the loop-closing cue the preconstruction engine watches for.
* ``J`` and ``JAL`` carry an absolute target in ``imm``.
* ``JR`` / ``JALR`` take their target from ``rs1`` and are statically
  unresolvable; ``JR ra`` is the idiomatic procedure return
  (:meth:`Instruction.is_return`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.isa.opcodes import (
    CONTROL_KINDS,
    DIRECT_CONTROL_KINDS,
    INDIRECT_CONTROL_KINDS,
    OP_INFO,
    Kind,
    Opcode,
)
from repro.isa.registers import RA, ZERO, register_name

INSTRUCTION_BYTES = 4
"""Size of one instruction in bytes (PC stride)."""


@dataclass(frozen=True, slots=True)
class Instruction:
    """One decoded instruction.

    ``sh1``/``sh2`` are only meaningful for the fused :data:`Opcode.SADD`
    operation produced by the preprocessing pass (left-shift amounts for
    the two register operands).

    The classification attributes (``kind``, ``latency``, ``is_*``) are
    computed once at decode: the timing simulators consult them per
    *dynamic* instruction, so deriving them from :data:`OP_INFO` on
    every access would put two dict lookups on the hottest path in the
    repository.  They are plain precomputed attributes, excluded from
    equality/hash, and recomputed by ``dataclasses.replace``.
    """

    op: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    sh1: int = 0
    sh2: int = 0

    # ------------------------------------------------------------------
    # Precomputed classification (decode-time, not per dynamic use)
    # ------------------------------------------------------------------
    kind: Kind = field(init=False, compare=False, repr=False)
    latency: int = field(init=False, compare=False, repr=False)
    #: True for any instruction that may redirect the PC.
    is_control: bool = field(init=False, compare=False, repr=False)
    is_conditional_branch: bool = field(init=False, compare=False,
                                        repr=False)
    #: True for direct and indirect calls (they push a return point).
    is_call: bool = field(init=False, compare=False, repr=False)
    #: True for ``JR ra`` — the idiomatic procedure return.
    is_return: bool = field(init=False, compare=False, repr=False)
    #: True when the target comes from a register (statically opaque).
    is_indirect: bool = field(init=False, compare=False, repr=False)
    is_direct_control: bool = field(init=False, compare=False, repr=False)
    #: True for a conditional branch whose taken target precedes it.
    is_backward: bool = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        meta = OP_INFO[self.op]
        kind = meta.kind
        setter = object.__setattr__
        setter(self, "kind", kind)
        setter(self, "latency", meta.latency)
        setter(self, "is_control", kind in CONTROL_KINDS)
        setter(self, "is_conditional_branch", kind is Kind.BRANCH)
        setter(self, "is_call", kind is Kind.CALL
               or kind is Kind.CALL_INDIRECT)
        setter(self, "is_return",
               self.op is Opcode.JR and self.rs1 == RA)
        setter(self, "is_indirect", kind in INDIRECT_CONTROL_KINDS)
        setter(self, "is_direct_control", kind in DIRECT_CONTROL_KINDS)
        setter(self, "is_backward",
               kind is Kind.BRANCH and self.imm < 0)

    # ------------------------------------------------------------------
    # Target computation
    # ------------------------------------------------------------------
    def is_backward_branch(self) -> bool:
        """True for a conditional branch whose taken target precedes it."""
        return self.is_backward

    def taken_target(self, pc: int) -> Optional[int]:
        """Static taken-path target, or ``None`` when register-indirect."""
        if self.is_conditional_branch:
            return pc + self.imm
        if self.kind in (Kind.JUMP, Kind.CALL):
            return self.imm
        if self.is_indirect:
            return None
        return None

    def fall_through(self, pc: int) -> int:
        """Address of the sequentially next instruction."""
        return pc + INSTRUCTION_BYTES

    # ------------------------------------------------------------------
    # Register usage (for dependence analysis / renaming)
    # ------------------------------------------------------------------
    def source_registers(self) -> tuple[int, ...]:
        """Architectural registers read, with the hardwired zero removed."""
        meta = OP_INFO[self.op]
        sources = []
        if meta.reads_rs1 and self.rs1 != ZERO:
            sources.append(self.rs1)
        if meta.reads_rs2 and self.rs2 != ZERO:
            sources.append(self.rs2)
        return tuple(sources)

    def destination_register(self) -> Optional[int]:
        """Architectural register written, or ``None`` (writes to r0 discard)."""
        meta = OP_INFO[self.op]
        if meta.writes_rd and self.rd != ZERO:
            return self.rd
        return None

    # ------------------------------------------------------------------
    # Rewriting (used by preprocessing passes)
    # ------------------------------------------------------------------
    def with_fields(self, **changes) -> "Instruction":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return format_instruction(self)


def format_instruction(inst: Instruction) -> str:
    """Render ``inst`` in assembly syntax (round-trips through the asm parser)."""
    op = inst.op
    n = register_name
    if op in (Opcode.NOP, Opcode.HALT):
        return op.value
    if op is Opcode.SADD:
        return (f"sadd {n(inst.rd)}, {n(inst.rs1)}<<{inst.sh1}, "
                f"{n(inst.rs2)}<<{inst.sh2}, {inst.imm}")
    kind = inst.kind
    if kind is Kind.BRANCH:
        return f"{op.value} {n(inst.rs1)}, {n(inst.rs2)}, {inst.imm}"
    if kind is Kind.JUMP:
        return f"j {inst.imm}"
    if kind is Kind.CALL:
        return f"jal {inst.imm}"
    if kind is Kind.CALL_INDIRECT:
        return f"jalr {n(inst.rd)}, {n(inst.rs1)}"
    if kind is Kind.JUMP_INDIRECT:
        return f"jr {n(inst.rs1)}"
    if op is Opcode.LW:
        return f"lw {n(inst.rd)}, {inst.imm}({n(inst.rs1)})"
    if op is Opcode.SW:
        return f"sw {n(inst.rs2)}, {inst.imm}({n(inst.rs1)})"
    if op is Opcode.LUI:
        return f"lui {n(inst.rd)}, {inst.imm}"
    meta = OP_INFO[op]
    if meta.reads_rs2:
        return f"{op.value} {n(inst.rd)}, {n(inst.rs1)}, {n(inst.rs2)}"
    return f"{op.value} {n(inst.rd)}, {n(inst.rs1)}, {inst.imm}"


# Convenience constructors used heavily by the generator and tests.
def nop() -> Instruction:
    return Instruction(Opcode.NOP)


def halt() -> Instruction:
    return Instruction(Opcode.HALT)


def ret() -> Instruction:
    """``JR ra`` — procedure return."""
    return Instruction(Opcode.JR, rs1=RA)
