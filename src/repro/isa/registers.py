"""Architectural register definitions for the repro RISC ISA.

The ISA models a 32-entry integer register file in the style of the
SimpleScalar PISA / MIPS conventions used by the paper's simulator:

* ``r0`` is hardwired to zero — writes are discarded.
* ``r29`` is the stack pointer by software convention.
* ``r31`` is the link register written by ``JAL``/``JALR`` and read by
  ``RET`` (which is an alias for ``JR r31``).

Registers are plain integers ``0..31`` throughout the code base; this
module provides the named constants and validation helpers.
"""

from __future__ import annotations

NUM_REGISTERS = 32

ZERO = 0
"""Hardwired zero register."""

SP = 29
"""Stack pointer (software convention)."""

FP = 30
"""Frame pointer (software convention)."""

RA = 31
"""Return-address / link register, written by call instructions."""

#: Registers that the workload generator treats as scratch (caller-saved).
SCRATCH_REGISTERS = tuple(range(1, 26))

#: Human-readable names, index by register number.
REGISTER_NAMES = tuple(
    {ZERO: "zero", SP: "sp", FP: "fp", RA: "ra"}.get(i, f"r{i}")
    for i in range(NUM_REGISTERS)
)

_NAME_TO_NUMBER = {name: i for i, name in enumerate(REGISTER_NAMES)}
_NAME_TO_NUMBER.update({f"r{i}": i for i in range(NUM_REGISTERS)})


def register_name(reg: int) -> str:
    """Return the canonical assembly name for register number ``reg``."""
    check_register(reg)
    return REGISTER_NAMES[reg]


def parse_register(text: str) -> int:
    """Parse an assembly register token (``r7``, ``$7``, ``ra``...).

    Raises ``ValueError`` for unknown tokens.
    """
    token = text.strip().lower().lstrip("$")
    if token in _NAME_TO_NUMBER:
        return _NAME_TO_NUMBER[token]
    if token.isdigit() and int(token) < NUM_REGISTERS:
        return int(token)
    raise ValueError(f"unknown register: {text!r}")


def check_register(reg: int) -> None:
    """Validate ``reg`` is a legal register number, raising ``ValueError``."""
    if not isinstance(reg, int) or not 0 <= reg < NUM_REGISTERS:
        raise ValueError(f"register number out of range: {reg!r}")
