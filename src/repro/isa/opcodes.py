"""Opcode definitions and static metadata for the repro RISC ISA.

Every opcode carries the metadata the rest of the system needs:

* its *kind* — how the control-flow / memory machinery must treat it;
* its *execution latency* in cycles, mirroring the MIPS R10000 latencies
  the paper's simulator uses (integer ALU 1, multiply 3, divide 20,
  load 2 on a data-cache hit);
* operand format — which of rd / rs1 / rs2 / imm are meaningful.

The ISA is deliberately SimpleScalar-flavoured: a small load/store RISC
set plus the fused shift-add operation (:data:`Opcode.SADD`) introduced
by the paper's *preprocessing* mechanism ("a new ALU [that] adds two
register operands, each of which can be shifted left by a small
immediate amount").  ``SADD`` is never emitted by the workload
generator; it is produced only by the ALU-fusion preprocessing pass.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Kind(enum.Enum):
    """Coarse behavioural class of an opcode."""

    ALU = "alu"                # register/immediate arithmetic & logic
    MUL = "mul"                # long-latency multiply
    DIV = "div"                # long-latency divide
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"          # conditional, direct, PC-relative
    JUMP = "jump"              # unconditional, direct, absolute target
    CALL = "call"              # unconditional, direct, writes link register
    CALL_INDIRECT = "call_indirect"  # JALR: target from register
    JUMP_INDIRECT = "jump_indirect"  # JR: target from register (includes RET)
    NOP = "nop"
    HALT = "halt"


class Opcode(enum.Enum):
    """The instruction set. Values are the assembly mnemonics."""

    # ALU register-register
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLT = "slt"        # set-less-than
    SLL = "sll"        # shift left logical (by rs2)
    SRL = "srl"        # shift right logical (by rs2)
    # ALU register-immediate
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLTI = "slti"
    SLLI = "slli"
    SRLI = "srli"
    LUI = "lui"        # load upper immediate
    # Fused shift-add produced by preprocessing (rd = (rs1<<sh1) + (rs2<<sh2) + imm)
    SADD = "sadd"
    # Long latency
    MUL = "mul"
    DIV = "div"
    # Memory
    LW = "lw"          # rd = mem[rs1 + imm]
    SW = "sw"          # mem[rs1 + imm] = rs2
    # Control transfer
    BEQ = "beq"        # branch if rs1 == rs2, target = pc + imm
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    J = "j"            # unconditional jump, absolute target = imm
    JAL = "jal"        # call: ra = pc + 4, jump to absolute imm
    JALR = "jalr"      # indirect call: rd = pc + 4, jump to rs1
    JR = "jr"          # indirect jump / return: jump to rs1
    # Misc
    NOP = "nop"
    HALT = "halt"


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    kind: Kind
    latency: int
    reads_rs1: bool
    reads_rs2: bool
    writes_rd: bool


_R = OpInfo(Kind.ALU, 1, True, True, True)
_I = OpInfo(Kind.ALU, 1, True, False, True)

OP_INFO: dict[Opcode, OpInfo] = {
    Opcode.ADD: _R, Opcode.SUB: _R, Opcode.AND: _R, Opcode.OR: _R,
    Opcode.XOR: _R, Opcode.SLT: _R, Opcode.SLL: _R, Opcode.SRL: _R,
    Opcode.ADDI: _I, Opcode.ANDI: _I, Opcode.ORI: _I, Opcode.XORI: _I,
    Opcode.SLTI: _I, Opcode.SLLI: _I, Opcode.SRLI: _I,
    Opcode.LUI: OpInfo(Kind.ALU, 1, False, False, True),
    Opcode.SADD: OpInfo(Kind.ALU, 1, True, True, True),
    Opcode.MUL: OpInfo(Kind.MUL, 3, True, True, True),
    Opcode.DIV: OpInfo(Kind.DIV, 20, True, True, True),
    Opcode.LW: OpInfo(Kind.LOAD, 2, True, False, True),
    Opcode.SW: OpInfo(Kind.STORE, 1, True, True, False),
    Opcode.BEQ: OpInfo(Kind.BRANCH, 1, True, True, False),
    Opcode.BNE: OpInfo(Kind.BRANCH, 1, True, True, False),
    Opcode.BLT: OpInfo(Kind.BRANCH, 1, True, True, False),
    Opcode.BGE: OpInfo(Kind.BRANCH, 1, True, True, False),
    Opcode.J: OpInfo(Kind.JUMP, 1, False, False, False),
    Opcode.JAL: OpInfo(Kind.CALL, 1, False, False, True),
    Opcode.JALR: OpInfo(Kind.CALL_INDIRECT, 1, True, False, True),
    Opcode.JR: OpInfo(Kind.JUMP_INDIRECT, 1, True, False, False),
    Opcode.NOP: OpInfo(Kind.NOP, 1, False, False, False),
    Opcode.HALT: OpInfo(Kind.HALT, 1, False, False, False),
}

#: Opcodes that unconditionally or conditionally redirect the PC.
CONTROL_KINDS = frozenset({
    Kind.BRANCH, Kind.JUMP, Kind.CALL, Kind.CALL_INDIRECT, Kind.JUMP_INDIRECT,
})

#: Control transfers whose target is encoded in the instruction itself,
#: i.e. resolvable by the preconstruction engine from static code alone.
DIRECT_CONTROL_KINDS = frozenset({Kind.BRANCH, Kind.JUMP, Kind.CALL})

#: Control transfers whose target comes from a register.  The paper's
#: preconstruction algorithm terminates path exploration at these
#: (unless the matching call was observed inside the region, for RET).
INDIRECT_CONTROL_KINDS = frozenset({Kind.CALL_INDIRECT, Kind.JUMP_INDIRECT})


#: Canonical opcode ordering for array-coded program representations
#: (:mod:`repro.vector`): the integer code of an opcode is its index
#: here.  Definition order of the enum, so codes are stable as long as
#: opcodes are only ever appended.
OPCODES: tuple[Opcode, ...] = tuple(Opcode)

#: Inverse of :data:`OPCODES` — opcode to integer code.
OPCODE_INDEX: dict[Opcode, int] = {op: i for i, op in enumerate(OPCODES)}


def info(op: Opcode) -> OpInfo:
    """Return the :class:`OpInfo` metadata for ``op``."""
    return OP_INFO[op]
