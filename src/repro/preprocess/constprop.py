"""Constant propagation within a trace (preprocessing pass).

The fill unit knows the values of immediates; chains of immediate
arithmetic inside a trace can be folded so downstream instructions no
longer depend on the chain ("the instructions within a trace need not
be identical to the instructions specified in the static program
representation, just functionally equivalent").

The pass tracks registers whose value is a *known constant* within the
trace (seeded by ``ADDI rd, r0, imm`` / ``LUI``) and rewrites consumers:

* an ALU op whose sources are all known becomes ``ADDI rd, r0, result``
  (zero dependence height);
* ``ADDI rd, rs, imm`` where ``rs`` is a known constant becomes
  ``ADDI rd, r0, known+imm``.

Values escaping the trace are unchanged — writes still happen to the
same destination registers in the same order, so architectural state at
trace exit is identical.  Only register *sources* are rewritten.
"""

from __future__ import annotations

from repro.engine.state import to_signed, to_unsigned
from repro.isa import Instruction, Kind, Opcode, ZERO

#: Opcodes the folder can evaluate at fill time.
_EVAL = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SLL: lambda a, b: a << (b & 31),
    Opcode.SRL: lambda a, b: a >> (b & 31),
}

_EVAL_IMM = {
    Opcode.ADDI: lambda a, imm: a + imm,
    Opcode.ANDI: lambda a, imm: a & to_unsigned(imm),
    Opcode.ORI: lambda a, imm: a | to_unsigned(imm),
    Opcode.XORI: lambda a, imm: a ^ to_unsigned(imm),
    Opcode.SLLI: lambda a, imm: a << (imm & 31),
    Opcode.SRLI: lambda a, imm: a >> (imm & 31),
}

#: Immediate range representable by the fill unit's rewritten ADDI.
_IMM_MIN, _IMM_MAX = -(1 << 15), (1 << 15) - 1


def propagate_constants(instructions: tuple[Instruction, ...]
                        ) -> tuple[Instruction, ...]:
    """Fold known-constant chains; returns the rewritten sequence."""
    known: dict[int, int] = {ZERO: 0}
    out: list[Instruction] = []
    for inst in instructions:
        rewritten = _fold(inst, known)
        out.append(rewritten)
        dest = rewritten.destination_register()
        if dest is None:
            # Stores/branches don't define; but a call writes ra with a
            # non-constant (pc) value handled below via is_control.
            continue
        value = _value_of(rewritten, known)
        if value is not None:
            known[dest] = value
        else:
            known.pop(dest, None)
    return tuple(out)


def _fold(inst: Instruction, known: dict[int, int]) -> Instruction:
    """Rewrite one instruction given currently-known constants."""
    if inst.is_control or inst.kind in (Kind.LOAD, Kind.STORE):
        return inst
    op = inst.op
    if op in _EVAL and inst.rs1 in known and inst.rs2 in known:
        result = to_unsigned(_EVAL[op](known[inst.rs1], known[inst.rs2]))
        folded = to_signed(result)
        if _IMM_MIN <= folded <= _IMM_MAX:
            return Instruction(Opcode.ADDI, rd=inst.rd, rs1=ZERO, imm=folded)
        return inst
    if op in _EVAL_IMM and inst.rs1 in known:
        result = to_unsigned(_EVAL_IMM[op](known[inst.rs1], inst.imm))
        folded = to_signed(result)
        if _IMM_MIN <= folded <= _IMM_MAX:
            return Instruction(Opcode.ADDI, rd=inst.rd, rs1=ZERO, imm=folded)
        return inst
    return inst


def _value_of(inst: Instruction, known: dict[int, int]) -> int | None:
    """Constant value an instruction produces, if determinable."""
    op = inst.op
    if op is Opcode.ADDI and inst.rs1 in known:
        return to_unsigned(known[inst.rs1] + inst.imm)
    if op is Opcode.LUI:
        return to_unsigned((inst.imm & 0xFFFF) << 16)
    if op in _EVAL_IMM and inst.rs1 in known:
        return to_unsigned(_EVAL_IMM[op](known[inst.rs1], inst.imm))
    if op in _EVAL and inst.rs1 in known and inst.rs2 in known:
        return to_unsigned(_EVAL[op](known[inst.rs1], known[inst.rs2]))
    return None
