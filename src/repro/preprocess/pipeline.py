"""The preprocessing pipeline attached to the fill unit (paper §6).

Applies the three optimisations of the paper's extended pipeline model
to each trace as it is constructed — demand-built traces and
preconstructed traces alike pass through the same fill unit:

1. constant propagation,
2. shift-add ALU fusion (targets the new combined ALU),
3. latency-aware instruction scheduling.

The rewritten instruction tuple replaces the trace's contents for
*timing* purposes; trace identity (start PC + branch outcomes) is
untouched, so lookup and alignment behave exactly as without
preprocessing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import Instruction
from repro.preprocess.alu_fusion import fuse_shift_adds
from repro.preprocess.constprop import propagate_constants
from repro.preprocess.scheduler import schedule_trace
from repro.trace import Trace


@dataclass(frozen=True)
class PreprocessConfig:
    """Which preprocessing passes the fill unit applies."""

    constant_propagation: bool = True
    alu_fusion: bool = True
    scheduling: bool = True

    @property
    def any_enabled(self) -> bool:
        return (self.constant_propagation or self.alu_fusion
                or self.scheduling)


class Preprocessor:
    """Fill-unit preprocessing stage."""

    def __init__(self, config: PreprocessConfig | None = None) -> None:
        self.config = config or PreprocessConfig()
        self.traces_processed = 0
        self.instructions_rewritten = 0

    def process(self, trace: Trace) -> tuple[Instruction, ...]:
        """Return the *execution view* of ``trace``: the rewritten (and
        possibly reordered) instruction sequence the backend executes.

        The canonical :class:`Trace` object is left untouched — its
        ``pcs``/``instructions`` pairing drives dispatch monitoring and
        trace identity; only backend timing consumes this view.
        """
        instructions = trace.instructions
        if not self.config.any_enabled:
            return instructions
        if self.config.constant_propagation:
            instructions = propagate_constants(instructions)
        if self.config.alu_fusion:
            instructions = fuse_shift_adds(instructions)
        if self.config.scheduling:
            instructions = schedule_trace(instructions)
        self.traces_processed += 1
        self.instructions_rewritten += sum(
            1 for a, b in zip(trace.instructions, instructions) if a is not b)
        return instructions
