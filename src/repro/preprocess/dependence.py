"""Intra-trace dependence analysis.

Preprocessing operates on one trace at a time (the fill unit transforms
instructions "before they are fed into the normal processing phases").
This module builds the register dataflow graph of a trace plus the
ordering constraints that any rewrite must respect:

* RAW register dependences (true dataflow);
* memory order — loads may not move across stores, stores may not move
  across loads or stores (no disambiguation at fill time);
* control order — control-transfer instructions keep their relative
  order, and nothing may move past the trace-terminating transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa import Instruction, Kind


@dataclass
class DependenceGraph:
    """Predecessor/successor sets over instruction indices of a trace."""

    instructions: tuple[Instruction, ...]
    preds: list[set[int]] = field(default_factory=list)
    succs: list[set[int]] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.instructions)

    def add_edge(self, src: int, dst: int) -> None:
        if src != dst:
            self.preds[dst].add(src)
            self.succs[src].add(dst)

    def critical_heights(self, latency_fn=None) -> list[int]:
        """Dependence height of each instruction: the longest latency
        chain from it to the end of the trace (higher = more urgent)."""
        if latency_fn is None:
            latency_fn = lambda inst: inst.latency
        heights = [0] * self.size
        for index in range(self.size - 1, -1, -1):
            below = [heights[s] for s in self.succs[index]]
            heights[index] = latency_fn(self.instructions[index]) + \
                (max(below) if below else 0)
        return heights

    def depth(self) -> int:
        """Critical-path latency of the whole trace."""
        heights = self.critical_heights()
        return max(heights) if heights else 0


def build_dependence_graph(instructions: tuple[Instruction, ...]
                           ) -> DependenceGraph:
    """Construct the constraint graph for one trace's instructions."""
    graph = DependenceGraph(instructions=tuple(instructions))
    n = len(graph.instructions)
    graph.preds = [set() for _ in range(n)]
    graph.succs = [set() for _ in range(n)]

    last_writer: dict[int, int] = {}
    last_store: int | None = None
    last_mem: int | None = None
    last_control: int | None = None

    for i, inst in enumerate(graph.instructions):
        # RAW register dependences.
        for reg in inst.source_registers():
            if reg in last_writer:
                graph.add_edge(last_writer[reg], i)
        # Memory ordering: conservative (no fill-time disambiguation).
        kind = inst.kind
        if kind is Kind.LOAD:
            if last_store is not None:
                graph.add_edge(last_store, i)
            last_mem = i
        elif kind is Kind.STORE:
            if last_mem is not None:
                graph.add_edge(last_mem, i)
            last_store = i
            last_mem = i
        # Control transfers stay ordered among themselves.
        if inst.is_control:
            if last_control is not None:
                graph.add_edge(last_control, i)
            last_control = i
        dest = inst.destination_register()
        if dest is not None:
            last_writer[dest] = i

    # Nothing may move past a trace-terminating control transfer.
    if n and graph.instructions[-1].is_control:
        for i in range(n - 1):
            graph.add_edge(i, n - 1)
    return graph
