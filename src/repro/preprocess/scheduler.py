"""Intra-trace list scheduling (preprocessing pass).

The processing elements issue in order, two per cycle, so instruction
placement inside a trace determines how densely a PE can issue.  The
fill unit reorders instructions by dependence height (critical path
first) subject to the constraint graph of
:mod:`repro.preprocess.dependence` — RAW dataflow, memory order, and
control order are all preserved, so the reordered trace is functionally
equivalent.
"""

from __future__ import annotations

import heapq

from repro.isa import Instruction
from repro.preprocess.dependence import build_dependence_graph


def schedule_order(instructions: tuple[Instruction, ...]) -> list[int]:
    """Return the scheduled permutation as original-index order."""
    n = len(instructions)
    if n <= 2:
        return list(range(n))
    graph = build_dependence_graph(instructions)
    heights = graph.critical_heights()
    indegree = [len(p) for p in graph.preds]

    # Max-heap on (height, -original_index): critical chains first,
    # original order as the tiebreak (stable for independent work).
    ready = [(-heights[i], i) for i in range(n) if indegree[i] == 0]
    heapq.heapify(ready)
    order: list[int] = []
    while ready:
        _, index = heapq.heappop(ready)
        order.append(index)
        for succ in sorted(graph.succs[index]):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready, (-heights[succ], succ))
    assert len(order) == n, "dependence graph has a cycle?"
    return order


def schedule_trace(instructions: tuple[Instruction, ...]
                   ) -> tuple[Instruction, ...]:
    """Return a latency-aware topological reordering of ``instructions``."""
    return tuple(instructions[i] for i in schedule_order(instructions))
