"""Shift-add ALU fusion (preprocessing pass).

The paper's third preprocessing optimisation targets "a new ALU [that]
adds two register operands, each of which can be shifted left by a
small immediate amount, and a third immediate operand."  The fill unit
collapses a dependent pair

    slli  t, a, k        (k small)
    add   d, t, b        (or addi d, t, imm)

into the fused form

    sadd  d, a<<k, b<<0, imm

removing one level of dependence height.  The shift itself must still
execute when its result is live elsewhere in the trace; when ``t`` is
not read again (and is overwritten or dead at trace exit as far as the
trace can tell), conservative liveness keeps it — the *timing* benefit
is carried entirely by the consumer no longer waiting on it.

Only ``rs1`` feeding shifts are fused here (one level), which is the
common address-computation idiom the new ALU targets.
"""

from __future__ import annotations

from repro.isa import Instruction, Opcode, ZERO

_MAX_SHIFT = 3
"""'Shifted left by a small immediate amount' — up to 3 (scale 8)."""


def fuse_shift_adds(instructions: tuple[Instruction, ...]
                    ) -> tuple[Instruction, ...]:
    """Rewrite eligible add consumers of small left-shifts to SADD."""
    # Map register -> (producer index, source reg, shift amount) while
    # the shift result is the *latest* definition of that register.
    shifted: dict[int, tuple[int, int, int]] = {}
    out = list(instructions)
    for i, inst in enumerate(instructions):
        fused = _try_fuse(inst, shifted)
        if fused is not None:
            out[i] = fused
        dest = inst.destination_register()
        if dest is not None:
            if (inst.op is Opcode.SLLI and 1 <= inst.imm <= _MAX_SHIFT
                    and inst.rs1 != ZERO):
                shifted[dest] = (i, inst.rs1, inst.imm)
            else:
                shifted.pop(dest, None)
            # Any redefinition of a shift *source* invalidates records
            # that read it (the fused operand must see the old value).
            stale = [reg for reg, (_, src, _) in shifted.items()
                     if src == dest and reg != dest]
            for reg in stale:
                del shifted[reg]
    return tuple(out)


def _try_fuse(inst: Instruction,
              shifted: dict[int, tuple[int, int, int]]
              ) -> Instruction | None:
    if inst.op is Opcode.ADD:
        if inst.rs1 in shifted:
            _, src, sh = shifted[inst.rs1]
            return Instruction(Opcode.SADD, rd=inst.rd, rs1=src,
                               rs2=inst.rs2, sh1=sh, sh2=0, imm=0)
        if inst.rs2 in shifted:
            _, src, sh = shifted[inst.rs2]
            return Instruction(Opcode.SADD, rd=inst.rd, rs1=inst.rs1,
                               rs2=src, sh1=0, sh2=sh, imm=0)
    elif inst.op is Opcode.ADDI and inst.rs1 in shifted:
        _, src, sh = shifted[inst.rs1]
        return Instruction(Opcode.SADD, rd=inst.rd, rs1=src, rs2=ZERO,
                           sh1=sh, sh2=0, imm=inst.imm)
    return None
