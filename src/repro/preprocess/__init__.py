"""Trace preprocessing: fill-unit transformations of the extended
pipeline model (constant propagation, shift-add ALU fusion, intra-trace
scheduling)."""

from repro.preprocess.alu_fusion import fuse_shift_adds
from repro.preprocess.constprop import propagate_constants
from repro.preprocess.dependence import (
    DependenceGraph,
    build_dependence_graph,
)
from repro.preprocess.pipeline import PreprocessConfig, Preprocessor
from repro.preprocess.scheduler import schedule_trace

__all__ = [
    "fuse_shift_adds", "propagate_constants", "DependenceGraph",
    "build_dependence_graph", "PreprocessConfig", "Preprocessor",
    "schedule_trace",
]
