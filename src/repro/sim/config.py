"""Simulation configuration for the trace-processor frontend."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.branch import NextTracePredictorConfig
from repro.caches import ICacheConfig
from repro.core import PreconstructionConfig
from repro.trace import SelectionConfig, TraceCacheConfig


@dataclass(frozen=True)
class FrontendConfig:
    """Everything the frontend simulation needs.

    ``preconstruction`` of ``None`` models the baseline trace processor
    (no preconstruction hardware at all).

    The trace-driven timing approximation (see DESIGN.md) is controlled
    by three knobs:

    * ``fetch_width`` — slow-path instructions fetched per cycle (4);
    * ``retire_ipc`` — sustained backend consumption rate, which paces
      the frontend on trace-cache hits and thereby determines how many
      *idle* slow-path cycles the preconstruction engine receives;
    * ``trace_mispredict_penalty`` / ``branch_mispredict_penalty`` —
      resolution latencies charged for wrong next-trace predictions and
      slow-path bimodal mispredictions.
    """

    trace_cache: TraceCacheConfig = field(default_factory=TraceCacheConfig)
    preconstruction: Optional[PreconstructionConfig] = None
    selection: SelectionConfig = field(default_factory=SelectionConfig)
    icache: ICacheConfig = field(default_factory=ICacheConfig)
    predictor: NextTracePredictorConfig = field(
        default_factory=NextTracePredictorConfig)
    bimodal_entries: int = 4096
    fetch_width: int = 4
    retire_ipc: float = 2.5
    trace_mispredict_penalty: int = 8
    branch_mispredict_penalty: int = 6
    train_bimodal_on_all_branches: bool = True
    #: Prime the preconstruction start-point stack with statically
    #: computed region start points (call returns + loop exits from
    #: :func:`repro.static.compute_static_seeds`) instead of relying
    #: solely on dynamic dispatch cues.  Ignored for the baseline.
    static_seed: bool = False
    #: Which frontend fill/prefetch mechanism occupies the seam
    #: (:mod:`repro.frontends` registry name).  ``"preconstruction"``
    #: keeps the paper's mechanism, configured via ``preconstruction``;
    #: any other name is configured via ``mechanism_budget``.
    mechanism: str = "preconstruction"
    #: Storage budget for a non-preconstruction mechanism, in
    #: trace-cache-equivalent 64-byte entries (the same area currency
    #: as ``preconstruction.buffer_entries``).  ``0`` = baseline.
    mechanism_budget: int = 0

    def __post_init__(self) -> None:
        if self.fetch_width <= 0:
            raise ValueError("fetch_width must be positive")
        if self.retire_ipc <= 0:
            raise ValueError("retire_ipc must be positive")
        if not self.mechanism:
            raise ValueError("mechanism must be a non-empty name")
        if self.mechanism_budget < 0:
            raise ValueError("mechanism_budget must be non-negative")
        if self.mechanism == "preconstruction" and self.mechanism_budget:
            raise ValueError("preconstruction sizes its storage via "
                             "preconstruction.buffer_entries, not "
                             "mechanism_budget")
        if self.mechanism != "preconstruction" \
                and self.preconstruction is not None:
            raise ValueError(f"mechanism {self.mechanism!r} cannot carry "
                             "a preconstruction config")

    @property
    def mechanism_entries(self) -> int:
        """Mechanism-side storage, in 64-byte entries (any mechanism)."""
        if self.preconstruction is not None:
            return self.preconstruction.buffer_entries
        return self.mechanism_budget

    def with_mechanism(self, mechanism: str) -> "FrontendConfig":
        """This sizing point under a different mechanism.

        The storage budget moves with the mechanism: preconstruction
        carries it in ``preconstruction.buffer_entries``, every other
        mechanism in ``mechanism_budget`` — same area either way.
        """
        if mechanism == self.mechanism:
            return self
        budget = self.mechanism_entries
        if mechanism == "preconstruction":
            from repro.core import PreconstructionConfig
            precon = (PreconstructionConfig(buffer_entries=budget)
                      if budget else None)
            return replace(self, mechanism=mechanism, mechanism_budget=0,
                           preconstruction=precon)
        return replace(self, mechanism=mechanism, mechanism_budget=budget,
                       preconstruction=None)

    @property
    def total_trace_storage_bytes(self) -> int:
        """Combined trace cache + mechanism storage area (the x-axis
        of the paper's Figure 5, equal-area across mechanisms)."""
        from repro.trace.trace_cache import BYTES_PER_ENTRY
        return (self.trace_cache.size_bytes
                + self.mechanism_entries * BYTES_PER_ENTRY)

    @property
    def total_trace_entries(self) -> int:
        return self.trace_cache.entries + self.mechanism_entries
