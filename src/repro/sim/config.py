"""Simulation configuration for the trace-processor frontend."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.branch import NextTracePredictorConfig
from repro.caches import ICacheConfig
from repro.core import PreconstructionConfig
from repro.trace import SelectionConfig, TraceCacheConfig


@dataclass(frozen=True)
class FrontendConfig:
    """Everything the frontend simulation needs.

    ``preconstruction`` of ``None`` models the baseline trace processor
    (no preconstruction hardware at all).

    The trace-driven timing approximation (see DESIGN.md) is controlled
    by three knobs:

    * ``fetch_width`` — slow-path instructions fetched per cycle (4);
    * ``retire_ipc`` — sustained backend consumption rate, which paces
      the frontend on trace-cache hits and thereby determines how many
      *idle* slow-path cycles the preconstruction engine receives;
    * ``trace_mispredict_penalty`` / ``branch_mispredict_penalty`` —
      resolution latencies charged for wrong next-trace predictions and
      slow-path bimodal mispredictions.
    """

    trace_cache: TraceCacheConfig = field(default_factory=TraceCacheConfig)
    preconstruction: Optional[PreconstructionConfig] = None
    selection: SelectionConfig = field(default_factory=SelectionConfig)
    icache: ICacheConfig = field(default_factory=ICacheConfig)
    predictor: NextTracePredictorConfig = field(
        default_factory=NextTracePredictorConfig)
    bimodal_entries: int = 4096
    fetch_width: int = 4
    retire_ipc: float = 2.5
    trace_mispredict_penalty: int = 8
    branch_mispredict_penalty: int = 6
    train_bimodal_on_all_branches: bool = True
    #: Prime the preconstruction start-point stack with statically
    #: computed region start points (call returns + loop exits from
    #: :func:`repro.static.compute_static_seeds`) instead of relying
    #: solely on dynamic dispatch cues.  Ignored for the baseline.
    static_seed: bool = False

    def __post_init__(self) -> None:
        if self.fetch_width <= 0:
            raise ValueError("fetch_width must be positive")
        if self.retire_ipc <= 0:
            raise ValueError("retire_ipc must be positive")

    @property
    def total_trace_storage_bytes(self) -> int:
        """Combined trace cache + preconstruction buffer area (the
        x-axis of the paper's Figure 5)."""
        total = self.trace_cache.size_bytes
        if self.preconstruction is not None:
            from repro.trace.trace_cache import BYTES_PER_ENTRY
            total += self.preconstruction.buffer_entries * BYTES_PER_ENTRY
        return total

    @property
    def total_trace_entries(self) -> int:
        total = self.trace_cache.entries
        if self.preconstruction is not None:
            total += self.preconstruction.buffer_entries
        return total
