"""The frontend timing simulation (trace-driven).

Replays a committed dynamic instruction stream through the trace
processor's frontend:

1. the stream is partitioned into traces by the selection rules;
2. for each needed trace, the next-trace predictor is consulted and the
   trace cache + preconstruction buffers are probed;
3. a present, correctly-predicted trace costs one fetch cycle and the
   backend paces consumption (``retire_ipc``), leaving the slow path
   idle — those idle cycles fund the preconstruction engine;
4. an absent trace is fetched from the instruction cache over the slow
   path (``fetch_width`` per cycle plus miss latencies), constructed by
   the fill unit, and installed in the trace cache.

This is the trace-driven approximation described in DESIGN.md: the
committed path is exact; wrong-path fetch is approximated by resolution
penalties.  It produces every metric in the paper's Figure 5 and
Tables 1-3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.branch import BimodalPredictor, NextTracePredictor
from repro.caches import InstructionCache
from repro.core import PreconstructionEngine
from repro.engine import FunctionalEngine, StreamRecord
from repro.program import ProgramImage
from repro.sim.config import FrontendConfig
from repro.sim.stats import FrontendStats
from repro.trace import Trace, TraceCache, TraceSelector


@dataclass
class FrontendResult:
    """Everything a caller may want after a frontend run."""

    config: FrontendConfig
    stats: FrontendStats
    trace_cache: TraceCache
    preconstruction: Optional[PreconstructionEngine]
    icache: InstructionCache


class FrontendSimulation:
    """Reusable frontend simulator; feed it one stream via :meth:`run`."""

    def __init__(self, image: ProgramImage, config: FrontendConfig) -> None:
        self.image = image
        self.config = config
        self.stats = FrontendStats()
        self.icache = InstructionCache(config.icache)
        self.trace_cache = TraceCache(config.trace_cache)
        self.bimodal = BimodalPredictor(entries=config.bimodal_entries)
        self.predictor: NextTracePredictor = NextTracePredictor(
            config.predictor)
        self.selector = TraceSelector(config.selection)
        self.precon: Optional[PreconstructionEngine] = None
        if config.preconstruction is not None:
            static_seeds: tuple[int, ...] = ()
            if config.static_seed:
                from repro.static.seeding import compute_static_seeds
                static_seeds = tuple(
                    s.pc for s in compute_static_seeds(image))
            self.precon = PreconstructionEngine(
                image=image, icache=self.icache, bimodal=self.bimodal,
                trace_cache=self.trace_cache,
                config=config.preconstruction,
                selection=config.selection,
                static_seeds=static_seeds)

    # ------------------------------------------------------------------
    def run(self, stream: Iterable[StreamRecord]) -> FrontendResult:
        """Replay ``stream`` through the frontend."""
        feed = self.selector.feed
        step = self._process_trace
        for record in stream:
            trace = feed(record)
            if trace is not None:
                step(trace)
        tail = self.selector.flush()
        if tail is not None:
            step(tail)
        return FrontendResult(config=self.config, stats=self.stats,
                              trace_cache=self.trace_cache,
                              preconstruction=self.precon,
                              icache=self.icache)

    # ------------------------------------------------------------------
    def _process_trace(self, actual: Trace) -> None:
        stats = self.stats
        config = self.config
        stats.traces += 1
        stats.instructions += len(actual)

        predicted = self.predictor.predict()
        predicted_ok = predicted == actual.trace_id

        present = self.trace_cache.lookup(actual.trace_id) is not None
        if not present and self.precon is not None:
            present = self.precon.probe_and_promote(
                actual.trace_id) is not None
            if present:
                stats.buffer_hits += 1

        idle_cycles = 0
        cycles = 0
        if predicted is None:
            stats.ntp_none += 1
        elif predicted_ok:
            stats.ntp_correct += 1
        else:
            stats.ntp_wrong += 1
            # Wrong next-trace prediction: resolution penalty during
            # which the slow-path fetch hardware sits idle.
            cycles += config.trace_mispredict_penalty
            idle_cycles += config.trace_mispredict_penalty

        if present:
            stats.trace_hits += 1
            fetch_cycles = 1
            # Backend-paced consumption: the window drains at retire_ipc,
            # so the slow path idles while the trace cache supplies.
            pace = max(fetch_cycles,
                       round(len(actual) / config.retire_ipc))
            cycles += pace
            idle_cycles += pace
        else:
            stats.trace_misses += 1
            cycles += self._slow_path_fetch(actual)

        stats.cycles += cycles
        if self.precon is not None:
            stats.idle_cycles += idle_cycles
            self.precon.observe_dispatch(actual)
            if idle_cycles:
                self.precon.tick(idle_cycles)

        self._train_predictors(actual, predicted)

    # ------------------------------------------------------------------
    def _slow_path_fetch(self, actual: Trace) -> int:
        """Fetch ``actual``'s instructions via the I-cache; build and
        install the trace.  Returns the cycles consumed."""
        stats = self.stats
        config = self.config
        stats.slow_path_traces += 1
        line_bytes = self.icache.config.line_bytes

        cycles = -(-len(actual) // config.fetch_width)  # ceil division
        # Group the dynamic path into consecutive same-line runs.
        run_line = None
        run_count = 0
        for pc in actual.pcs:
            line = pc - (pc % line_bytes)
            if line == run_line:
                run_count += 1
                continue
            if run_line is not None:
                cycles += self._slow_line(run_line, run_count)
            run_line, run_count = line, 1
        if run_line is not None:
            cycles += self._slow_line(run_line, run_count)

        stats.slow_instructions += len(actual)
        # Slow path consults the bimodal predictor per conditional branch.
        outcome_index = 0
        for inst, pc in zip(actual.instructions, actual.pcs):
            if inst.is_conditional_branch:
                taken = actual.trace_id.outcomes[outcome_index]
                outcome_index += 1
                prediction = self.bimodal.predict(pc)
                stats.bimodal_predictions += 1
                if prediction != taken:
                    stats.bimodal_mispredictions += 1
                    cycles += config.branch_mispredict_penalty

        # Fill unit installs the newly built trace (never the partial
        # end-of-stream tail — its identity may collide).
        if not actual.partial:
            self.trace_cache.insert(actual)
        return cycles

    def _slow_line(self, line_addr: int, instructions: int) -> int:
        """One slow-path line access; returns extra stall cycles."""
        latency, missed = self.icache.fetch_line(
            line_addr, "slow_path", instructions=instructions)
        stats = self.stats
        stats.slow_line_accesses += 1
        if missed:
            stats.slow_line_misses += 1
            stats.slow_instructions_from_misses += instructions
            return latency
        return 0

    # ------------------------------------------------------------------
    def _train_predictors(self, actual: Trace,
                          predicted: Optional[object]) -> None:
        self.predictor.update(
            actual.trace_id, predicted,
            ends_in_call=actual.ends_in_call,
            ends_in_return=actual.ends_in_return)
        if self.config.train_bimodal_on_all_branches:
            outcome_index = 0
            for inst, pc in zip(actual.instructions, actual.pcs):
                if inst.is_conditional_branch:
                    self.bimodal.update(
                        pc, actual.trace_id.outcomes[outcome_index])
                    outcome_index += 1
        # Keep Table 2's preconstruction traffic mirrored into stats.
        traffic = self.icache.traffic.get("preconstruct")
        if traffic is not None:
            self.stats.precon_line_accesses = traffic.lines_accessed
            self.stats.precon_line_misses = traffic.misses


def run_frontend(image: ProgramImage, config: FrontendConfig,
                 max_instructions: int,
                 stream: Optional[list[StreamRecord]] = None
                 ) -> FrontendResult:
    """Convenience wrapper: execute ``image`` functionally (or reuse a
    precomputed ``stream``) and replay it through the frontend."""
    if stream is None:
        stream = FunctionalEngine(image).run(max_instructions)
    else:
        stream = stream[:max_instructions]
    return FrontendSimulation(image, config).run(stream)
