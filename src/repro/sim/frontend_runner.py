"""The frontend timing simulation (trace-driven).

Replays a committed dynamic instruction stream through the trace
processor's frontend:

1. the stream is partitioned into traces by the selection rules;
2. for each needed trace, the next-trace predictor is consulted and the
   trace cache is probed (plus the configured frontend mechanism's
   side storage — preconstruction buffers, for the paper's mechanism);
3. a present, correctly-predicted trace costs one fetch cycle and the
   backend paces consumption (``retire_ipc``), leaving the slow path
   idle — those idle cycles fund the frontend mechanism;
4. an absent trace is fetched from the instruction cache over the slow
   path (``fetch_width`` per cycle plus miss latencies), constructed by
   the fill unit, and installed in the trace cache.

The fill/prefetch mechanism occupying the seam is pluggable
(:mod:`repro.frontends`): trace preconstruction, MANA-style
record-replay prefetching, program-map traversal, or next-N-line —
selected by ``FrontendConfig.mechanism``.

This is the trace-driven approximation described in DESIGN.md: the
committed path is exact; wrong-path fetch is approximated by resolution
penalties.  It produces every metric in the paper's Figure 5 and
Tables 1-3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.branch import BimodalPredictor, NextTracePredictor
from repro.caches import InstructionCache
from repro.core import PreconstructionEngine
from repro.engine import FunctionalEngine, StreamRecord
from repro.frontends import (
    FrontendMechanism,
    MechanismContext,
    create_mechanism,
)
from repro.program import ProgramImage
from repro.sim.config import FrontendConfig
from repro.sim.stats import FrontendStats
from repro.trace import MAX_TRACE_LENGTH, Trace, TraceCache, TraceSelector

if TYPE_CHECKING:
    from repro.sim.dynamic_partition import (
        DynamicPartitionConfig,
        PartitionEvent,
    )


def retire_pace_table(retire_ipc: float,
                      max_length: int = MAX_TRACE_LENGTH) -> tuple[int, ...]:
    """Cycles the backend needs to consume a trace of each length.

    ``table[n]`` is the pace for an ``n``-instruction trace: ceiling
    division of the length by the sustained retire rate, floored at the
    single trace-cache fetch cycle.  Ceiling, not ``round`` — banker's
    rounding made a 15-instruction trace at ``retire_ipc=2.5`` cost the
    same 6 cycles as a 16-instruction one, undercharging any trace
    whose drain time lands on .5 (and crediting too many idle cycles to
    preconstruction).
    """
    return tuple(max(1, math.ceil(n / retire_ipc))
                 for n in range(max_length + 1))


@dataclass
class FrontendResult:
    """Everything a caller may want after a frontend run."""

    config: FrontendConfig
    stats: FrontendStats
    trace_cache: TraceCache
    preconstruction: Optional[PreconstructionEngine]
    icache: InstructionCache
    #: The mechanism instance that occupied the seam (``None`` for the
    #: bare baseline).  For ``mechanism="preconstruction"`` its engine
    #: is also exposed via :attr:`preconstruction` (compatibility).
    mechanism: Optional[FrontendMechanism] = None
    #: Epoch decisions of the adaptive-partition controller; ``None``
    #: unless the run was driven with a ``partition`` config.
    partition_events: Optional[list["PartitionEvent"]] = None


class FrontendSimulation:
    """Reusable frontend simulator; feed it one stream via :meth:`run`."""

    def __init__(self, image: ProgramImage, config: FrontendConfig,
                 obs=None) -> None:
        self.image = image
        self.config = config
        self.stats = FrontendStats()
        #: Optional :class:`repro.obs.ObsBus`.  The runner owns the
        #: event clock: it advances ``obs.now`` to the frontend cycle
        #: count, so engine/buffer/trace-cache events share one cycle
        #: domain.  ``None`` (the default) keeps every site a single
        #: dead branch on the hot path.
        self.obs = obs
        self._obs_bucket = -1
        self.icache = InstructionCache(config.icache)
        self.trace_cache = TraceCache(config.trace_cache)
        if obs is not None:
            self.trace_cache.obs = obs
        self.bimodal = BimodalPredictor(entries=config.bimodal_entries)
        self.predictor: NextTracePredictor = NextTracePredictor(
            config.predictor)
        self.selector = TraceSelector(config.selection)
        # Pace of backend-paced consumption, precomputed per length.
        self._pace = retire_pace_table(config.retire_ipc,
                                       config.selection.max_length)
        #: Per-trace (pc, taken) pairs of the conditional branches — a
        #: pure function of the trace, consulted by both the slow path
        #: and predictor training on every dynamic occurrence.  Keyed by
        #: id(); the stored trace reference pins the id.
        self._branch_memo: dict[int, tuple[Trace, tuple]] = {}
        self.mechanism: Optional[FrontendMechanism] = create_mechanism(
            config.mechanism,
            MechanismContext(
                image=image, icache=self.icache, bimodal=self.bimodal,
                trace_cache=self.trace_cache, selection=config.selection,
                budget_entries=config.mechanism_entries,
                static_seed=config.static_seed,
                preconstruction=config.preconstruction))
        #: The preconstruction engine, when that is the configured
        #: mechanism — kept as a direct attribute because the
        #: dynamic-partition extension repartitions its buffers.
        self.precon: Optional[PreconstructionEngine] = getattr(
            self.mechanism, "engine", None)
        if obs is not None and self.mechanism is not None:
            self.mechanism.attach_obs(obs)

    # ------------------------------------------------------------------
    def run(self, stream: Iterable[StreamRecord],
            traces: Optional[Iterable[Trace]] = None) -> FrontendResult:
        """Replay ``stream`` through the frontend.

        ``traces`` may carry the stream's precomputed trace partition
        (see :meth:`~repro.runner.StreamCache.traces`); partitioning is
        a pure function of the stream and the selection config, so a
        sweep re-running one stream under many sizings need not re-feed
        the selector per point.  When given, ``stream`` is ignored.
        """
        step = self._process_trace
        if traces is not None:
            for trace in traces:
                step(trace)
        else:
            feed = self.selector.feed
            for record in stream:
                trace = feed(record)
                if trace is not None:
                    step(trace)
            tail = self.selector.flush()
            if tail is not None:
                step(tail)
        return FrontendResult(config=self.config, stats=self.stats,
                              trace_cache=self.trace_cache,
                              preconstruction=self.precon,
                              icache=self.icache,
                              mechanism=self.mechanism,
                              partition_events=getattr(self, "events", None))

    # ------------------------------------------------------------------
    def _process_trace(self, actual: Trace) -> None:
        stats = self.stats
        config = self.config
        obs = self.obs
        mechanism = self.mechanism
        if obs:
            obs.now = stats.cycles
        stats.traces += 1
        stats.instructions += len(actual)

        predicted = self.predictor.predict()
        predicted_ok = predicted == actual.trace_id

        present = self.trace_cache.lookup(actual.trace_id) is not None
        buffer_hit = False
        if not present and mechanism is not None:
            buffer_hit = mechanism.probe(actual.trace_id)
            if buffer_hit:
                present = True
                stats.buffer_hits += 1

        idle_cycles = 0
        cycles = 0
        if predicted is None:
            stats.ntp_none += 1
        elif predicted_ok:
            stats.ntp_correct += 1
        else:
            stats.ntp_wrong += 1
            # Wrong next-trace prediction: resolution penalty during
            # which the slow-path fetch hardware sits idle.
            cycles += config.trace_mispredict_penalty
            idle_cycles += config.trace_mispredict_penalty

        if present:
            stats.trace_hits += 1
            # Backend-paced consumption: the window drains at retire_ipc,
            # so the slow path idles while the trace cache supplies.
            pace = self._pace[len(actual)]
            cycles += pace
            idle_cycles += pace
        else:
            stats.trace_misses += 1
            if mechanism is not None:
                mechanism.on_slow_path(actual)
            cycles += self._slow_path_fetch(actual)

        if obs:
            pc = actual.trace_id.start_pc
            if present:
                obs.emit("frontend", "trace_hit", pc=pc, len=len(actual),
                         buffer=buffer_hit)
            else:
                obs.emit("frontend", "trace_miss", pc=pc, len=len(actual))
            obs.metrics.on_trace(obs.now, len(actual), present, buffer_hit)

        stats.cycles += cycles
        if mechanism is not None:
            stats.idle_cycles += idle_cycles
            mechanism.observe_dispatch(actual)
            if idle_cycles:
                if obs:
                    # The idle span is the tail of this trace's cycles:
                    # stamp engine work at the burst start so region /
                    # construction events land inside the burst slice.
                    obs.now = stats.cycles - idle_cycles
                    obs.emit("frontend", "idle_burst_start",
                             len=idle_cycles)
                    obs.metrics.on_idle_burst(obs.now, idle_cycles)
                mechanism.tick(idle_cycles)
                if obs:
                    obs.now = stats.cycles
                    obs.emit("frontend", "idle_burst_end", len=idle_cycles)
            if obs and self.precon is not None:
                bucket = stats.cycles // obs.metrics.bucket_cycles
                if bucket != self._obs_bucket:
                    self._obs_bucket = bucket
                    obs.metrics.on_buffer_occupancy(
                        self.precon.buffers.occupancy())

        self._train_predictors(actual, predicted)

    # ------------------------------------------------------------------
    def _slow_path_fetch(self, actual: Trace) -> int:
        """Fetch ``actual``'s instructions via the I-cache; build and
        install the trace.  Returns the cycles consumed."""
        stats = self.stats
        config = self.config
        stats.slow_path_traces += 1
        line_bytes = self.icache.config.line_bytes

        cycles = -(-len(actual) // config.fetch_width)  # ceil division
        # The dynamic path grouped into consecutive same-line runs,
        # precomputed once per trace object.
        for run_line, run_count in actual.line_runs(line_bytes):
            cycles += self._slow_line(run_line, run_count)

        stats.slow_instructions += len(actual)
        # Slow path consults the bimodal predictor per conditional branch.
        if actual.trace_id.outcomes:
            pairs = self._branch_pairs(actual)
            predict = self.bimodal.predict
            penalty = config.branch_mispredict_penalty
            mispredictions = 0
            for pc, taken in pairs:
                if predict(pc) != taken:
                    mispredictions += 1
                    cycles += penalty
            stats.bimodal_predictions += len(pairs)
            stats.bimodal_mispredictions += mispredictions

        # Fill unit installs the newly built trace (never the partial
        # end-of-stream tail — its identity may collide).
        if not actual.partial:
            self.trace_cache.insert(actual)
        return cycles

    def _slow_line(self, line_addr: int, instructions: int) -> int:
        """One slow-path line access; returns extra stall cycles."""
        latency, missed = self.icache.fetch_line(
            line_addr, "slow_path", instructions=instructions)
        stats = self.stats
        stats.slow_line_accesses += 1
        if missed:
            stats.slow_line_misses += 1
            stats.slow_instructions_from_misses += instructions
            return latency
        return 0

    # ------------------------------------------------------------------
    def _branch_pairs(self, trace: Trace) -> tuple[tuple[int, bool], ...]:
        """Memoized (pc, taken) per conditional branch of ``trace``."""
        memo = self._branch_memo.get(id(trace))
        if memo is not None and memo[0] is trace:
            return memo[1]
        outcomes = trace.trace_id.outcomes
        outcome_index = 0
        pairs: list[tuple[int, bool]] = []
        for pc, inst in zip(trace.pcs, trace.instructions):
            if inst.is_conditional_branch:
                pairs.append((pc, outcomes[outcome_index]))
                outcome_index += 1
        result = tuple(pairs)
        self._branch_memo[id(trace)] = (trace, result)
        return result

    def _train_predictors(self, actual: Trace,
                          predicted: Optional[object]) -> None:
        self.predictor.update(
            actual.trace_id, predicted,
            ends_in_call=actual.ends_in_call,
            ends_in_return=actual.ends_in_return)
        if (actual.trace_id.outcomes
                and self.config.train_bimodal_on_all_branches):
            update = self.bimodal.update
            for pc, taken in self._branch_pairs(actual):
                update(pc, taken)
        # Keep Table 2's mechanism-side I-cache traffic mirrored into
        # stats, whatever client name the mechanism fetches under.
        client = (self.mechanism.icache_client
                  if self.mechanism is not None else "preconstruct")
        traffic = self.icache.traffic.get(client)
        if traffic is not None:
            self.stats.precon_line_accesses = traffic.lines_accessed
            self.stats.precon_line_misses = traffic.misses


def run_frontend(image: ProgramImage, config: FrontendConfig,
                 max_instructions: Optional[int] = None,
                 stream: Optional[list[StreamRecord]] = None,
                 traces: Optional[list[Trace]] = None,
                 obs=None, *,
                 mechanism: Optional[str] = None,
                 partition: Optional["DynamicPartitionConfig"] = None
                 ) -> FrontendResult:
    """The one frontend entry point.

    Executes ``image`` functionally (or reuses a precomputed ``stream``
    / its trace partition ``traces``) and replays it through the
    frontend.  ``obs`` attaches an event bus (:class:`repro.obs.ObsBus`)
    for cycle-domain tracing.

    ``mechanism`` overrides ``config.mechanism`` at the same storage
    budget (see :meth:`FrontendConfig.with_mechanism`).  ``partition``
    switches to the adaptive trace-storage-partition frontend (the
    dynamic extension); its epoch decisions come back as
    ``result.partition_events``.
    """
    if mechanism is not None:
        config = config.with_mechanism(mechanism)
    if partition is not None:
        from repro.sim.dynamic_partition import DynamicPartitionFrontend
        if obs is not None:
            raise ValueError("partitioned runs do not support obs")
        simulation: FrontendSimulation = DynamicPartitionFrontend(
            image, config, partition)
    else:
        simulation = FrontendSimulation(image, config, obs=obs)
    if traces is not None:
        return simulation.run((), traces=traces)
    if stream is None:
        if max_instructions is None:
            raise ValueError("need max_instructions when no stream/traces "
                             "are supplied")
        stream = FunctionalEngine(image).run(max_instructions)
    elif max_instructions is not None:
        stream = stream[:max_instructions]
    return simulation.run(stream)
