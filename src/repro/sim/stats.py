"""Frontend simulation statistics and the paper's derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FrontendStats:
    """Raw counters accumulated by the frontend simulation."""

    instructions: int = 0
    traces: int = 0
    cycles: int = 0

    # Trace supply path
    trace_hits: int = 0              # needed trace present (TC or buffers)
    trace_misses: int = 0            # needed trace absent -> slow path build
    buffer_hits: int = 0             # subset of trace_hits found in buffers
    slow_path_traces: int = 0        # traces supplied via the slow path

    # Next-trace predictor
    ntp_correct: int = 0
    ntp_wrong: int = 0
    ntp_none: int = 0

    # Slow-path instruction supply (Table 1/3 numerators)
    slow_instructions: int = 0
    slow_instructions_from_misses: int = 0
    slow_line_accesses: int = 0
    slow_line_misses: int = 0

    # Preconstruction-side I-cache traffic (Table 2 includes these)
    precon_line_accesses: int = 0
    precon_line_misses: int = 0

    # Bimodal predictor (slow-path)
    bimodal_predictions: int = 0
    bimodal_mispredictions: int = 0

    # Idle-cycle accounting fed to the preconstruction engine
    idle_cycles: int = 0

    # ------------------------------------------------------------------
    # Paper metrics
    # ------------------------------------------------------------------
    def _per_ki(self, value: float) -> float:
        return 1000.0 * value / self.instructions if self.instructions else 0.0

    @property
    def trace_miss_rate_per_ki(self) -> float:
        """Figure 5's y-axis: trace cache misses per 1000 instructions."""
        return self._per_ki(self.trace_misses)

    @property
    def icache_instructions_per_ki(self) -> float:
        """Table 1: instructions supplied by the I-cache per 1000."""
        return self._per_ki(self.slow_instructions)

    @property
    def icache_misses_per_ki(self) -> float:
        """Table 2: I-cache misses per 1000 instructions (all clients,
        including preconstruction-generated misses)."""
        return self._per_ki(self.slow_line_misses + self.precon_line_misses)

    @property
    def icache_miss_instructions_per_ki(self) -> float:
        """Table 3: instructions supplied by I-cache misses per 1000."""
        return self._per_ki(self.slow_instructions_from_misses)

    @property
    def ntp_accuracy(self) -> float:
        total = self.ntp_correct + self.ntp_wrong + self.ntp_none
        return self.ntp_correct / total if total else 0.0

    @property
    def trace_hit_fraction(self) -> float:
        total = self.trace_hits + self.trace_misses
        return self.trace_hits / total if total else 0.0

    @property
    def fetch_ipc(self) -> float:
        """Instructions supplied per frontend cycle (frontend-only pace)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def summary(self) -> dict[str, float]:
        """Flat dict of the headline metrics (for reports/tests)."""
        return {
            "instructions": self.instructions,
            "traces": self.traces,
            "cycles": self.cycles,
            "trace_misses_per_ki": self.trace_miss_rate_per_ki,
            "icache_instructions_per_ki": self.icache_instructions_per_ki,
            "icache_misses_per_ki": self.icache_misses_per_ki,
            "icache_miss_instructions_per_ki":
                self.icache_miss_instructions_per_ki,
            "ntp_accuracy": self.ntp_accuracy,
            "trace_hit_fraction": self.trace_hit_fraction,
            "buffer_hits": self.buffer_hits,
        }
