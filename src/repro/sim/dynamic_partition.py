"""Dynamic trace-storage partitioning (the paper's suggested extension).

Paper §5.1: "the benchmark *gcc* sees the most benefit from
incorporating a small preconstruction buffer and allotting most of the
area to the trace cache.  On the other hand, *go* sees the most benefit
from a relatively large preconstruction buffer.  Because of this
behavior either a compromise has to be made, or a design that
dynamically allocates space for the preconstruction buffer may need to
be used.  We do not investigate dynamically partitioning space between
the trace cache and preconstruction buffer, but this could likely be
done."

This module does investigate it.  A fixed total entry budget is split
between the trace cache and the preconstruction buffers; a hill-
climbing controller re-evaluates the split every epoch:

* each epoch records the trace miss rate;
* the controller keeps moving the boundary in the current direction
  while the miss rate improves, and reverses direction when it
  worsens (classic one-dimensional gradient walk);
* repartitioning rebuilds both structures at the new sizes and
  migrates resident traces (a real implementation would flush instead;
  migration models the reserved-ways scheme the paper sketches, where
  entries are re-tagged rather than lost).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.core.precon_buffers import PreconstructionBuffers
from repro.engine.stream import StreamRecord
from repro.sim.config import FrontendConfig
from repro.sim.frontend_runner import FrontendResult, FrontendSimulation
from repro.program import ProgramImage
from repro.trace import Trace, TraceCache, TraceCacheConfig


@dataclass(frozen=True)
class DynamicPartitionConfig:
    """Controller parameters."""

    total_entries: int = 512
    initial_pb_entries: int = 128
    min_pb_entries: int = 32
    max_pb_entries: int = 384
    step_entries: int = 32
    epoch_traces: int = 1500
    hold_tolerance: float = 0.05
    """Relative miss-rate change below which the controller holds the
    current split (repartitioning disturbs indexing and LRU state, so
    it should only happen on a significant gradient)."""

    def __post_init__(self) -> None:
        if not (0 < self.min_pb_entries <= self.initial_pb_entries
                <= self.max_pb_entries < self.total_entries):
            raise ValueError("inconsistent partition bounds")
        if self.step_entries <= 0 or self.epoch_traces <= 0:
            raise ValueError("step/epoch must be positive")
        if self.hold_tolerance < 0:
            raise ValueError("hold_tolerance must be >= 0")


@dataclass
class PartitionEvent:
    """One epoch decision, for inspection and plots."""

    at_traces: int
    pb_entries: int
    epoch_miss_rate: float


class DynamicPartitionFrontend(FrontendSimulation):
    """Frontend simulation with an adaptive TC/PB boundary."""

    def __init__(self, image: ProgramImage, config: FrontendConfig,
                 partition: DynamicPartitionConfig | None = None) -> None:
        if config.preconstruction is None:
            raise ValueError("dynamic partitioning needs the "
                             "preconstruction mechanism with a non-zero "
                             "buffer budget")
        self.partition = partition or DynamicPartitionConfig()
        super().__init__(image, config)
        self._pb_entries = self.partition.initial_pb_entries
        self._direction = +1
        self._epoch_traces = 0
        self._epoch_misses = 0
        self._last_epoch_rate: float | None = None
        self.events: list[PartitionEvent] = []
        self._apply_partition(self._pb_entries)

    # ------------------------------------------------------------------
    @property
    def pb_entries(self) -> int:
        return self._pb_entries

    def _apply_partition(self, pb_entries: int) -> None:
        """Rebuild the trace cache and buffers at the new split."""
        tc_entries = self.partition.total_entries - pb_entries
        old_tc = self.trace_cache
        old_buffers = self.precon.buffers

        new_tc = TraceCache(TraceCacheConfig(entries=tc_entries))
        for trace in old_tc.resident_traces():
            new_tc.insert(trace)
        new_buffers = PreconstructionBuffers(
            entries=pb_entries, ways=old_buffers.ways,
            priority_fn=old_buffers.priority_fn)
        for trace, region_seq in old_buffers.resident_with_regions():
            new_buffers.insert(trace, region_seq)

        self.trace_cache = new_tc
        self.precon.trace_cache = new_tc
        self.precon.buffers = new_buffers
        self._pb_entries = pb_entries

    # ------------------------------------------------------------------
    def _process_trace(self, actual: Trace) -> None:
        misses_before = self.stats.trace_misses
        super()._process_trace(actual)
        self._epoch_traces += 1
        self._epoch_misses += self.stats.trace_misses - misses_before
        if self._epoch_traces >= self.partition.epoch_traces:
            self._end_epoch()

    def _end_epoch(self) -> None:
        rate = self._epoch_misses / self._epoch_traces
        move = self._last_epoch_rate is None
        if self._last_epoch_rate is not None:
            delta = rate - self._last_epoch_rate
            band = self.partition.hold_tolerance * self._last_epoch_rate
            if delta > band:
                self._direction = -self._direction  # got worse: reverse
                move = True
            elif delta < -band:
                move = True  # improving: keep walking
            # else: inside the hold band — keep the current split.
        if move:
            proposal = self._pb_entries + self._direction * \
                self.partition.step_entries
            proposal = max(self.partition.min_pb_entries,
                           min(self.partition.max_pb_entries, proposal))
            if proposal != self._pb_entries:
                self._apply_partition(proposal)
        self.events.append(PartitionEvent(
            at_traces=self.stats.traces, pb_entries=self._pb_entries,
            epoch_miss_rate=rate))
        self._last_epoch_rate = rate
        self._epoch_traces = 0
        self._epoch_misses = 0


def run_dynamic_frontend(image: ProgramImage, config: FrontendConfig,
                         stream: list[StreamRecord],
                         partition: DynamicPartitionConfig | None = None
                         ) -> tuple[FrontendResult, list[PartitionEvent]]:
    """Deprecated shim over the unified :func:`repro.sim.run_frontend`.

    Call ``run_frontend(image, config, stream=stream,
    partition=DynamicPartitionConfig(...))`` instead; the epoch
    decisions ride on ``result.partition_events``.
    """
    warnings.warn(
        "run_dynamic_frontend() is deprecated; call run_frontend(..., "
        "partition=DynamicPartitionConfig(...)) and read "
        "result.partition_events", DeprecationWarning, stacklevel=2)
    from repro.sim.frontend_runner import run_frontend
    result = run_frontend(image, config, stream=stream,
                          partition=partition or DynamicPartitionConfig())
    return result, result.partition_events or []
