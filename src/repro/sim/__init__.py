"""Simulation drivers: configuration, statistics, frontend runner.

The frontend entry point is the unified :func:`run_frontend`; the
mechanism occupying the fill/prefetch seam comes from
:mod:`repro.frontends` (``FrontendConfig.mechanism``), and adaptive
trace-storage partitioning is the ``partition=`` keyword.
:func:`run_dynamic_frontend` survives as a deprecated shim.
"""

from repro.sim.config import FrontendConfig
from repro.sim.dynamic_partition import (
    DynamicPartitionConfig,
    DynamicPartitionFrontend,
    PartitionEvent,
    run_dynamic_frontend,
)
from repro.sim.frontend_runner import (
    FrontendResult,
    FrontendSimulation,
    run_frontend,
)
from repro.sim.stats import FrontendStats

__all__ = [
    "FrontendConfig", "FrontendResult", "FrontendSimulation", "run_frontend",
    "FrontendStats", "DynamicPartitionConfig", "DynamicPartitionFrontend",
    "PartitionEvent", "run_dynamic_frontend",
]
