"""Simulation drivers: configuration, statistics, frontend runner."""

from repro.sim.config import FrontendConfig
from repro.sim.dynamic_partition import (
    DynamicPartitionConfig,
    DynamicPartitionFrontend,
    PartitionEvent,
    run_dynamic_frontend,
)
from repro.sim.frontend_runner import (
    FrontendResult,
    FrontendSimulation,
    run_frontend,
)
from repro.sim.stats import FrontendStats

__all__ = [
    "FrontendConfig", "FrontendResult", "FrontendSimulation", "run_frontend",
    "FrontendStats", "DynamicPartitionConfig", "DynamicPartitionFrontend",
    "PartitionEvent", "run_dynamic_frontend",
]
