"""Perfect second-level cache, per the paper's memory model.

"We model realistic level-one caches and a perfect level-two cache...
the level-two cache has ten cycle hit latency."  Every access hits; the
model only supplies latency and a traffic count.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PerfectL2:
    """Always-hit L2 with fixed latency."""

    hit_latency: int = 10
    accesses: int = field(default=0, init=False)

    def access(self) -> int:
        """Record one access; returns the latency in cycles."""
        self.accesses += 1
        return self.hit_latency
