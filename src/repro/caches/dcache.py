"""Data cache timing model (paper §4.1).

"We model a four ported level-one data cache of which any single
processing element can only access two ports per cycle.  The data cache
is non-blocking and is write-back.  [64-byte lines, 4-way, 64 KB],
two cycle hit latency, and the level-two cache has ten cycle hit
latency."

The model is timing-only: tag state determines hit/miss, ports
arbitrate per cycle, and misses fill from the perfect L2.  Write-back
is modelled as dirty-bit accounting (writebacks count traffic but — L2
being perfect — add no extra stall to the requester).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.caches.setassoc import SetAssociativeCache


@dataclass(frozen=True)
class DCacheConfig:
    size_bytes: int = 64 * 1024
    ways: int = 4
    line_bytes: int = 64
    hit_latency: int = 2
    miss_latency: int = 10        # perfect L2 hit
    ports: int = 4                # total ports per cycle
    ports_per_pe: int = 2

    @property
    def num_sets(self) -> int:
        sets, rem = divmod(self.size_bytes, self.ways * self.line_bytes)
        if rem or sets <= 0:
            raise ValueError("dcache geometry does not divide evenly")
        return sets


@dataclass
class DCacheStats:
    loads: int = 0
    stores: int = 0
    load_misses: int = 0
    store_misses: int = 0
    writebacks: int = 0
    port_stall_cycles: int = 0

    @property
    def accesses(self) -> int:
        return self.loads + self.stores

    @property
    def misses(self) -> int:
        return self.load_misses + self.store_misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class DataCache:
    """Timing-only L1 data cache with per-cycle port arbitration."""

    def __init__(self, config: DCacheConfig | None = None) -> None:
        self.config = config or DCacheConfig()
        line = self.config.line_bytes
        # Payload is the dirty bit.
        self._lines: SetAssociativeCache[int, bool] = SetAssociativeCache(
            num_sets=self.config.num_sets, ways=self.config.ways,
            index_fn=lambda addr: addr // line)
        self._port_load: Counter = Counter()
        self._pe_port_load: Counter = Counter()
        self.stats = DCacheStats()

    # ------------------------------------------------------------------
    def line_address(self, addr: int) -> int:
        return addr - (addr % self.config.line_bytes)

    def _allocate_port(self, cycle: int, pe: int) -> int:
        """First cycle >= ``cycle`` with a free port for ``pe``."""
        config = self.config
        start = cycle
        while (self._port_load[cycle] >= config.ports
               or self._pe_port_load[(pe, cycle)] >= config.ports_per_pe):
            cycle += 1
        self._port_load[cycle] += 1
        self._pe_port_load[(pe, cycle)] += 1
        self.stats.port_stall_cycles += cycle - start
        return cycle

    # ------------------------------------------------------------------
    def access(self, addr: int, is_store: bool, cycle: int,
               pe: int = 0) -> int:
        """Access the cache at ``cycle`` from ``pe``.

        Returns the completion latency relative to ``cycle`` (including
        any port-arbitration delay).  Misses fill the line; a dirty
        eviction counts a writeback.
        """
        config = self.config
        issue = self._allocate_port(cycle, pe)
        line = self.line_address(addr)
        hit = self._lines.lookup(line) is not None
        if is_store:
            self.stats.stores += 1
        else:
            self.stats.loads += 1
        if hit:
            if is_store:
                self._lines.insert(line, True)  # set dirty
            return (issue - cycle) + config.hit_latency
        if is_store:
            self.stats.store_misses += 1
        else:
            self.stats.load_misses += 1
        evicted = self._lines.insert(line, is_store)
        if evicted is not None and evicted[1]:
            self.stats.writebacks += 1
        return (issue - cycle) + config.miss_latency
