"""Replacement policies for set-associative structures.

A policy instance manages *one* cache: it is told about accesses and
fills per (set, way) and is asked for a victim way when a set is full.
The paper's trace cache and preconstruction buffers use LRU; FIFO and
seeded-random policies exist for ablation studies.
"""

from __future__ import annotations

import abc
import random


class ReplacementPolicy(abc.ABC):
    """Interface: tracks per-set way ordering and nominates victims."""

    def __init__(self, num_sets: int, ways: int) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ValueError("num_sets and ways must be positive")
        self.num_sets = num_sets
        self.ways = ways

    @abc.abstractmethod
    def on_access(self, set_index: int, way: int) -> None:
        """A hit touched ``way`` of ``set_index``."""

    @abc.abstractmethod
    def on_fill(self, set_index: int, way: int) -> None:
        """``way`` of ``set_index`` was (re)filled."""

    @abc.abstractmethod
    def victim(self, set_index: int) -> int:
        """Nominate the way to evict from a full ``set_index``."""

    def on_invalidate(self, set_index: int, way: int) -> None:
        """``way`` of ``set_index`` was invalidated.

        Recency-tracking policies demote the way to most-eligible-victim
        so an invalidated slot is reclaimed before any live line.
        Without this hook an invalidated way keeps its (stale) recency
        and a later victim choice can evict a live line while the set
        still holds dead state.  Default: no ordering state to fix.
        """


class LRU(ReplacementPolicy):
    """Least-recently-used, the paper's policy for the trace cache."""

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        # Per set: ways ordered most-recent-first.
        self._order = [list(range(ways)) for _ in range(num_sets)]

    def on_access(self, set_index: int, way: int) -> None:
        order = self._order[set_index]
        order.remove(way)
        order.insert(0, way)

    def on_fill(self, set_index: int, way: int) -> None:
        self.on_access(set_index, way)

    def victim(self, set_index: int) -> int:
        return self._order[set_index][-1]

    def on_invalidate(self, set_index: int, way: int) -> None:
        order = self._order[set_index]
        order.remove(way)
        order.append(way)  # least-recent: next victim

    def recency_order(self, set_index: int) -> tuple[int, ...]:
        """Ways of ``set_index``, most-recent first (for tests)."""
        return tuple(self._order[set_index])


class FIFO(ReplacementPolicy):
    """First-in-first-out (ablation alternative)."""

    def __init__(self, num_sets: int, ways: int) -> None:
        super().__init__(num_sets, ways)
        self._queue = [list(range(ways)) for _ in range(num_sets)]

    def on_access(self, set_index: int, way: int) -> None:
        pass  # accesses do not affect FIFO order

    def on_fill(self, set_index: int, way: int) -> None:
        queue = self._queue[set_index]
        queue.remove(way)
        queue.insert(0, way)

    def victim(self, set_index: int) -> int:
        return self._queue[set_index][-1]

    def on_invalidate(self, set_index: int, way: int) -> None:
        queue = self._queue[set_index]
        queue.remove(way)
        queue.append(way)  # oldest: next victim


class RandomReplacement(ReplacementPolicy):
    """Seeded random victim selection (ablation alternative)."""

    def __init__(self, num_sets: int, ways: int, seed: int = 0) -> None:
        super().__init__(num_sets, ways)
        self._rng = random.Random(seed)

    def on_access(self, set_index: int, way: int) -> None:
        pass

    def on_fill(self, set_index: int, way: int) -> None:
        pass

    def victim(self, set_index: int) -> int:
        return self._rng.randrange(self.ways)


POLICIES = {"lru": LRU, "fifo": FIFO, "random": RandomReplacement}


def make_policy(name: str, num_sets: int, ways: int) -> ReplacementPolicy:
    """Construct a policy by name (``lru``, ``fifo``, ``random``)."""
    try:
        cls = POLICIES[name.lower()]
    except KeyError:
        raise ValueError(f"unknown replacement policy {name!r}") from None
    return cls(num_sets, ways)
