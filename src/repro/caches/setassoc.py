"""Generic set-associative cache keyed by arbitrary hashable tags.

Used directly by the instruction cache (keys are line addresses) and by
the trace cache / preconstruction buffers (keys are trace identities).
The index function is pluggable so trace structures can index by a hash
of start address and branch outcomes, as the paper describes.

Tag match is O(1): alongside the per-way line array, each set keeps a
``key -> way`` dict mirror, so a probe is a single dict lookup instead
of an associative scan.  The line array remains the ground truth the
replacement policy is told about.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Iterator, Optional, TypeVar

from repro.caches.replacement import LRU, ReplacementPolicy

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


def stable_index(key: object) -> int:
    """Deterministic set-index hash for arbitrary keys.

    The builtin ``hash`` is deterministic for ints and tuples of ints
    but *salted per process* for ``str`` (PYTHONHASHSEED), so a cache
    whose keys ever contain a string would break the runner's
    byte-identical determinism contract.  This function is stable
    across processes: ints map to themselves (address-style keys keep
    their natural set distribution) and everything else goes through
    CRC-32 of a canonical encoding.
    """
    if isinstance(key, int):
        return key
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8"))
    if isinstance(key, (tuple, frozenset)):
        items = sorted(key) if isinstance(key, frozenset) else key
        acc = 0x811C9DC5
        for item in items:
            acc = ((acc ^ (stable_index(item) & 0xFFFFFFFF))
                   * 0x01000193) & 0xFFFFFFFF
        return acc
    return zlib.crc32(repr(key).encode("utf-8"))


@dataclass
class CacheStats:
    """Access counters maintained by :class:`SetAssociativeCache`."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class _Line(Generic[K, V]):
    __slots__ = ("valid", "key", "value")

    def __init__(self) -> None:
        self.valid = False
        self.key: Optional[K] = None
        self.value: Optional[V] = None


class SetAssociativeCache(Generic[K, V]):
    """A set-associative store of key -> value with replacement.

    ``index_fn`` maps a key to its set index (any int; reduced modulo
    the set count).  The default is :func:`stable_index`, which is
    deterministic across processes regardless of PYTHONHASHSEED;
    address-based caches pass an explicit line-index function.
    """

    def __init__(self, num_sets: int, ways: int,
                 index_fn: Optional[Callable[[K], int]] = None,
                 policy: Optional[ReplacementPolicy] = None) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ValueError("num_sets and ways must be positive")
        self.num_sets = num_sets
        self.ways = ways
        self._index_fn = index_fn if index_fn is not None else stable_index
        self.policy = policy if policy is not None else LRU(num_sets, ways)
        if (self.policy.num_sets, self.policy.ways) != (num_sets, ways):
            raise ValueError("policy geometry does not match cache geometry")
        self._sets = [[_Line() for _ in range(ways)] for _ in range(num_sets)]
        # key -> way mirror of each set's valid lines (O(1) tag match).
        self._maps: list[dict[K, int]] = [{} for _ in range(num_sets)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.num_sets * self.ways

    def set_index(self, key: K) -> int:
        return self._index_fn(key) % self.num_sets

    # ------------------------------------------------------------------
    def lookup(self, key: K) -> Optional[V]:
        """Probe for ``key``; counts the access and updates recency."""
        stats = self.stats
        stats.accesses += 1
        set_index = self._index_fn(key) % self.num_sets
        way = self._maps[set_index].get(key)
        if way is not None:
            stats.hits += 1
            self.policy.on_access(set_index, way)
            return self._sets[set_index][way].value
        stats.misses += 1
        return None

    def peek(self, key: K) -> Optional[V]:
        """Probe without touching counters or recency (for dedup checks)."""
        set_index = self._index_fn(key) % self.num_sets
        way = self._maps[set_index].get(key)
        if way is None:
            return None
        return self._sets[set_index][way].value

    def __contains__(self, key: K) -> bool:
        set_index = self._index_fn(key) % self.num_sets
        return key in self._maps[set_index]

    # ------------------------------------------------------------------
    def insert(self, key: K, value: V) -> Optional[tuple[K, V]]:
        """Install ``key`` -> ``value``; returns the evicted pair, if any.

        Inserting an existing key overwrites it in place.
        """
        set_index = self._index_fn(key) % self.num_sets
        ways = self._sets[set_index]
        key_map = self._maps[set_index]
        way = key_map.get(key)
        if way is not None:
            ways[way].value = value
            self.policy.on_fill(set_index, way)
            return None
        for way, line in enumerate(ways):
            if not line.valid:
                line.valid, line.key, line.value = True, key, value
                key_map[key] = way
                self.policy.on_fill(set_index, way)
                self.stats.fills += 1
                return None
        way = self.policy.victim(set_index)
        line = ways[way]
        evicted = (line.key, line.value)
        del key_map[line.key]
        line.key, line.value = key, value
        key_map[key] = way
        self.policy.on_fill(set_index, way)
        self.stats.fills += 1
        self.stats.evictions += 1
        return evicted  # type: ignore[return-value]

    def invalidate(self, key: K) -> bool:
        """Drop ``key`` if present; returns whether it was present.

        The replacement policy is notified so the freed way becomes the
        set's preferred victim — without this, LRU/FIFO recency state
        goes stale and the next victim choice after an invalidate+refill
        can evict a live line instead.
        """
        set_index = self._index_fn(key) % self.num_sets
        way = self._maps[set_index].pop(key, None)
        if way is None:
            return False
        line = self._sets[set_index][way]
        line.valid, line.key, line.value = False, None, None
        self.policy.on_invalidate(set_index, way)
        return True

    def clear(self) -> None:
        for set_index, ways in enumerate(self._sets):
            for way, line in enumerate(ways):
                if line.valid:
                    line.valid, line.key, line.value = False, None, None
                    self.policy.on_invalidate(set_index, way)
            self._maps[set_index].clear()

    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[K, V]]:
        """Yield all resident (key, value) pairs."""
        for ways in self._sets:
            for line in ways:
                if line.valid:
                    yield line.key, line.value  # type: ignore[misc]

    def occupancy(self) -> int:
        return sum(1 for _ in self.items())
