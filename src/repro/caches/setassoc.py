"""Generic set-associative cache keyed by arbitrary hashable tags.

Used directly by the instruction cache (keys are line addresses) and by
the trace cache / preconstruction buffers (keys are trace identities).
The index function is pluggable so trace structures can index by a hash
of start address and branch outcomes, as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Iterator, Optional, TypeVar

from repro.caches.replacement import LRU, ReplacementPolicy

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass
class CacheStats:
    """Access counters maintained by :class:`SetAssociativeCache`."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class _Line(Generic[K, V]):
    __slots__ = ("valid", "key", "value")

    def __init__(self) -> None:
        self.valid = False
        self.key: Optional[K] = None
        self.value: Optional[V] = None


class SetAssociativeCache(Generic[K, V]):
    """A set-associative store of key -> value with replacement.

    ``index_fn`` maps a key to its set index (any int; reduced modulo
    the set count).  The default hashes the key, which is appropriate
    for trace identities; address-based caches pass an explicit
    line-index function.
    """

    def __init__(self, num_sets: int, ways: int,
                 index_fn: Optional[Callable[[K], int]] = None,
                 policy: Optional[ReplacementPolicy] = None) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ValueError("num_sets and ways must be positive")
        self.num_sets = num_sets
        self.ways = ways
        self._index_fn = index_fn if index_fn is not None else hash
        self.policy = policy if policy is not None else LRU(num_sets, ways)
        if (self.policy.num_sets, self.policy.ways) != (num_sets, ways):
            raise ValueError("policy geometry does not match cache geometry")
        self._sets = [[_Line() for _ in range(ways)] for _ in range(num_sets)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.num_sets * self.ways

    def set_index(self, key: K) -> int:
        return self._index_fn(key) % self.num_sets

    # ------------------------------------------------------------------
    def lookup(self, key: K) -> Optional[V]:
        """Probe for ``key``; counts the access and updates recency."""
        self.stats.accesses += 1
        set_index = self.set_index(key)
        for way, line in enumerate(self._sets[set_index]):
            if line.valid and line.key == key:
                self.stats.hits += 1
                self.policy.on_access(set_index, way)
                return line.value
        self.stats.misses += 1
        return None

    def peek(self, key: K) -> Optional[V]:
        """Probe without touching counters or recency (for dedup checks)."""
        for line in self._sets[self.set_index(key)]:
            if line.valid and line.key == key:
                return line.value
        return None

    def __contains__(self, key: K) -> bool:
        return self.peek(key) is not None

    # ------------------------------------------------------------------
    def insert(self, key: K, value: V) -> Optional[tuple[K, V]]:
        """Install ``key`` -> ``value``; returns the evicted pair, if any.

        Inserting an existing key overwrites it in place.
        """
        set_index = self.set_index(key)
        ways = self._sets[set_index]
        for way, line in enumerate(ways):
            if line.valid and line.key == key:
                line.value = value
                self.policy.on_fill(set_index, way)
                return None
        for way, line in enumerate(ways):
            if not line.valid:
                line.valid, line.key, line.value = True, key, value
                self.policy.on_fill(set_index, way)
                self.stats.fills += 1
                return None
        way = self.policy.victim(set_index)
        line = ways[way]
        evicted = (line.key, line.value)
        line.key, line.value = key, value
        self.policy.on_fill(set_index, way)
        self.stats.fills += 1
        self.stats.evictions += 1
        return evicted  # type: ignore[return-value]

    def invalidate(self, key: K) -> bool:
        """Drop ``key`` if present; returns whether it was present."""
        for line in self._sets[self.set_index(key)]:
            if line.valid and line.key == key:
                line.valid, line.key, line.value = False, None, None
                return True
        return False

    def clear(self) -> None:
        for ways in self._sets:
            for line in ways:
                line.valid, line.key, line.value = False, None, None

    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[K, V]]:
        """Yield all resident (key, value) pairs."""
        for ways in self._sets:
            for line in ways:
                if line.valid:
                    yield line.key, line.value  # type: ignore[misc]

    def occupancy(self) -> int:
        return sum(1 for _ in self.items())
