"""Cache substrate: replacement policies, set-associative store, I-cache,
fill-up prefetch caches, and the perfect L2."""

from repro.caches.dcache import DataCache, DCacheConfig, DCacheStats
from repro.caches.icache import (
    FetchTraffic,
    ICacheConfig,
    InstructionCache,
)
from repro.caches.l2 import PerfectL2
from repro.caches.prefetch_cache import PrefetchCache
from repro.caches.replacement import (
    FIFO,
    LRU,
    POLICIES,
    RandomReplacement,
    ReplacementPolicy,
    make_policy,
)
from repro.caches.setassoc import CacheStats, SetAssociativeCache, stable_index

__all__ = [
    "DataCache", "DCacheConfig", "DCacheStats",
    "FetchTraffic", "ICacheConfig", "InstructionCache", "PerfectL2",
    "PrefetchCache", "FIFO", "LRU", "POLICIES", "RandomReplacement",
    "ReplacementPolicy", "make_policy", "CacheStats", "SetAssociativeCache",
    "stable_index",
]
