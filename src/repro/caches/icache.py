"""Instruction cache model.

Paper configuration: 64 KB, 4-way set associative, 64-byte lines
(16 instructions), 1-cycle hit, backed by a perfect L2 with a 10-cycle
hit latency.  The I-cache is shared between the slow-path fetch unit
and the preconstruction engine; per-client traffic counters let the
simulator report the paper's Tables 1-3 (instructions supplied by the
I-cache, I-cache misses, instructions supplied by misses).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.caches.setassoc import SetAssociativeCache
from repro.isa import INSTRUCTION_BYTES


@dataclass
class FetchTraffic:
    """Per-client I-cache traffic counters."""

    instructions_supplied: int = 0
    lines_accessed: int = 0
    misses: int = 0
    instructions_from_misses: int = 0


@dataclass
class ICacheConfig:
    size_bytes: int = 64 * 1024
    ways: int = 4
    line_bytes: int = 64
    hit_latency: int = 1
    miss_latency: int = 10  # perfect L2 hit latency

    @property
    def num_sets(self) -> int:
        sets, rem = divmod(self.size_bytes, self.ways * self.line_bytes)
        if rem or sets <= 0:
            raise ValueError("icache geometry does not divide evenly")
        return sets

    @property
    def instructions_per_line(self) -> int:
        return self.line_bytes // INSTRUCTION_BYTES


class InstructionCache:
    """Shared instruction cache with per-client traffic accounting.

    Clients are arbitrary string names (``"slow_path"``,
    ``"preconstruct"``); :meth:`fetch_line` returns the access latency
    and whether it missed.  Tag state is shared across clients — a line
    prefetched by the preconstruction engine later hits for the slow
    path, which is exactly the side-channel prefetching benefit the
    paper measures in Table 3.
    """

    def __init__(self, config: ICacheConfig | None = None) -> None:
        self.config = config or ICacheConfig()
        line = self.config.line_bytes
        self._lines: SetAssociativeCache[int, bool] = SetAssociativeCache(
            num_sets=self.config.num_sets,
            ways=self.config.ways,
            index_fn=lambda addr: addr // line,
        )
        self.traffic: dict[str, FetchTraffic] = {}

    # ------------------------------------------------------------------
    def line_address(self, pc: int) -> int:
        return pc - (pc % self.config.line_bytes)

    def _client(self, name: str) -> FetchTraffic:
        if name not in self.traffic:
            self.traffic[name] = FetchTraffic()
        return self.traffic[name]

    # ------------------------------------------------------------------
    def fetch_line(self, pc: int, client: str,
                   instructions: int = 1) -> tuple[int, bool]:
        """Access the line containing ``pc`` on behalf of ``client``.

        ``instructions`` is how many instructions this access supplies
        (for traffic accounting).  Returns ``(latency_cycles, missed)``.
        A miss fills the line (perfect L2 — no further misses).
        """
        line_addr = self.line_address(pc)
        traffic = self._client(client)
        traffic.lines_accessed += 1
        traffic.instructions_supplied += instructions
        if self._lines.lookup(line_addr) is not None:
            return self.config.hit_latency, False
        self._lines.insert(line_addr, True)
        traffic.misses += 1
        traffic.instructions_from_misses += instructions
        return self.config.miss_latency, True

    def contains_line(self, pc: int) -> bool:
        """Non-destructive probe (no counters, no fill)."""
        return self.line_address(pc) in self._lines

    # ------------------------------------------------------------------
    @property
    def total_misses(self) -> int:
        return sum(t.misses for t in self.traffic.values())

    @property
    def total_instructions_supplied(self) -> int:
        return sum(t.instructions_supplied for t in self.traffic.values())

    def client_traffic(self, name: str) -> FetchTraffic:
        return self._client(name)
