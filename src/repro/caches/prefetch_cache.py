"""Prefetch caches that decouple I-cache fetch from trace construction.

Paper, §3.3.1: each of the four prefetch caches holds 256 instructions,
is fully associative, and is allowed to *fill up* — lines are never
replaced; when the cache is full, preconstruction for its associated
region terminates.  This is one of the two resource bounds on a
region's preconstruction effort (the other is preconstruction-buffer
availability).
"""

from __future__ import annotations

from repro.isa import INSTRUCTION_BYTES


class PrefetchCache:
    """A fill-up instruction store for one preconstruction region."""

    def __init__(self, capacity_instructions: int = 256,
                 line_bytes: int = 64) -> None:
        if capacity_instructions <= 0:
            raise ValueError("capacity must be positive")
        line_instructions = line_bytes // INSTRUCTION_BYTES
        if capacity_instructions % line_instructions:
            raise ValueError("capacity must be a whole number of lines")
        self.capacity_lines = capacity_instructions // line_instructions
        self.line_bytes = line_bytes
        self._lines: set[int] = set()

    # ------------------------------------------------------------------
    def line_address(self, pc: int) -> int:
        return pc - (pc % self.line_bytes)

    def contains(self, pc: int) -> bool:
        # line_address() inlined: probed once per constructor step.
        return pc - (pc % self.line_bytes) in self._lines

    @property
    def full(self) -> bool:
        return len(self._lines) >= self.capacity_lines

    @property
    def occupancy_lines(self) -> int:
        return len(self._lines)

    # ------------------------------------------------------------------
    def add_line(self, pc: int) -> bool:
        """Record the line containing ``pc``.

        Returns ``False`` when the cache is already full and the line is
        absent — the signal that the region has hit its fetch bound.
        Adding an already-present line always succeeds (no growth).
        """
        line = pc - (pc % self.line_bytes)
        lines = self._lines
        if line in lines:
            return True
        if len(lines) >= self.capacity_lines:
            return False
        lines.add(line)
        return True

    def reset(self) -> None:
        """Empty the cache for reuse by a new region."""
        self._lines.clear()
