"""Next-N-line instruction prefetching: the classic baseline.

On every slow-path trace fetch (a demand miss in trace-cache terms),
queue the next :data:`NEXT_LINES` sequential I-cache lines after the
trace's last line.  Sequential prefetching is the floor every
sophisticated frontend mechanism must beat; it exploits straight-line
code layout and nothing else.

Storage model: next-line prefetching needs no history table — the
budget only bounds the outstanding-request queue, so it is effectively
the storage-free baseline of the zoo (Figure-5-style equal-area
comparisons give it the same ``pb_entries`` budget as everyone else,
which it uses only as queue depth).
"""

from __future__ import annotations

from typing import ClassVar, Optional

from repro.caches import InstructionCache
from repro.frontends.base import (
    LinePrefetcher,
    MechanismContext,
    register_mechanism,
)
from repro.trace import Trace

#: Sequential lines queued after each slow-path trace.
NEXT_LINES = 4


@register_mechanism
class NextLinePrefetcher(LinePrefetcher):
    """Miss-triggered sequential (next-N-line) I-cache prefetcher."""

    name: ClassVar[str] = "nextline"
    icache_client: ClassVar[str] = "nextline"

    def __init__(self, icache: InstructionCache, budget_entries: int,
                 code_end: int) -> None:
        super().__init__(icache, budget_entries)
        self._code_end = code_end

    @classmethod
    def build(cls, context: MechanismContext
              ) -> Optional["NextLinePrefetcher"]:
        if context.budget_entries <= 0:
            return None
        return cls(context.icache, context.budget_entries,
                   context.image.code_end)

    # ------------------------------------------------------------------
    def on_slow_path(self, trace: Trace) -> None:
        line_bytes = self.icache.config.line_bytes
        last_line = self.icache.line_address(trace.pcs[-1])
        for step in range(1, NEXT_LINES + 1):
            line_addr = last_line + step * line_bytes
            if line_addr >= self._code_end:
                break
            self.enqueue_line(line_addr)

    def observe_dispatch(self, trace: Trace) -> None:
        """Purely miss-triggered: the dispatch stream is not consulted."""
