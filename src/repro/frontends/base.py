"""The frontend-mechanism seam: one interface, many prefetchers.

The preconstruction engine occupies a well-defined seam in the
frontend simulation: it observes the retired trace stream, is funded
by the slow path's *idle* cycles, and fills storage (trace cache /
preconstruction buffers / I-cache) ahead of fetch.  The paper's
competition — record-replay instruction prefetching and program-map
traversal fetching — occupies exactly the same seam, so this module
extracts it as an abstract base class and a registry, letting every
mechanism flow through the experiment runner, result cache, obs
manifests and differential-validation oracles unchanged.

Call protocol, per dispatched trace (driven by
:class:`repro.sim.frontend_runner.FrontendSimulation`):

1. :meth:`~FrontendMechanism.probe` on a trace-cache miss — a
   mechanism holding the trace in a side buffer promotes it and
   returns ``True`` (counted as a buffer hit);
2. :meth:`~FrontendMechanism.on_slow_path` just before an absent
   trace is fetched over the slow path (miss-triggered training);
3. :meth:`~FrontendMechanism.observe_dispatch` with the retired
   trace (dispatch-stream monitoring);
4. :meth:`~FrontendMechanism.tick` with the idle slow-path cycles the
   trace left behind — the only budget a mechanism may spend on the
   shared I-cache port.

Import discipline: this package sits *below* :mod:`repro.sim` — it may
import the building blocks (``core``, ``trace``, ``caches``,
``branch``, ``program``, lazily ``static``) but never the simulation
drivers or the experiment runner.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, ClassVar, Optional, TypeVar

from repro.branch import BimodalPredictor
from repro.caches import InstructionCache
from repro.core import PreconstructionConfig
from repro.program import ProgramImage
from repro.trace import SelectionConfig, Trace, TraceCache, TraceID


@dataclass
class MechanismContext:
    """Everything a mechanism may wire itself to at construction time.

    Built by the frontend simulation; carrying the shared structures in
    one bundle keeps mechanism constructors uniform (and keeps this
    package from importing :mod:`repro.sim`).
    """

    image: ProgramImage
    icache: InstructionCache
    bimodal: BimodalPredictor
    trace_cache: TraceCache
    selection: SelectionConfig
    #: Storage budget in trace-cache-equivalent entries (64 bytes each)
    #: — the same area currency as ``pb_entries``, so Figure-5-style
    #: equal-area comparisons line up across mechanisms.  ``0`` means
    #: the mechanism is unconfigured (baseline frontend).
    budget_entries: int
    #: Honour ``FrontendConfig.static_seed`` (preconstruction only).
    static_seed: bool
    #: Hardware parameters for the preconstruction mechanism; ``None``
    #: for every other mechanism.
    preconstruction: Optional[PreconstructionConfig]


class FrontendMechanism(ABC):
    """One competing frontend fill/prefetch mechanism.

    Subclasses set the two class-level names and implement
    :meth:`observe_dispatch`; the remaining hooks default to no-ops so
    a minimal mechanism only reacts to the dispatch stream.
    """

    #: Registry key (``ExperimentSpec.mechanism`` value).
    name: ClassVar[str] = ""
    #: I-cache traffic-accounting client name; the simulation mirrors
    #: this client's counters into ``FrontendStats`` (Table 2).
    icache_client: ClassVar[str] = "preconstruct"

    @classmethod
    @abstractmethod
    def build(cls, context: MechanismContext) -> Optional["FrontendMechanism"]:
        """Construct from ``context``; ``None`` when unconfigured
        (zero budget) — the simulation then runs the bare baseline."""

    def attach_obs(self, bus: Any) -> None:
        """Attach an event bus (:class:`repro.obs.ObsBus`); optional."""

    def probe(self, trace_id: TraceID) -> bool:
        """Trace-cache miss: promote ``trace_id`` from mechanism-side
        storage into the trace cache if held.  ``True`` counts as a
        buffer hit (the dispatch proceeds as a trace-cache hit)."""
        return False

    def on_slow_path(self, trace: Trace) -> None:
        """``trace`` is about to be fetched over the slow path."""

    @abstractmethod
    def observe_dispatch(self, trace: Trace) -> None:
        """``trace`` just dispatched (retired-stream monitoring)."""

    def tick(self, idle_cycles: int) -> None:
        """Spend up to ``idle_cycles`` of idle slow-path time."""


_REGISTRY: dict[str, type[FrontendMechanism]] = {}

M = TypeVar("M", bound=type[FrontendMechanism])


def register_mechanism(cls: M) -> M:
    """Class decorator: add ``cls`` to the mechanism registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"mechanism {cls.name!r} already registered "
                         f"by {existing.__name__}")
    _REGISTRY[cls.name] = cls
    return cls


def mechanism_names() -> tuple[str, ...]:
    """Every registered mechanism name, sorted."""
    return tuple(sorted(_REGISTRY))


def create_mechanism(name: str,
                     context: MechanismContext
                     ) -> Optional[FrontendMechanism]:
    """Instantiate mechanism ``name`` for ``context``.

    Returns ``None`` when the mechanism is unconfigured for this
    context (budget of zero) — the frontend then runs without any fill
    mechanism, which is the baseline trace processor.
    """
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(f"unknown frontend mechanism {name!r}; "
                         f"choose from {mechanism_names()}")
    return cls.build(context)


class LinePrefetcher(FrontendMechanism):
    """Shared machinery for the I-cache-side prefetchers.

    The non-preconstruction mechanisms all reduce to: decide *which*
    instruction-cache lines to pull in, queue them, and spend idle
    slow-path cycles issuing one line fetch per cycle on the shared
    I-cache port.  Lines already resident are dropped at issue time
    (the probe is free; the paper's constructors pay the same way).
    """

    def __init__(self, icache: InstructionCache, budget_entries: int) -> None:
        self.icache = icache
        self.budget_entries = budget_entries
        #: Pending line addresses, deduplicated, FIFO, bounded by the
        #: storage budget (the queue is the mechanism's request table).
        self._queue: list[int] = []
        self._queued: set[int] = set()
        self.lines_requested = 0
        self.lines_prefetched = 0

    # ------------------------------------------------------------------
    def enqueue_line(self, line_addr: int) -> None:
        if line_addr in self._queued:
            return
        if len(self._queue) >= self.budget_entries:
            return
        self.lines_requested += 1
        self._queue.append(line_addr)
        self._queued.add(line_addr)

    def enqueue_pc(self, pc: int) -> None:
        self.enqueue_line(self.icache.line_address(pc))

    def pending(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    def tick(self, idle_cycles: int) -> None:
        """One queued line fetch per idle cycle on the I-cache port."""
        issued = 0
        while issued < idle_cycles and self._queue:
            line_addr = self._queue.pop(0)
            self._queued.discard(line_addr)
            issued += 1
            if self.icache.contains_line(line_addr):
                continue
            self.icache.fetch_line(line_addr, self.icache_client,
                                   instructions=0)
            self.lines_prefetched += 1


__all__ = [
    "FrontendMechanism",
    "LinePrefetcher",
    "MechanismContext",
    "create_mechanism",
    "mechanism_names",
    "register_mechanism",
]
