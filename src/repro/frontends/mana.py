"""MANA-style record-replay instruction prefetching.

After MANA (arxiv 2102.01764): the frontend's I-cache miss sequence is
highly repetitive, so record it once and replay it ahead of fetch.
The committed line stream is cut into *spatial regions* — a trigger
line plus the lines touched within the next :data:`REGION_LINES`
lines of address space.  Each region compresses into one record
(trigger address + footprint bitmap ~ a few bytes, modelled here as
one 64-byte storage entry).  When the dispatch stream re-enters a
recorded trigger line, the stored footprint is replayed: its lines are
queued and prefetched into the shared I-cache during idle slow-path
cycles, so later slow-path fetches of that region hit.

Differences from the real MANA kept deliberately simple: records chain
implicitly through the dispatch stream (re-triggering on every region
entry) instead of through explicit successor pointers, and the record
table is plain LRU.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import ClassVar, Optional

from repro.caches import InstructionCache
from repro.frontends.base import (
    LinePrefetcher,
    MechanismContext,
    register_mechanism,
)
from repro.trace import Trace

#: Spatial-region span, in I-cache lines, starting at the trigger.
REGION_LINES = 8


@register_mechanism
class ManaPrefetcher(LinePrefetcher):
    """Record-replay prefetcher keyed on spatial-region triggers."""

    name: ClassVar[str] = "mana"
    icache_client: ClassVar[str] = "mana"

    def __init__(self, icache: InstructionCache,
                 budget_entries: int) -> None:
        super().__init__(icache, budget_entries)
        #: Trigger line -> footprint line set; LRU, one storage entry
        #: per record, bounded by the budget (minus the request queue's
        #: share — both live in the same area, split evenly).
        self._records: OrderedDict[int, set[int]] = OrderedDict()
        self._record_capacity = max(1, budget_entries // 2)
        self.budget_entries = max(1, budget_entries - self._record_capacity)
        self._region_base: Optional[int] = None
        self._footprint: set[int] = set()
        self.records_replayed = 0

    @classmethod
    def build(cls, context: MechanismContext) -> Optional["ManaPrefetcher"]:
        if context.budget_entries <= 0:
            return None
        return cls(context.icache, context.budget_entries)

    # ------------------------------------------------------------------
    def observe_dispatch(self, trace: Trace) -> None:
        line_bytes = self.icache.config.line_bytes
        span = REGION_LINES * line_bytes
        for line_addr in trace.lines(line_bytes):
            base = self._region_base
            if base is not None and 0 <= line_addr - base < span:
                self._footprint.add(line_addr)
                continue
            # Region boundary: commit the finished record, replay the
            # one recorded (if any) for the region being entered.
            if base is not None:
                self._commit(base, self._footprint)
            self._region_base = line_addr
            self._footprint = {line_addr}
            recorded = self._records.get(line_addr)
            if recorded is not None:
                self._records.move_to_end(line_addr)
                self.records_replayed += 1
                for footprint_line in sorted(recorded):
                    self.enqueue_line(footprint_line)

    def _commit(self, trigger: int, footprint: set[int]) -> None:
        existing = self._records.get(trigger)
        if existing is not None:
            existing |= footprint
            self._records.move_to_end(trigger)
            return
        self._records[trigger] = set(footprint)
        while len(self._records) > self._record_capacity:
            self._records.popitem(last=False)

    @property
    def records_held(self) -> int:
        return len(self._records)
