"""Trace preconstruction behind the mechanism interface.

A thin adapter over :class:`repro.core.PreconstructionEngine` — every
hook delegates 1:1, so a run through the mechanism seam is
byte-identical to the historical direct wiring.  The engine stays
exposed as :attr:`engine` (and as ``FrontendResult.preconstruction``)
because the dynamic-partition extension repartitions its buffers in
place.
"""

from __future__ import annotations

from typing import Any, ClassVar, Optional

from repro.core import PreconstructionEngine
from repro.frontends.base import (
    FrontendMechanism,
    MechanismContext,
    register_mechanism,
)
from repro.trace import Trace, TraceID


@register_mechanism
class PreconstructionMechanism(FrontendMechanism):
    """The paper's mechanism: idle-cycle-funded trace preconstruction."""

    name: ClassVar[str] = "preconstruction"
    icache_client: ClassVar[str] = "preconstruct"

    def __init__(self, engine: PreconstructionEngine) -> None:
        self.engine = engine

    @classmethod
    def build(cls, context: MechanismContext
              ) -> Optional["PreconstructionMechanism"]:
        if context.preconstruction is None:
            return None
        static_seeds: tuple[int, ...] = ()
        if context.static_seed:
            from repro.static.seeding import compute_static_seeds
            static_seeds = tuple(
                s.pc for s in compute_static_seeds(context.image))
        return cls(PreconstructionEngine(
            image=context.image, icache=context.icache,
            bimodal=context.bimodal, trace_cache=context.trace_cache,
            config=context.preconstruction,
            selection=context.selection,
            static_seeds=static_seeds))

    # ------------------------------------------------------------------
    def attach_obs(self, bus: Any) -> None:
        self.engine.attach_obs(bus)

    def probe(self, trace_id: TraceID) -> bool:
        return self.engine.probe_and_promote(trace_id) is not None

    def observe_dispatch(self, trace: Trace) -> None:
        self.engine.observe_dispatch(trace)

    def tick(self, idle_cycles: int) -> None:
        self.engine.tick(idle_cycles)
