"""Program-map traversal fetching.

After the high-level program-map fetcher of arxiv 2406.06738: instead
of recording past miss behaviour, traverse a *map* of the program —
here the statically recovered CFG from :mod:`repro.static` — ahead of
the fetch point, pulling the lines of upcoming basic blocks into the
I-cache before the slow path demands them.

On every dispatched trace the walker starts at the trace's dynamic
continuation (``trace.next_pc``, which for a trace ending in a call is
the callee entry — the dynamic stream steers the traversal across
procedure boundaries the intra-procedural map cannot follow) and walks
breadth-first over block successors, queueing each visited block's
lines.  Conditional paths fan out, so the walk explores both sides of
every branch up to a budget-bounded frontier.

Storage model: the map itself is program metadata (held off to the
side, as the paper's proposal stores its map in memory); the area
budget bounds the traversal frontier and request queue.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, ClassVar, Optional

from repro.frontends.base import (
    LinePrefetcher,
    MechanismContext,
    register_mechanism,
)
from repro.program import ProgramImage
from repro.trace import Trace

if TYPE_CHECKING:
    from repro.caches import InstructionCache
    from repro.static.recovery import RecoveredCFG

#: Blocks visited per dispatched trace (the walk frontier), further
#: clamped by the storage budget.
MAX_BLOCKS_PER_WALK = 12


@register_mechanism
class ProgramMapFetcher(LinePrefetcher):
    """BFS over the recovered CFG ahead of the dispatch point."""

    name: ClassVar[str] = "pmap"
    icache_client: ClassVar[str] = "pmap"

    def __init__(self, icache: "InstructionCache", budget_entries: int,
                 image: ProgramImage) -> None:
        super().__init__(icache, budget_entries)
        self._image = image
        self._cfg: Optional["RecoveredCFG"] = None
        self._walk_blocks = min(MAX_BLOCKS_PER_WALK, budget_entries)
        self.blocks_walked = 0

    @classmethod
    def build(cls, context: MechanismContext
              ) -> Optional["ProgramMapFetcher"]:
        if context.budget_entries <= 0:
            return None
        return cls(context.icache, context.budget_entries, context.image)

    # ------------------------------------------------------------------
    @property
    def cfg(self) -> "RecoveredCFG":
        """The program map, recovered once on first use."""
        if self._cfg is None:
            from repro.static import recover_cfg
            self._cfg = recover_cfg(self._image)
        return self._cfg

    def observe_dispatch(self, trace: Trace) -> None:
        cfg = self.cfg
        start_block = cfg.block_at(trace.next_pc)
        if start_block is None:
            return
        line_bytes = self.icache.config.line_bytes
        visited: set[int] = set()
        frontier: deque[int] = deque([start_block.start])
        while frontier and len(visited) < self._walk_blocks:
            block_start = frontier.popleft()
            if block_start in visited:
                continue
            block = cfg.blocks.get(block_start)
            if block is None:
                continue
            visited.add(block_start)
            line_addr = self.icache.line_address(block.start)
            while line_addr < block.end:
                self.enqueue_line(line_addr)
                line_addr += line_bytes
            for successor in block.successors:
                if successor not in visited:
                    frontier.append(successor)
        self.blocks_walked += len(visited)
