"""The competing-frontend zoo.

One interface (:class:`FrontendMechanism`), four mechanisms behind it:

==================  ====================================================
``preconstruction``  The paper's idle-cycle-funded trace preconstruction
                     (fills the trace cache / preconstruction buffers).
``mana``             MANA-style record-replay I-cache prefetcher keyed
                     on spatial-region triggers (arxiv 2102.01764).
``pmap``             Program-map traversal fetcher walking the
                     statically recovered CFG ahead of dispatch
                     (arxiv 2406.06738).
``nextline``         Next-N-line sequential prefetching — the classic
                     storage-free baseline.
==================  ====================================================

Every mechanism plugs into the same simulation seam and the same
area budget (``pb_entries``, 64-byte entries), so
``repro compare`` sweeps are equal-area head-to-head comparisons.
"""

from repro.frontends.base import (
    FrontendMechanism,
    LinePrefetcher,
    MechanismContext,
    create_mechanism,
    mechanism_names,
    register_mechanism,
)
from repro.frontends.mana import ManaPrefetcher
from repro.frontends.nextline import NextLinePrefetcher
from repro.frontends.pmap import ProgramMapFetcher
from repro.frontends.preconstruction import PreconstructionMechanism

__all__ = [
    "FrontendMechanism",
    "LinePrefetcher",
    "ManaPrefetcher",
    "MechanismContext",
    "NextLinePrefetcher",
    "PreconstructionMechanism",
    "ProgramMapFetcher",
    "create_mechanism",
    "mechanism_names",
    "register_mechanism",
]
