"""Trace selection: the deterministic rules that delimit traces.

Both the processor's fill unit (observing the dynamic stream) and the
preconstruction engine's trace constructors (walking static code) must
delimit traces *identically*, or preconstructed traces will not align
with what the processor later asks for (§2.2 of the paper).  All
stopping rules therefore live in one place — :class:`TraceBuilder` —
and both consumers build traces through it.

Stopping rules (paper §2.2, §4.1):

* maximum length of 16 instructions;
* traces end at return instructions ("forces traces to end at return
  instructions, so the first trace of a region following a return will
  start at the first instruction");
* traces end at register-indirect jumps/calls (targets are statically
  opaque; ending there also bounds preconstruction regions);
* the **alignment heuristic**: a trace that hits the length limit is
  truncated so that it ends a multiple of four instructions beyond the
  last backward branch it contains ("we use the heuristic of stopping a
  multiple of four instructions beyond a backward branch for both the
  base trace processor and the trace processor with preconstruction").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.engine.stream import StreamRecord
from repro.isa import Instruction
from repro.trace.trace import MAX_TRACE_LENGTH, Trace, TraceID


@dataclass(frozen=True)
class SelectionConfig:
    """Trace-delimiting rules (ablation-tunable)."""

    max_length: int = MAX_TRACE_LENGTH
    align_multiple: int = 4     # 0 disables the alignment heuristic
    end_at_returns: bool = True
    end_at_indirect: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.max_length <= MAX_TRACE_LENGTH:
            raise ValueError("max_length must be in 1..16")
        if self.align_multiple < 0:
            raise ValueError("align_multiple must be >= 0")


class TraceBuilder:
    """Accumulates dynamic instructions and emits delimited traces.

    Call :meth:`add` per instruction; a completed :class:`Trace` is
    returned when a stopping rule fires (``None`` otherwise).  On
    length-limit truncation the leftover instructions remain buffered
    as the beginning of the next trace, preserving alignment.
    """

    def __init__(self, config: SelectionConfig | None = None) -> None:
        self.config = config or SelectionConfig()
        self._entries: list[tuple[int, Instruction, bool, int, int]] = []
        #: Effective addresses (0 for non-memory) of the entries of the
        #: most recently emitted trace — a side channel because traces
        #: are cached/shared objects while addresses are per-instance.
        self.last_addresses: tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def pending_start_pc(self) -> Optional[int]:
        return self._entries[0][0] if self._entries else None

    # ------------------------------------------------------------------
    def add(self, pc: int, inst: Instruction, taken: bool,
            next_pc: int, mem_addr: int = 0) -> Optional[Trace]:
        """Append one dynamic instruction; return a trace if one completed."""
        self._entries.append((pc, inst, taken, next_pc, mem_addr))
        cfg = self.config
        if cfg.end_at_returns and inst.is_return:
            return self._emit(len(self._entries))
        if cfg.end_at_indirect and inst.is_indirect:
            return self._emit(len(self._entries))
        if len(self._entries) >= cfg.max_length:
            return self._emit(self._aligned_cut())
        return None

    def flush(self) -> Optional[Trace]:
        """Emit whatever is buffered (end of stream / region).

        The result is marked ``partial``: it was delimited by the
        measurement boundary, not by a selection rule, so its identity
        may collide with a rule-delimited trace and it must not be
        installed in any trace store.
        """
        if not self._entries:
            return None
        return self._emit(len(self._entries), partial=True)

    def reset(self) -> None:
        self._entries.clear()

    def snapshot_entries(self
                         ) -> list[tuple[int, Instruction, bool, int, int]]:
        """Copy of the buffered entries (for constructor backtracking)."""
        return list(self._entries)

    def restore_entries(
            self,
            entries: list[tuple[int, Instruction, bool, int, int]]
    ) -> None:
        """Replace the buffer (constructor decision-point resumption)."""
        self._entries = list(entries)

    # ------------------------------------------------------------------
    def _aligned_cut(self) -> int:
        """Length to cut at when the size limit fires.

        With alignment enabled and a backward branch present, the cut
        lands ``k * align_multiple`` instructions beyond the last
        backward branch (largest such length not exceeding the limit);
        otherwise the full buffer is emitted.
        """
        n = len(self._entries)
        align = self.config.align_multiple
        if not align:
            return n
        last_backward = None
        for i in range(n - 1, -1, -1):
            if self._entries[i][1].is_backward_branch():
                last_backward = i
                break
        if last_backward is None:
            return n
        beyond = n - last_backward - 1
        cut = last_backward + 1 + (beyond // align) * align
        return cut

    def _emit(self, cut: int, partial: bool = False) -> Trace:
        assert 0 < cut <= len(self._entries)
        entries = self._entries[:cut]
        self._entries = self._entries[cut:]
        pcs = tuple(e[0] for e in entries)
        instructions = tuple(e[1] for e in entries)
        outcomes = tuple(e[2] for e in entries
                         if e[1].is_conditional_branch)
        self.last_addresses = tuple(e[4] for e in entries)
        last_pc, last_inst, _, last_next = entries[-1][:4]
        return Trace(
            trace_id=TraceID(start_pc=pcs[0], outcomes=outcomes),
            instructions=instructions,
            pcs=pcs,
            next_pc=last_next,
            ends_in_call=last_inst.is_call,
            ends_in_return=last_inst.is_return,
            partial=partial,
        )


class TraceSelector:
    """Stream-facing wrapper: partitions a dynamic stream into traces."""

    def __init__(self, config: SelectionConfig | None = None) -> None:
        self._builder = TraceBuilder(config)

    @property
    def config(self) -> SelectionConfig:
        return self._builder.config

    def feed(self, record: StreamRecord) -> Optional[Trace]:
        """Feed one committed instruction; returns a trace when complete."""
        return self._builder.add(record.pc, record.inst, record.taken,
                                 record.next_pc, record.mem_addr)

    def flush(self) -> Optional[Trace]:
        return self._builder.flush()

    @property
    def last_addresses(self) -> tuple[int, ...]:
        """Effective addresses of the most recently emitted trace."""
        return self._builder.last_addresses


def traces_of_stream(stream, config: SelectionConfig | None = None
                     ) -> list[Trace]:
    """Partition a full dynamic stream into its trace sequence."""
    selector = TraceSelector(config)
    out = []
    for record in stream:
        trace = selector.feed(record)
        if trace is not None:
            out.append(trace)
    tail = selector.flush()
    if tail is not None:
        out.append(tail)
    return out
