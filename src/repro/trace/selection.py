"""Trace selection: the deterministic rules that delimit traces.

Both the processor's fill unit (observing the dynamic stream) and the
preconstruction engine's trace constructors (walking static code) must
delimit traces *identically*, or preconstructed traces will not align
with what the processor later asks for (§2.2 of the paper).  All
stopping rules therefore live in one place — :class:`TraceBuilder` —
and both consumers build traces through it.

Stopping rules (paper §2.2, §4.1):

* maximum length of 16 instructions;
* traces end at return instructions ("forces traces to end at return
  instructions, so the first trace of a region following a return will
  start at the first instruction");
* traces end at register-indirect jumps/calls (targets are statically
  opaque; ending there also bounds preconstruction regions);
* the **alignment heuristic**: a trace that hits the length limit is
  truncated so that it ends a multiple of four instructions beyond the
  last backward branch it contains ("we use the heuristic of stopping a
  multiple of four instructions beyond a backward branch for both the
  base trace processor and the trace processor with preconstruction").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.engine.stream import StreamRecord
from repro.isa import Instruction
from repro.trace.trace import MAX_TRACE_LENGTH, Trace, TraceID


@dataclass(frozen=True)
class SelectionConfig:
    """Trace-delimiting rules (ablation-tunable)."""

    max_length: int = MAX_TRACE_LENGTH
    align_multiple: int = 4     # 0 disables the alignment heuristic
    end_at_returns: bool = True
    end_at_indirect: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.max_length <= MAX_TRACE_LENGTH:
            raise ValueError("max_length must be in 1..16")
        if self.align_multiple < 0:
            raise ValueError("align_multiple must be >= 0")


class TraceBuilder:
    """Accumulates dynamic instructions and emits delimited traces.

    Call :meth:`add` per instruction; a completed :class:`Trace` is
    returned when a stopping rule fires (``None`` otherwise).  On
    length-limit truncation the leftover instructions remain buffered
    as the beginning of the next trace, preserving alignment.
    """

    def __init__(self, config: SelectionConfig | None = None) -> None:
        self.config = config or SelectionConfig()
        self._entries: list[tuple[int, Instruction, bool, int, int]] = []
        #: Branch outcomes of the buffered entries, maintained
        #: incrementally so :meth:`_emit` need not re-scan the entries.
        self._outcomes: list[bool] = []
        #: Effective addresses (0 for non-memory) of the entries of the
        #: most recently emitted trace — a side channel because traces
        #: are cached/shared objects while addresses are per-instance.
        self.last_addresses: tuple[int, ...] = ()
        #: Interning table for emitted trace identities: the same
        #: dynamic path re-emits the same (start_pc, outcomes) many
        #: times, and an interned TraceID makes every downstream
        #: equality check hit the identity fast path.
        self._id_intern: dict[tuple[int, tuple[bool, ...]], TraceID] = {}
        #: Interning table for whole traces.  Valid only while every
        #: indirect transfer ends its trace (the default): then the
        #: instruction path is a pure function of (start_pc, outcomes)
        #: and the image, and ``next_pc`` disambiguates a trailing
        #: indirect's target — so the same key always denotes an
        #: identical trace and the object can be reused outright
        #: (sharing its line-run memo across all its occurrences).
        self._trace_intern: dict[tuple[TraceID, int], Trace] = {}
        self._intern_traces = self.config.end_at_indirect
        # Stopping rules flattened out of the config dataclass: add()
        # runs once per dynamic and once per preconstructed instruction.
        self._end_at_returns = self.config.end_at_returns
        self._end_at_indirect = self.config.end_at_indirect
        self._max_length = self.config.max_length

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def pending_start_pc(self) -> Optional[int]:
        return self._entries[0][0] if self._entries else None

    # ------------------------------------------------------------------
    def add(self, pc: int, inst: Instruction, taken: bool,
            next_pc: int, mem_addr: int = 0) -> Optional[Trace]:
        """Append one dynamic instruction; return a trace if one completed."""
        entries = self._entries
        entries.append((pc, inst, taken, next_pc, mem_addr))
        if inst.is_conditional_branch:
            self._outcomes.append(taken)
        if inst.is_return and self._end_at_returns:
            return self._emit(len(entries))
        if inst.is_indirect and self._end_at_indirect:
            return self._emit(len(entries))
        if len(entries) >= self._max_length:
            return self._emit(self._aligned_cut())
        return None

    def flush(self) -> Optional[Trace]:
        """Emit whatever is buffered (end of stream / region).

        The result is marked ``partial``: it was delimited by the
        measurement boundary, not by a selection rule, so its identity
        may collide with a rule-delimited trace and it must not be
        installed in any trace store.
        """
        if not self._entries:
            return None
        return self._emit(len(self._entries), partial=True)

    def reset(self) -> None:
        self._entries.clear()
        self._outcomes.clear()

    def snapshot_entries(self
                         ) -> list[tuple[int, Instruction, bool, int, int]]:
        """Copy of the buffered entries (for constructor backtracking)."""
        return list(self._entries)

    def restore_entries(
            self,
            entries: list[tuple[int, Instruction, bool, int, int]]
    ) -> None:
        """Replace the buffer (constructor decision-point resumption)."""
        self._entries = list(entries)
        self._outcomes = [taken for _, inst, taken, _, _ in entries
                          if inst.is_conditional_branch]

    # ------------------------------------------------------------------
    def _aligned_cut(self) -> int:
        """Length to cut at when the size limit fires.

        With alignment enabled and a backward branch present, the cut
        lands ``k * align_multiple`` instructions beyond the last
        backward branch (largest such length not exceeding the limit);
        otherwise the full buffer is emitted.
        """
        n = len(self._entries)
        align = self.config.align_multiple
        if not align:
            return n
        last_backward = None
        entries = self._entries
        for i in range(n - 1, -1, -1):
            if entries[i][1].is_backward:
                last_backward = i
                break
        if last_backward is None:
            return n
        beyond = n - last_backward - 1
        cut = last_backward + 1 + (beyond // align) * align
        return cut

    def _emit(self, cut: int, partial: bool = False) -> Trace:
        assert 0 < cut <= len(self._entries)
        entries = self._entries[:cut]
        rest = self._entries[cut:]
        self._entries = rest

        # Split the incrementally-tracked outcomes at the cut: only a
        # length-limit truncation leaves entries behind, and then only a
        # few, so counting the leftover's branches is cheap.
        outcome_list = self._outcomes
        if rest:
            rest_branches = sum(
                1 for e in rest if e[1].is_conditional_branch)
            if rest_branches:
                emitted = len(outcome_list) - rest_branches
                outcomes = tuple(outcome_list[:emitted])
                self._outcomes = outcome_list[emitted:]
            else:
                outcomes = tuple(outcome_list)
                self._outcomes = []
        else:
            outcomes = tuple(outcome_list)
            self._outcomes = []

        self.last_addresses = tuple(e[4] for e in entries)
        last = entries[-1]
        last_next = last[3]
        key = (entries[0][0], outcomes)
        trace_id = self._id_intern.get(key)
        if trace_id is None:
            trace_id = TraceID(start_pc=key[0], outcomes=outcomes)
            self._id_intern[key] = trace_id

        intern = self._intern_traces and not partial
        if intern:
            memo_key = (trace_id, last_next)
            trace = self._trace_intern.get(memo_key)
            if trace is not None:
                return trace

        pcs: list[int] = []
        instructions: list[Instruction] = []
        for entry in entries:
            pcs.append(entry[0])
            instructions.append(entry[1])
        last_inst = last[1]
        trace = Trace(
            trace_id=trace_id,
            instructions=tuple(instructions),
            pcs=tuple(pcs),
            next_pc=last_next,
            ends_in_call=last_inst.is_call,
            ends_in_return=last_inst.is_return,
            partial=partial,
        )
        if intern:
            self._trace_intern[memo_key] = trace
        return trace


class TraceSelector:
    """Stream-facing wrapper: partitions a dynamic stream into traces."""

    def __init__(self, config: SelectionConfig | None = None) -> None:
        self._builder = TraceBuilder(config)

    @property
    def config(self) -> SelectionConfig:
        return self._builder.config

    def feed(self, record: StreamRecord) -> Optional[Trace]:
        """Feed one committed instruction; returns a trace when complete."""
        return self._builder.add(record.pc, record.inst, record.taken,
                                 record.next_pc, record.mem_addr)

    def flush(self) -> Optional[Trace]:
        return self._builder.flush()

    @property
    def last_addresses(self) -> tuple[int, ...]:
        """Effective addresses of the most recently emitted trace."""
        return self._builder.last_addresses


def traces_of_stream(stream, config: SelectionConfig | None = None
                     ) -> list[Trace]:
    """Partition a full dynamic stream into its trace sequence."""
    selector = TraceSelector(config)
    out = []
    for record in stream:
        trace = selector.feed(record)
        if trace is not None:
            out.append(trace)
    tail = selector.flush()
    if tail is not None:
        out.append(tail)
    return out
