"""The trace cache: 2-way set-associative, LRU, indexed by trace identity.

Paper §4.1: "We vary the size of the trace cache from 64 entries up to
1024 entries (4 Kbytes to 64 Kbytes).  The trace cache is 2-way set
associative and uses LRU replacement."  One entry holds one trace of up
to 16 four-byte instructions, hence 64 bytes per entry for the area
accounting used in the Figure 5 equal-area comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.caches import LRU, SetAssociativeCache, make_policy
from repro.trace.trace import MAX_TRACE_LENGTH, Trace, TraceID

BYTES_PER_ENTRY = MAX_TRACE_LENGTH * 4
"""Area accounting: one trace-cache entry is 64 bytes of storage."""


def _index_trace_id(trace_id: TraceID) -> int:
    """Set index: hash of start address folded with branch outcomes."""
    outcome_bits = 0
    for outcome in trace_id.outcomes:
        outcome_bits = (outcome_bits << 1) | outcome
    return (trace_id.start_pc >> 2) ^ (outcome_bits * 0x9E37)


@dataclass(frozen=True)
class TraceCacheConfig:
    entries: int = 512
    ways: int = 2
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.entries % self.ways:
            raise ValueError("entries must divide evenly into ways")

    @property
    def num_sets(self) -> int:
        return self.entries // self.ways

    @property
    def size_bytes(self) -> int:
        return self.entries * BYTES_PER_ENTRY


class TraceCache:
    """Primary trace cache."""

    def __init__(self, config: TraceCacheConfig | None = None) -> None:
        self.config = config or TraceCacheConfig()
        #: Optional :class:`repro.obs.ObsBus`; ``None`` (the default)
        #: keeps every instrumentation site a single dead branch.
        self.obs = None
        self._store: SetAssociativeCache[TraceID, Trace] = \
            SetAssociativeCache(
                num_sets=self.config.num_sets,
                ways=self.config.ways,
                index_fn=_index_trace_id,
                policy=make_policy(self.config.replacement,
                                   self.config.num_sets, self.config.ways),
            )

    # ------------------------------------------------------------------
    def lookup(self, trace_id: TraceID) -> Optional[Trace]:
        """Counted probe (updates LRU)."""
        return self._store.lookup(trace_id)

    def contains(self, trace_id: TraceID) -> bool:
        """Uncounted probe, used by the preconstruction dedup check."""
        return trace_id in self._store

    def insert(self, trace: Trace) -> Optional[Trace]:
        """Install a trace; returns the evicted trace, if any."""
        evicted = self._store.insert(trace.trace_id, trace)
        if self.obs:
            self.obs.emit("trace_cache", "fill",
                          pc=trace.trace_id.start_pc, len=len(trace))
            if evicted:
                victim = evicted[1]
                self.obs.emit("trace_cache", "evict",
                              pc=victim.trace_id.start_pc, len=len(victim))
        return evicted[1] if evicted else None

    def invalidate(self, trace_id: TraceID) -> bool:
        return self._store.invalidate(trace_id)

    # ------------------------------------------------------------------
    @property
    def stats(self):
        return self._store.stats

    @property
    def size_bytes(self) -> int:
        return self.config.size_bytes

    def occupancy(self) -> int:
        return self._store.occupancy()

    def resident_traces(self) -> list[Trace]:
        return [trace for _, trace in self._store.items()]
