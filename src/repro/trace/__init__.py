"""Trace substrate: trace identity, selection rules, and the trace cache."""

from repro.trace.selection import (
    SelectionConfig,
    TraceBuilder,
    TraceSelector,
    traces_of_stream,
)
from repro.trace.trace import MAX_TRACE_LENGTH, Trace, TraceID
from repro.trace.trace_cache import (
    BYTES_PER_ENTRY,
    TraceCache,
    TraceCacheConfig,
)

__all__ = [
    "SelectionConfig", "TraceBuilder", "TraceSelector", "traces_of_stream",
    "MAX_TRACE_LENGTH", "Trace", "TraceID", "BYTES_PER_ENTRY", "TraceCache",
    "TraceCacheConfig",
]
