"""Traces: snapshots of short segments of the dynamic instruction stream.

A trace is identified by its starting PC and the outcomes of the
conditional branches inside it (the paper indexes both the trace cache
and the preconstruction buffers "by hashing the starting address of the
trace with the branch outcomes").  Register-indirect transfers embed
their observed targets in the identity as well, since two dynamic paths
can otherwise share a start address and outcome vector while diverging
at a jump table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.isa import Instruction

MAX_TRACE_LENGTH = 16
"""Paper: 'Traces have a maximum length of 16 instructions.'"""


@dataclass(frozen=True, slots=True)
class TraceID:
    """Hashable identity of a trace.

    Trace identities are hashed on every trace-cache and
    preconstruction-buffer probe — several times per dispatched trace —
    so the hash is computed once at construction and cached.  Equality
    short-circuits on identity first: the selector interns the IDs it
    emits, so repeated traces usually compare as the same object.
    """

    start_pc: int
    outcomes: tuple[bool, ...]
    indirect_targets: tuple[int, ...] = ()
    _hash: int = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash",
            hash((self.start_pc, self.outcomes, self.indirect_targets)))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not TraceID:
            return NotImplemented
        return (self._hash == other._hash
                and self.start_pc == other.start_pc
                and self.outcomes == other.outcomes
                and self.indirect_targets == other.indirect_targets)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        bits = "".join("T" if o else "N" for o in self.outcomes)
        return f"{self.start_pc:#x}/{bits or '-'}"


@dataclass(frozen=True, slots=True)
class Trace:
    """A completed trace plus the metadata the frontend needs.

    ``next_pc`` is the address of the dynamically next instruction after
    the trace — where an *aligned* successor trace must begin.
    ``ends_in_call`` / ``ends_in_return`` drive the next-trace
    predictor's Return History Stack.
    """

    trace_id: TraceID
    instructions: tuple[Instruction, ...]
    pcs: tuple[int, ...]
    next_pc: int
    ends_in_call: bool
    ends_in_return: bool
    partial: bool = False
    """True only for a trace emitted by an end-of-stream flush: it was
    cut by the measurement boundary rather than a selection rule, so
    its identity may collide with the properly delimited trace from the
    same start point.  Partial traces must never be cached."""

    _line_runs: dict = field(default_factory=dict, init=False,
                             compare=False, repr=False)
    """Per-line-size memo of :meth:`line_runs`; traces are immutable,
    so the runs never change once computed."""

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError("empty trace")
        if len(self.instructions) > MAX_TRACE_LENGTH:
            raise ValueError("trace exceeds maximum length")
        if len(self.instructions) != len(self.pcs):
            raise ValueError("instructions/pcs length mismatch")
        if self.pcs[0] != self.trace_id.start_pc:
            raise ValueError("trace id start does not match first pc")

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def start_pc(self) -> int:
        return self.trace_id.start_pc

    @property
    def branch_count(self) -> int:
        return len(self.trace_id.outcomes)

    def last_instruction(self) -> Instruction:
        return self.instructions[-1]

    def backward_branch_positions(self) -> tuple[int, ...]:
        """Indices of backward conditional branches inside the trace."""
        return tuple(i for i, inst in enumerate(self.instructions)
                     if inst.is_backward_branch())

    def blocks_touched(self, line_bytes: int = 64) -> set[int]:
        """Cache-line addresses this trace's instructions occupy."""
        return {pc - (pc % line_bytes) for pc in self.pcs}

    def lines(self, line_bytes: int = 64) -> tuple[int, ...]:
        """Distinct cache-line addresses in first-touch order.

        The spatial footprint the I-cache-side prefetch mechanisms
        (:mod:`repro.frontends`) key on.  Unlike :meth:`blocks_touched`
        the order is preserved; unlike :meth:`line_runs` revisits are
        deduplicated.  Memoized like :meth:`line_runs`.
        """
        key = ("lines", line_bytes)
        memo = self._line_runs.get(key)
        if memo is None:
            seen: set[int] = set()
            out: list[int] = []
            for line, _count in self.line_runs(line_bytes):
                if line not in seen:
                    seen.add(line)
                    out.append(line)
            memo = tuple(out)
            self._line_runs[key] = memo
        return memo

    def line_runs(self, line_bytes: int) -> tuple[tuple[int, int], ...]:
        """Consecutive same-line runs of the trace's dynamic path.

        Returns ``((line_address, instruction_count), ...)`` — the
        access pattern the slow-path fetch unit presents to the I-cache.
        Memoized: the timing models walk this once per dynamic
        occurrence of the trace, and the pcs are immutable.
        """
        runs = self._line_runs.get(line_bytes)
        if runs is None:
            out: list[tuple[int, int]] = []
            run_line = -1
            run_count = 0
            for pc in self.pcs:
                line = pc - (pc % line_bytes)
                if line == run_line:
                    run_count += 1
                else:
                    if run_count:
                        out.append((run_line, run_count))
                    run_line, run_count = line, 1
            out.append((run_line, run_count))
            runs = tuple(out)
            self._line_runs[line_bytes] = runs
        return runs
