"""Traces: snapshots of short segments of the dynamic instruction stream.

A trace is identified by its starting PC and the outcomes of the
conditional branches inside it (the paper indexes both the trace cache
and the preconstruction buffers "by hashing the starting address of the
trace with the branch outcomes").  Register-indirect transfers embed
their observed targets in the identity as well, since two dynamic paths
can otherwise share a start address and outcome vector while diverging
at a jump table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa import Instruction

MAX_TRACE_LENGTH = 16
"""Paper: 'Traces have a maximum length of 16 instructions.'"""


@dataclass(frozen=True, slots=True)
class TraceID:
    """Hashable identity of a trace."""

    start_pc: int
    outcomes: tuple[bool, ...]
    indirect_targets: tuple[int, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        bits = "".join("T" if o else "N" for o in self.outcomes)
        return f"{self.start_pc:#x}/{bits or '-'}"


@dataclass(frozen=True, slots=True)
class Trace:
    """A completed trace plus the metadata the frontend needs.

    ``next_pc`` is the address of the dynamically next instruction after
    the trace — where an *aligned* successor trace must begin.
    ``ends_in_call`` / ``ends_in_return`` drive the next-trace
    predictor's Return History Stack.
    """

    trace_id: TraceID
    instructions: tuple[Instruction, ...]
    pcs: tuple[int, ...]
    next_pc: int
    ends_in_call: bool
    ends_in_return: bool
    partial: bool = False
    """True only for a trace emitted by an end-of-stream flush: it was
    cut by the measurement boundary rather than a selection rule, so
    its identity may collide with the properly delimited trace from the
    same start point.  Partial traces must never be cached."""

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError("empty trace")
        if len(self.instructions) > MAX_TRACE_LENGTH:
            raise ValueError("trace exceeds maximum length")
        if len(self.instructions) != len(self.pcs):
            raise ValueError("instructions/pcs length mismatch")
        if self.pcs[0] != self.trace_id.start_pc:
            raise ValueError("trace id start does not match first pc")

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def start_pc(self) -> int:
        return self.trace_id.start_pc

    @property
    def branch_count(self) -> int:
        return len(self.trace_id.outcomes)

    def last_instruction(self) -> Instruction:
        return self.instructions[-1]

    def backward_branch_positions(self) -> tuple[int, ...]:
        """Indices of backward conditional branches inside the trace."""
        return tuple(i for i, inst in enumerate(self.instructions)
                     if inst.is_backward_branch())

    def blocks_touched(self, line_bytes: int = 64) -> set[int]:
        """Cache-line addresses this trace's instructions occupy."""
        return {pc - (pc % line_bytes) for pc in self.pcs}
