"""Dynamic instruction stream records.

The functional engine emits one :class:`StreamRecord` per executed
instruction.  The record carries everything downstream consumers need:
the trace-selection FSM uses (pc, inst, next_pc); the bimodal predictor
trains on (pc, taken); the preconstruction monitor watches for calls
and backward branches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import Instruction


@dataclass(frozen=True, slots=True)
class StreamRecord:
    """One dynamic instruction instance.

    ``taken`` is meaningful only for conditional branches (False
    otherwise).  ``next_pc`` is the address of the dynamically next
    instruction — the branch/jump target when control transfers, the
    fall-through otherwise.  ``mem_addr`` is the effective address of a
    load/store (0 for non-memory instructions); the data-cache timing
    model replays it.
    """

    pc: int
    inst: Instruction
    taken: bool
    next_pc: int
    mem_addr: int = 0

    @property
    def is_control(self) -> bool:
        return self.inst.is_control
