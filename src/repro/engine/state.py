"""Architected state: register file and data memory.

Values are 32-bit two's-complement words.  Memory is word-addressed
(sparse dict keyed by byte address, addresses forced to word
alignment), initialised from the program image's data segment.
"""

from __future__ import annotations

from repro.isa import NUM_REGISTERS, ZERO

_MASK = 0xFFFF_FFFF


def to_signed(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as two's complement."""
    value &= _MASK
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def to_unsigned(value: int) -> int:
    """Truncate ``value`` to a 32-bit unsigned word."""
    return value & _MASK


class ArchState:
    """Register file plus data memory."""

    __slots__ = ("regs", "memory")

    def __init__(self, initial_data: dict[int, int] | None = None) -> None:
        self.regs = [0] * NUM_REGISTERS
        self.memory: dict[int, int] = {}
        if initial_data:
            for addr, value in initial_data.items():
                self.store(addr, value)

    def read(self, reg: int) -> int:
        return self.regs[reg]

    def write(self, reg: int, value: int) -> None:
        if reg != ZERO:
            self.regs[reg] = to_unsigned(value)

    def load(self, addr: int) -> int:
        return self.memory.get(addr & ~3, 0)

    def store(self, addr: int, value: int) -> None:
        self.memory[addr & ~3] = to_unsigned(value)
