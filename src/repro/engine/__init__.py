"""Functional execution engine producing the dynamic instruction stream."""

from repro.engine.functional import ExecutionError, FunctionalEngine
from repro.engine.state import ArchState, to_signed, to_unsigned
from repro.engine.stream import StreamRecord

__all__ = [
    "ExecutionError", "FunctionalEngine", "ArchState", "to_signed",
    "to_unsigned", "StreamRecord",
]
