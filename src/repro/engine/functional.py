"""Functional (architectural) executor for the repro ISA.

Executes a linked :class:`ProgramImage` instruction-at-a-time, producing
the dynamic instruction stream the timing models replay.  This is the
trace-driven substitute for the paper's execution-driven SimpleScalar
runs: the committed path is exact; wrong-path effects are approximated
in the timing layer.
"""

from __future__ import annotations

from typing import Iterator

from repro.engine.state import ArchState, to_signed, to_unsigned
from repro.engine.stream import StreamRecord
from repro.isa import INSTRUCTION_BYTES, Instruction, Kind, Opcode, RA
from repro.program import ProgramImage


class ExecutionError(RuntimeError):
    """Raised on wild control flow or other architecturally fatal events."""


class FunctionalEngine:
    """Architectural interpreter.

    Use :meth:`run` to obtain a bounded stream, or iterate :meth:`steps`
    for lazy generation.  The engine stops at ``HALT`` or when the
    instruction budget is exhausted, whichever comes first.
    """

    def __init__(self, image: ProgramImage) -> None:
        self.image = image
        self.state = ArchState(initial_data=image.data)
        self.pc = image.entry
        self.halted = False
        self.instructions_executed = 0
        self._mem_addr = 0

    # ------------------------------------------------------------------
    def run(self, max_instructions: int) -> list[StreamRecord]:
        """Execute up to ``max_instructions``, returning the stream."""
        out = []
        for record in self.steps():
            out.append(record)
            if len(out) >= max_instructions:
                break
        return out

    def steps(self) -> Iterator[StreamRecord]:
        """Lazily execute until ``HALT``."""
        while not self.halted:
            yield self.step()

    # ------------------------------------------------------------------
    def step(self) -> StreamRecord:
        """Execute one instruction and return its stream record."""
        if self.halted:
            raise ExecutionError("engine is halted")
        pc = self.pc
        try:
            inst = self.image.fetch(pc)
        except IndexError as exc:
            raise ExecutionError(str(exc)) from None
        self._mem_addr = 0
        taken, next_pc = self._execute(pc, inst)
        self.pc = next_pc
        self.instructions_executed += 1
        return StreamRecord(pc=pc, inst=inst, taken=taken, next_pc=next_pc,
                            mem_addr=self._mem_addr)

    # ------------------------------------------------------------------
    def _execute(self, pc: int, inst: Instruction) -> tuple[bool, int]:
        op = inst.op
        state = self.state
        read = state.read
        fall = pc + INSTRUCTION_BYTES

        if op is Opcode.ADD:
            state.write(inst.rd, read(inst.rs1) + read(inst.rs2))
        elif op is Opcode.SUB:
            state.write(inst.rd, read(inst.rs1) - read(inst.rs2))
        elif op is Opcode.AND:
            state.write(inst.rd, read(inst.rs1) & read(inst.rs2))
        elif op is Opcode.OR:
            state.write(inst.rd, read(inst.rs1) | read(inst.rs2))
        elif op is Opcode.XOR:
            state.write(inst.rd, read(inst.rs1) ^ read(inst.rs2))
        elif op is Opcode.SLT:
            state.write(inst.rd,
                        int(to_signed(read(inst.rs1)) <
                            to_signed(read(inst.rs2))))
        elif op is Opcode.SLL:
            state.write(inst.rd, read(inst.rs1) << (read(inst.rs2) & 31))
        elif op is Opcode.SRL:
            state.write(inst.rd, read(inst.rs1) >> (read(inst.rs2) & 31))
        elif op is Opcode.ADDI:
            state.write(inst.rd, read(inst.rs1) + inst.imm)
        elif op is Opcode.ANDI:
            state.write(inst.rd, read(inst.rs1) & to_unsigned(inst.imm))
        elif op is Opcode.ORI:
            state.write(inst.rd, read(inst.rs1) | to_unsigned(inst.imm))
        elif op is Opcode.XORI:
            state.write(inst.rd, read(inst.rs1) ^ to_unsigned(inst.imm))
        elif op is Opcode.SLTI:
            state.write(inst.rd, int(to_signed(read(inst.rs1)) < inst.imm))
        elif op is Opcode.SLLI:
            state.write(inst.rd, read(inst.rs1) << (inst.imm & 31))
        elif op is Opcode.SRLI:
            state.write(inst.rd, read(inst.rs1) >> (inst.imm & 31))
        elif op is Opcode.LUI:
            state.write(inst.rd, (inst.imm & 0xFFFF) << 16)
        elif op is Opcode.SADD:
            state.write(inst.rd,
                        (read(inst.rs1) << inst.sh1) +
                        (read(inst.rs2) << inst.sh2) + inst.imm)
        elif op is Opcode.MUL:
            state.write(inst.rd, read(inst.rs1) * read(inst.rs2))
        elif op is Opcode.DIV:
            divisor = to_signed(read(inst.rs2))
            if divisor == 0:
                state.write(inst.rd, 0)
            else:
                state.write(inst.rd,
                            int(to_signed(read(inst.rs1)) / divisor))
        elif op is Opcode.LW:
            self._mem_addr = (read(inst.rs1) + inst.imm) & 0xFFFF_FFFF
            state.write(inst.rd, state.load(self._mem_addr))
        elif op is Opcode.SW:
            self._mem_addr = (read(inst.rs1) + inst.imm) & 0xFFFF_FFFF
            state.store(self._mem_addr, read(inst.rs2))
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.HALT:
            self.halted = True
            return False, pc
        else:
            return self._execute_control(pc, inst)
        return False, fall

    def _execute_control(self, pc: int, inst: Instruction) -> tuple[bool, int]:
        op = inst.op
        state = self.state
        read = state.read
        fall = pc + INSTRUCTION_BYTES
        if inst.kind is Kind.BRANCH:
            a = to_signed(read(inst.rs1))
            b = to_signed(read(inst.rs2))
            if op is Opcode.BEQ:
                taken = a == b
            elif op is Opcode.BNE:
                taken = a != b
            elif op is Opcode.BLT:
                taken = a < b
            else:  # BGE
                taken = a >= b
            return taken, (pc + inst.imm) if taken else fall
        if op is Opcode.J:
            return False, inst.imm
        if op is Opcode.JAL:
            state.write(RA, fall)
            return False, inst.imm
        if op is Opcode.JALR:
            target = read(inst.rs1)
            state.write(inst.rd if inst.rd else RA, fall)
            return False, self._checked_target(pc, target)
        if op is Opcode.JR:
            return False, self._checked_target(pc, read(inst.rs1))
        raise ExecutionError(f"unhandled control op {op} at {pc:#x}")

    def _checked_target(self, pc: int, target: int) -> int:
        if target not in self.image:
            raise ExecutionError(
                f"indirect transfer at {pc:#x} to wild target {target:#x}")
        return target
