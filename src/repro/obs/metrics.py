"""Interval metrics: bucketed time series and event-fed histograms.

End-of-run aggregates (``FrontendStats``) say *whether* preconstruction
won; these say *when*.  :class:`IntervalMetrics` buckets the Figure-5
counters over fixed-width cycle windows and accumulates four
histograms the paper's argument leans on:

* **trace_length** — instructions per dispatched trace;
* **construction_latency** — frontend cycles between a constructor
  being assigned a start point and a trace completing from it
  (0 = built within a single idle burst);
* **buffer_occupancy** — preconstruction-buffer residency sampled at
  each bucket boundary;
* **idle_burst_length** — the idle slow-path spans that fund
  construction.

Everything is integer-keyed and insertion-independent when serialised
(keys are sorted), so the ``metrics.jsonl`` output is deterministic
for a deterministic event stream.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional

#: Default bucket width (cycles) for the interval time series.
DEFAULT_BUCKET_CYCLES = 1024


class Histogram:
    """Exact integer-valued histogram (value -> count)."""

    __slots__ = ("name", "counts", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: dict[int, int] = {}
        self.total = 0

    def add(self, value: int, count: int = 1) -> None:
        self.counts[value] = self.counts.get(value, 0) + count
        self.total += count

    @property
    def count(self) -> int:
        return self.total

    @property
    def min(self) -> Optional[int]:
        return min(self.counts) if self.counts else None

    @property
    def max(self) -> Optional[int]:
        return max(self.counts) if self.counts else None

    @property
    def mean(self) -> Optional[float]:
        if not self.total:
            return None
        weighted = sum(value * count for value, count in self.counts.items())
        return weighted / self.total

    def to_dict(self) -> dict[str, Any]:
        """Deterministic summary + full counts (string keys, sorted)."""
        return {
            "name": self.name,
            "count": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "counts": {str(value): self.counts[value]
                       for value in sorted(self.counts)},
        }


#: Per-bucket counter names, in serialisation order.  ``port_cycles``
#: is the shared I-cache port's busy time funded by each bucket's idle
#: bursts — the counter the PR-3 overdraft bug skewed, now first-class
#: so ``repro diff`` can localize port-accounting regressions.
BUCKET_COUNTERS = ("traces", "instructions", "trace_hits", "trace_misses",
                   "buffer_hits", "idle_cycles", "traces_constructed",
                   "port_cycles")


class IntervalMetrics:
    """Bucketed Figure-5 counters + the four paper histograms."""

    def __init__(self,
                 bucket_cycles: int = DEFAULT_BUCKET_CYCLES) -> None:
        if bucket_cycles <= 0:
            raise ValueError("bucket_cycles must be positive")
        self.bucket_cycles = bucket_cycles
        self._buckets: dict[int, dict[str, int]] = {}
        self.trace_length = Histogram("trace_length")
        self.construction_latency = Histogram("construction_latency")
        self.buffer_occupancy = Histogram("buffer_occupancy")
        self.idle_burst_length = Histogram("idle_burst_length")

    # ------------------------------------------------------------------
    def _bucket(self, cycle: int) -> dict[str, int]:
        index = cycle // self.bucket_cycles
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = dict.fromkeys(BUCKET_COUNTERS, 0)
            self._buckets[index] = bucket
        return bucket

    # ------------------------------------------------------------------
    # Feed points (called from instrumentation sites, obs-enabled only)
    # ------------------------------------------------------------------
    def on_trace(self, cycle: int, length: int, hit: bool,
                 buffer_hit: bool) -> None:
        bucket = self._bucket(cycle)
        bucket["traces"] += 1
        bucket["instructions"] += length
        if hit:
            bucket["trace_hits"] += 1
            if buffer_hit:
                bucket["buffer_hits"] += 1
        else:
            bucket["trace_misses"] += 1
        self.trace_length.add(length)

    def on_idle_burst(self, cycle: int, length: int) -> None:
        self._bucket(cycle)["idle_cycles"] += length
        self.idle_burst_length.add(length)

    def on_trace_constructed(self, cycle: int, latency: int) -> None:
        self._bucket(cycle)["traces_constructed"] += 1
        self.construction_latency.add(latency)

    def on_port_cycles(self, cycle: int, cycles: int) -> None:
        """I-cache port busy cycles the burst at ``cycle`` consumed."""
        self._bucket(cycle)["port_cycles"] += cycles

    def on_buffer_occupancy(self, occupancy: int) -> None:
        self.buffer_occupancy.add(occupancy)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def interval_rows(self) -> list[dict[str, Any]]:
        """One row per non-empty bucket, in cycle order, with the
        Figure-5 derived rate (trace misses per 1000 instructions)."""
        rows = []
        for index in sorted(self._buckets):
            bucket = self._buckets[index]
            row: dict[str, Any] = {
                "type": "interval",
                "bucket": index,
                "start_cycle": index * self.bucket_cycles,
                "end_cycle": (index + 1) * self.bucket_cycles,
            }
            row.update(bucket)
            instructions = bucket["instructions"]
            row["trace_misses_per_ki"] = (
                1000.0 * bucket["trace_misses"] / instructions
                if instructions else 0.0)
            rows.append(row)
        return rows

    def histograms(self) -> list[Histogram]:
        return [self.trace_length, self.construction_latency,
                self.buffer_occupancy, self.idle_burst_length]

    def histogram_rows(self) -> list[dict[str, Any]]:
        return [{"type": "histogram", **hist.to_dict()}
                for hist in self.histograms()]

    def rows(self) -> list[dict[str, Any]]:
        """All ``metrics.jsonl`` rows: header, intervals, histograms."""
        header = {"type": "meta", "bucket_cycles": self.bucket_cycles,
                  "buckets": len(self._buckets)}
        return [header, *self.interval_rows(), *self.histogram_rows()]

    def to_dict(self) -> dict[str, Any]:
        return {"bucket_cycles": self.bucket_cycles,
                "intervals": self.interval_rows(),
                "histograms": [h.to_dict() for h in self.histograms()]}

    def write_jsonl(self, path: str | Path) -> Path:
        """Write the canonical ``metrics.jsonl`` (sorted keys, compact)."""
        target = Path(path)
        with target.open("w", encoding="utf-8") as fh:
            for row in self.rows():
                fh.write(json.dumps(row, sort_keys=True,
                                    separators=(",", ":")))
                fh.write("\n")
        return target
