"""Event sinks: where the bus delivers cycle-stamped event records.

A sink consumes plain dicts (JSON-serialisable scalars only) via
:meth:`emit`.  Three implementations cover the use cases:

* :class:`NullSink` — discard everything (the "enabled but silent"
  configuration; the truly zero-cost configuration is no bus at all);
* :class:`JsonlSink` — stream each record to a file as one compact,
  key-sorted JSON object per line, so identical event sequences yield
  byte-identical files;
* :class:`RingBufferSink` — keep the last ``capacity`` records in
  memory (unbounded when ``capacity`` is ``None``), the sink behind
  :func:`repro.obs.capture.run_observed`.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Iterable, Optional

Record = dict[str, Any]


def _encode(record: Record) -> str:
    """One canonical JSONL line: compact separators, sorted keys."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class EventSink:
    """Base sink: subclasses override :meth:`emit`."""

    def emit(self, record: Record) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resource (idempotent)."""

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullSink(EventSink):
    """Discard every record."""

    def emit(self, record: Record) -> None:
        pass


class RingBufferSink(EventSink):
    """Keep the last ``capacity`` records (all of them when ``None``)."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.events: deque[Record] = deque(maxlen=capacity)

    @property
    def capacity(self) -> Optional[int]:
        return self.events.maxlen

    def emit(self, record: Record) -> None:
        self.events.append(record)

    def drain(self) -> list[Record]:
        """Return and clear the buffered records."""
        drained = list(self.events)
        self.events.clear()
        return drained


class JsonlSink(EventSink):
    """Stream records to ``path``, one canonical JSON object per line."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = self.path.open("w", encoding="utf-8")
        self.emitted = 0

    def emit(self, record: Record) -> None:
        self._fh.write(_encode(record))
        self._fh.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


def write_events_jsonl(events: Iterable[Record], path: str | Path) -> Path:
    """Write an in-memory event sequence in :class:`JsonlSink` format."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as fh:
        for record in events:
            fh.write(_encode(record))
            fh.write("\n")
    return target


def read_events_jsonl(path: str | Path) -> list[Record]:
    """Load an event file written by :class:`JsonlSink`."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]
