"""Stdlib logging integration.

The codebase historically had no ``logging`` at all — recoverable
problems (a corrupted result-cache entry, say) were swallowed
silently.  This module is the one place logging is configured:

* :func:`get_logger` returns a namespaced logger
  (``repro.<subsystem>``), so ``--log-level`` filtering and any
  downstream handler configuration applies uniformly;
* :func:`configure_logging` installs a single stderr handler on the
  ``repro`` root logger (idempotent — repeated calls re-level the
  existing handler rather than stacking duplicates);
* :func:`level_from_args` maps the CLI's ``-v`` counts and
  ``--log-level`` name to a numeric level (explicit name wins).

Library code must call :func:`get_logger` only; configuration is the
CLI's (or the embedding application's) job.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

#: Root logger name: every subsystem logger hangs below it.
ROOT_LOGGER = "repro"

#: Accepted ``--log-level`` names, mapped to stdlib levels.
LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
    "critical": logging.CRITICAL,
}

_FORMAT = "%(levelname)s %(name)s: %(message)s"
_HANDLER_FLAG = "_repro_obs_handler"


def get_logger(subsystem: str) -> logging.Logger:
    """Named logger for one subsystem, e.g. ``get_logger("runner.cache")``."""
    if subsystem.startswith(ROOT_LOGGER):
        return logging.getLogger(subsystem)
    return logging.getLogger(f"{ROOT_LOGGER}.{subsystem}")


def level_from_args(verbosity: int = 0,
                    log_level: Optional[str] = None) -> int:
    """Resolve ``-v`` counts / ``--log-level`` into a numeric level.

    An explicit ``--log-level`` wins; otherwise ``-v`` means INFO and
    ``-vv`` (or more) means DEBUG; the default is WARNING.
    """
    if log_level is not None:
        try:
            return LEVELS[log_level.lower()]
        except KeyError:
            raise ValueError(f"unknown log level {log_level!r}; "
                             f"choose from {sorted(LEVELS)}") from None
    if verbosity >= 2:
        return logging.DEBUG
    if verbosity == 1:
        return logging.INFO
    return logging.WARNING


def configure_logging(level: int | str = logging.WARNING,
                      stream=None) -> logging.Logger:
    """Install (or re-level) the single ``repro`` stderr handler."""
    if isinstance(level, str):
        level = level_from_args(log_level=level)
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(level)
    handler = next((h for h in root.handlers
                    if getattr(h, _HANDLER_FLAG, False)), None)
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        setattr(handler, _HANDLER_FLAG, True)
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    handler.setLevel(level)
    return root
