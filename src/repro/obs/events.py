"""The cycle-domain event bus.

One :class:`ObsBus` is shared by every instrumented component of a
frontend simulation.  The frontend runner owns the clock: it sets
:attr:`ObsBus.now` to the frontend cycle count before driving the
engine, so events from the engine, the preconstruction buffers and the
trace cache are all stamped in the same cycle domain as the frontend's
own events.  Each record additionally carries a monotonically
increasing sequence number, making the total event order explicit even
when many events share one cycle (everything that happens while the
processor drains one trace is stamped at that trace's fetch cycle).

Record shape::

    {"seq": 17, "cycle": 412, "source": "engine",
     "event": "region_spawn", "region": 3, "pc": 4096}

Instrumented components hold the bus as ``self.obs`` (``None`` by
default) and guard every site with ``if self.obs:`` — a single
attribute load and branch, so the PR-3 hot path is unchanged when
observability is off.

Event taxonomy (source → events):

* ``frontend`` — ``trace_hit`` / ``trace_miss`` (per dispatched
  trace), ``idle_burst_start`` / ``idle_burst_end`` (the idle
  slow-path spans that fund preconstruction);
* ``engine`` — ``region_spawn``, ``region_assign``,
  ``region_complete`` (``reason`` ∈ exhausted/fetch_bound/
  buffer_bound), ``region_abandon``, ``constructor_release``,
  ``trace_constructed`` (``dup`` marks dedup discards),
  ``static_seeds``;
* ``buffers`` — ``probe`` (``hit`` 0/1), ``insert`` (``displaced``
  0/1, post-insert ``occupancy``), ``insert_fail``, ``take``;
* ``trace_cache`` — ``fill``, ``evict``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.obs.sinks import EventSink, NullSink

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import IntervalMetrics


class ObsBus:
    """Cycle-stamped structured event emitter.

    ``sink`` receives every record; ``metrics`` (always present) is
    the :class:`~repro.obs.metrics.IntervalMetrics` collector the
    instrumentation sites feed directly for bucketed counters and
    histograms.
    """

    __slots__ = ("sink", "metrics", "now", "seq")

    def __init__(self, sink: Optional[EventSink] = None,
                 metrics: Optional["IntervalMetrics"] = None) -> None:
        from repro.obs.metrics import IntervalMetrics

        self.sink = sink if sink is not None else NullSink()
        self.metrics = metrics if metrics is not None else IntervalMetrics()
        #: Current cycle; advanced by the clock owner (frontend runner).
        self.now = 0
        #: Total-order sequence number of the last emitted record.
        self.seq = 0

    def emit(self, source: str, event: str, **fields: Any) -> None:
        """Deliver one record to the sink, stamped ``(seq, now)``."""
        self.seq += 1
        record: dict[str, Any] = {"seq": self.seq, "cycle": self.now,
                                  "source": source, "event": event}
        record.update(fields)
        self.sink.emit(record)

    def close(self) -> None:
        self.sink.close()
