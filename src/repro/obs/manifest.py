"""Run manifests: provenance recorded alongside every result.

A manifest answers "what produced this number?" without re-deriving it
from ambient state: the spec's content digest, the schema version the
digest was computed under, the package version, the workload seed, and
the host that ran it.  ``execute_spec`` attaches one to every
:class:`~repro.runner.spec.RunResult`, and the result cache persists
it inside each entry — ``repro cache`` reports it per entry.

Manifests are provenance, not identity: they are deliberately excluded
from spec digests and result equality, so a cached result produced on
another host still hits.
"""

from __future__ import annotations

import platform
import socket
from typing import TYPE_CHECKING, Any

from repro.telemetry.session import utc_timestamp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.spec import ExperimentSpec

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA = 1


def host_info() -> dict[str, str]:
    """The machine fingerprint recorded in every manifest."""
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def build_manifest(spec: "ExperimentSpec", *,
                   include_host: bool = True) -> dict[str, Any]:
    """Provenance record for one run of ``spec``.

    ``include_host=False`` drops the host block and timestamp, leaving
    only the deterministic fields (used by tests comparing manifests
    across processes).
    """
    from repro import __version__
    from repro.runner.spec import SPEC_SCHEMA_VERSION

    manifest: dict[str, Any] = {
        "manifest_schema": MANIFEST_SCHEMA,
        "spec_digest": spec.digest(),
        "schema_version": SPEC_SCHEMA_VERSION,
        "package_version": __version__,
        "benchmark": spec.benchmark,
        "kind": spec.kind,
        "instructions": spec.instructions,
        "workload_seed": spec.workload_seed,
    }
    if include_host:
        # UTC with a pinned +0000 offset: manifests (and therefore
        # cache entries) must not depend on the producing host's TZ.
        manifest["created_at"] = utc_timestamp()
        manifest["host"] = host_info()
    return manifest
