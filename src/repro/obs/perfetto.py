"""Chrome/Perfetto trace-event export of an observed run.

Converts the bus's event stream into the Chrome trace-event JSON
format (the ``trace.json`` Perfetto and ``chrome://tracing`` load
natively).  One simulated cycle maps to one microsecond of trace time.

Track layout:

* **frontend** (pid 1) — ``trace supply``: instant events per trace
  miss (hits are the quiet default); ``idle``: one complete-slice per
  idle burst, the spans that fund preconstruction;
* **preconstruction** (pid 2) — ``regions``: one async span per region
  from spawn to complete/abandon (named by start pc, ended with the
  terminal reason); ``constructor N``: busy spans from assignment to
  release, with instants for each constructed trace;
* **storage** (pid 3) — ``buffer_occupancy`` counter samples from
  buffer inserts/takes, plus instants for buffer probe misses and
  trace-cache fills/evictions.

Spans left open at end-of-run (a region still under construction, a
constructor still assigned) are closed at the final timestamp so the
exported file is always well-formed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

PID_FRONTEND = 1
PID_PRECON = 2
PID_STORAGE = 3

TID_TRACE_SUPPLY = 1
TID_IDLE = 2
TID_REGIONS = 1
TID_CONSTRUCTOR_BASE = 10
TID_BUFFERS = 1
TID_TRACE_CACHE = 2

_PROCESS_NAMES = {
    PID_FRONTEND: "frontend",
    PID_PRECON: "preconstruction",
    PID_STORAGE: "storage",
}
_THREAD_NAMES = {
    (PID_FRONTEND, TID_TRACE_SUPPLY): "trace supply",
    (PID_FRONTEND, TID_IDLE): "idle",
    (PID_PRECON, TID_REGIONS): "regions",
    (PID_STORAGE, TID_BUFFERS): "buffers",
    (PID_STORAGE, TID_TRACE_CACHE): "trace-cache",
}


def _metadata_events(constructor_ids: Iterable[int]) -> list[dict[str, Any]]:
    events: list[dict[str, Any]] = []
    for pid, name in sorted(_PROCESS_NAMES.items()):
        events.append({"ph": "M", "pid": pid, "tid": 0, "ts": 0,
                       "name": "process_name", "args": {"name": name}})
    threads = dict(_THREAD_NAMES)
    for cid in sorted(set(constructor_ids)):
        threads[(PID_PRECON, TID_CONSTRUCTOR_BASE + cid)] = \
            f"constructor {cid}"
    for (pid, tid), name in sorted(threads.items()):
        events.append({"ph": "M", "pid": pid, "tid": tid, "ts": 0,
                       "name": "thread_name", "args": {"name": name}})
    return events


def perfetto_trace(events: Iterable[Mapping[str, Any]],
                   *, label: str = "repro") -> dict[str, Any]:
    """Build the Chrome trace-event payload for one event stream."""
    out: list[dict[str, Any]] = []
    constructor_ids: set[int] = set()
    open_regions: dict[int, int] = {}       # region seq -> spawn ts
    open_constructors: dict[int, int] = {}  # cid -> assign ts
    idle_start: int | None = None
    last_ts = 0

    for record in events:
        source = record["source"]
        event = record["event"]
        ts = record["cycle"]
        last_ts = max(last_ts, ts)

        if source == "frontend":
            if event == "trace_miss":
                out.append({"ph": "i", "pid": PID_FRONTEND,
                            "tid": TID_TRACE_SUPPLY, "ts": ts, "s": "t",
                            "name": "trace_miss",
                            "args": {"pc": record.get("pc"),
                                     "len": record.get("len")}})
            elif event == "idle_burst_start":
                idle_start = ts
            elif event == "idle_burst_end" and idle_start is not None:
                out.append({"ph": "X", "pid": PID_FRONTEND, "tid": TID_IDLE,
                            "ts": idle_start, "dur": max(0, ts - idle_start),
                            "name": "idle burst",
                            "args": {"cycles": record.get("len")}})
                idle_start = None
        elif source == "engine":
            if event == "region_spawn":
                region = record["region"]
                open_regions[region] = ts
                out.append({"ph": "b", "cat": "region", "id": region,
                            "pid": PID_PRECON, "tid": TID_REGIONS, "ts": ts,
                            "name": f"region@{record['pc']:#x}",
                            "args": {"region": region}})
            elif event in ("region_complete", "region_abandon"):
                region = record["region"]
                start_ts = open_regions.pop(region, ts)
                reason = record.get("reason", "abandoned")
                out.append({"ph": "e", "cat": "region", "id": region,
                            "pid": PID_PRECON, "tid": TID_REGIONS, "ts": ts,
                            "name": f"region@{record['pc']:#x}",
                            "args": {"region": region, "reason": reason,
                                     "traces": record.get("traces", 0),
                                     "lifetime": ts - start_ts}})
            elif event == "region_assign":
                cid = record["cid"]
                constructor_ids.add(cid)
                if cid in open_constructors:
                    # Reassigned without an explicit release: close first.
                    out.append({"ph": "E", "pid": PID_PRECON,
                                "tid": TID_CONSTRUCTOR_BASE + cid, "ts": ts})
                open_constructors[cid] = ts
                out.append({"ph": "B", "pid": PID_PRECON,
                            "tid": TID_CONSTRUCTOR_BASE + cid, "ts": ts,
                            "name": f"build@{record['pc']:#x}",
                            "args": {"region": record["region"]}})
            elif event == "constructor_release":
                cid = record["cid"]
                if open_constructors.pop(cid, None) is not None:
                    out.append({"ph": "E", "pid": PID_PRECON,
                                "tid": TID_CONSTRUCTOR_BASE + cid, "ts": ts})
            elif event == "trace_constructed":
                cid = record.get("cid", 0)
                constructor_ids.add(cid)
                out.append({"ph": "i", "pid": PID_PRECON,
                            "tid": TID_CONSTRUCTOR_BASE + cid, "ts": ts,
                            "s": "t",
                            "name": ("trace (dup)" if record.get("dup")
                                     else "trace"),
                            "args": {"pc": record.get("pc"),
                                     "len": record.get("len"),
                                     "latency": record.get("latency")}})
        elif source == "buffers":
            if event in ("insert", "take"):
                out.append({"ph": "C", "pid": PID_STORAGE, "tid": TID_BUFFERS,
                            "ts": ts, "name": "buffer_occupancy",
                            "args": {"entries": record["occupancy"]}})
            elif event == "probe" and not record.get("hit"):
                out.append({"ph": "i", "pid": PID_STORAGE, "tid": TID_BUFFERS,
                            "ts": ts, "s": "t", "name": "probe_miss",
                            "args": {}})
        elif source == "trace_cache":
            if event in ("fill", "evict"):
                out.append({"ph": "i", "pid": PID_STORAGE,
                            "tid": TID_TRACE_CACHE, "ts": ts, "s": "t",
                            "name": event,
                            "args": {"pc": record.get("pc"),
                                     "len": record.get("len")}})

    # Close anything still open so the file is always well-formed.
    for region, start_ts in sorted(open_regions.items()):
        out.append({"ph": "e", "cat": "region", "id": region,
                    "pid": PID_PRECON, "tid": TID_REGIONS, "ts": last_ts,
                    "name": f"region#{region}",
                    "args": {"region": region, "reason": "end_of_run",
                             "lifetime": last_ts - start_ts}})
    for cid in sorted(open_constructors):
        out.append({"ph": "E", "pid": PID_PRECON,
                    "tid": TID_CONSTRUCTOR_BASE + cid, "ts": last_ts})

    return {
        "displayTimeUnit": "ms",
        "otherData": {"producer": label, "time_unit": "1 cycle = 1 us"},
        "traceEvents": _metadata_events(constructor_ids) + out,
    }


def write_perfetto(events: Iterable[Mapping[str, Any]], path: str | Path,
                   *, label: str = "repro") -> Path:
    """Write the Perfetto/Chrome ``trace.json`` for ``events``."""
    target = Path(path)
    payload = perfetto_trace(events, label=label)
    target.write_text(json.dumps(payload, sort_keys=True) + "\n",
                      encoding="utf-8")
    return target


# ----------------------------------------------------------------------
# Schema validation (used by tests and ``repro trace`` self-check)
# ----------------------------------------------------------------------
_KNOWN_PHASES = {"B", "E", "X", "i", "C", "M", "b", "e", "n"}


def validate_chrome_trace(payload: Mapping[str, Any]) -> list[str]:
    """Structural validation of a Chrome trace-event payload.

    Returns a list of problems (empty = valid): required keys and
    types per event, known phase codes, non-negative ``dur`` on
    complete events, ids on async events, and balanced ``B``/``E``
    begin/end nesting per (pid, tid) track.
    """
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    depth: dict[tuple[int, int], int] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing integer {key!r}")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: missing non-negative 'ts'")
        if ph != "E" and not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing string 'name'")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' needs non-negative 'dur'")
        if ph in ("b", "e") and "id" not in event:
            problems.append(f"{where}: async {ph!r} needs an 'id'")
        if ph in ("B", "E"):
            track = (event.get("pid"), event.get("tid"))
            depth[track] = depth.get(track, 0) + (1 if ph == "B" else -1)
            if depth[track] < 0:
                problems.append(f"{where}: 'E' without matching 'B' "
                                f"on track {track}")
                depth[track] = 0
    for track, open_count in sorted(depth.items()):
        if open_count:
            problems.append(f"track {track}: {open_count} unclosed 'B' "
                            f"event(s)")
    try:
        json.dumps(payload)
    except (TypeError, ValueError) as error:
        problems.append(f"payload not JSON-serialisable: {error}")
    return problems
