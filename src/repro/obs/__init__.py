"""Observability layer: cycle-domain event tracing for the simulator.

The paper argues preconstruction with *timelines* — when regions spawn,
how long construction takes, whether traces arrive before the fetch
unit needs them — yet the simulators historically reported only
end-of-run aggregates.  This package adds the missing instrumentation:

* :mod:`repro.obs.events` — :class:`ObsBus`, the cycle-stamped
  structured event bus the engine, preconstruction buffers, trace
  cache and frontend runner emit into.  Instrumentation sites are
  guarded by a monomorphic ``if self.obs:`` check so the hot path pays
  one attribute load + branch when observability is off (the default);
* :mod:`repro.obs.sinks` — pluggable sinks: :class:`NullSink`
  (discard), :class:`JsonlSink` (stream to disk, one JSON object per
  line), :class:`RingBufferSink` (bounded in-memory tail);
* :mod:`repro.obs.metrics` — :class:`IntervalMetrics`, bucketed time
  series of the Figure-5 counters plus histograms (trace length,
  construction latency, buffer occupancy, idle-burst length) and the
  ``metrics.jsonl`` writer;
* :mod:`repro.obs.manifest` — run manifests (spec digest, schema and
  package versions, seed, host info) recorded alongside every
  :class:`~repro.runner.spec.RunResult` and cached entry;
* :mod:`repro.obs.perfetto` — Chrome/Perfetto ``trace.json`` export of
  an event stream (``repro trace <bench> --out trace.json``);
* :mod:`repro.obs.capture` — :func:`run_observed`, one-call observed
  execution of a frontend :class:`ExperimentSpec`;
* :mod:`repro.obs.log` — stdlib ``logging`` integration: named loggers
  per subsystem and the ``-v``/``--log-level`` CLI plumbing.

Determinism contract: for a fixed spec, the emitted event sequence is
a pure function of the simulation — identical across reruns, across
``PYTHONHASHSEED``, and across serial vs parallel execution.
"""

from repro.obs.capture import ObservedRun, run_observed, run_observed_many
from repro.obs.events import ObsBus
from repro.obs.log import configure_logging, get_logger
from repro.obs.manifest import MANIFEST_SCHEMA, build_manifest
from repro.obs.metrics import Histogram, IntervalMetrics
from repro.obs.perfetto import (
    perfetto_trace,
    validate_chrome_trace,
    write_perfetto,
)
from repro.obs.sinks import (
    EventSink,
    JsonlSink,
    NullSink,
    RingBufferSink,
    write_events_jsonl,
)

__all__ = [
    "ObsBus",
    "EventSink", "NullSink", "JsonlSink", "RingBufferSink",
    "write_events_jsonl",
    "Histogram", "IntervalMetrics",
    "MANIFEST_SCHEMA", "build_manifest",
    "perfetto_trace", "validate_chrome_trace", "write_perfetto",
    "ObservedRun", "run_observed", "run_observed_many",
    "configure_logging", "get_logger",
]
