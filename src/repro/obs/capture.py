"""One-call observed execution of a frontend experiment point.

:func:`run_observed` is the glue the ``repro stats`` / ``repro trace``
CLI commands and the determinism tests stand on: it executes one
frontend :class:`~repro.runner.spec.ExperimentSpec` with the event bus
attached and returns the result, the full event stream, and the
interval metrics together.

Observed runs always execute — they never consult the result cache
(events cannot be served from cached aggregates) — and they reuse the
same generate-once :class:`~repro.runner.pool.StreamCache` economics
as the ordinary runner, so the event stream is a pure function of the
spec.  :func:`run_observed_many` fans observed runs across worker
processes; because each spec's stream is deterministic, parallel
results are element-wise identical to serial ones.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.obs.events import ObsBus
from repro.obs.metrics import DEFAULT_BUCKET_CYCLES, IntervalMetrics
from repro.obs.sinks import RingBufferSink, write_events_jsonl


@dataclass
class ObservedRun:
    """Everything one observed execution produced."""

    result: Any                      # RunResult
    stats: Any                       # FrontendStats (raw counters)
    events: list[dict[str, Any]] = field(default_factory=list)
    metrics: Optional[IntervalMetrics] = None

    def write_events(self, path: str | Path) -> Path:
        return write_events_jsonl(self.events, path)

    def write_metrics(self, path: str | Path) -> Path:
        assert self.metrics is not None
        return self.metrics.write_jsonl(path)

    def write_perfetto(self, path: str | Path) -> Path:
        from repro.obs.perfetto import write_perfetto

        return write_perfetto(self.events, path,
                              label=self.result.spec.label)


def run_observed(spec, *,
                 bucket_cycles: int = DEFAULT_BUCKET_CYCLES,
                 stream_cache=None) -> ObservedRun:
    """Execute ``spec`` (kind ``"frontend"``) with observability on.

    The result cache is deliberately bypassed: the point of an
    observed run is the event stream, which only execution produces.
    """
    import time

    from repro.obs.manifest import build_manifest
    from repro.runner.pool import StreamCache
    from repro.runner.spec import RunResult
    from repro.sim import run_frontend

    if spec.kind != "frontend":
        raise ValueError(f"observed runs support kind='frontend' only, "
                         f"got {spec.kind!r}")
    sink = RingBufferSink(capacity=None)
    bus = ObsBus(sink, IntervalMetrics(bucket_cycles))
    started = time.perf_counter()
    if stream_cache is None or stream_cache.instructions < spec.instructions:
        stream_cache = StreamCache(spec.instructions)
    image = stream_cache.image(spec.benchmark, spec.workload_seed)
    config = spec.frontend_config()
    if getattr(spec, "simulator", "scalar") == "vectorized":
        # The batched kernel supports obs for a batch of one; the
        # event stream it emits is bit-identical to the scalar one
        # (differential-tested), so observed exhibits are kernel-blind.
        from repro.vector import run_frontend_batch

        plan = stream_cache.plan(spec.benchmark, spec.instructions,
                                 config, spec.workload_seed)
        sim_result = run_frontend_batch(image, [config], plan, obs=bus)[0]
    else:
        traces = stream_cache.traces(spec.benchmark, spec.instructions,
                                     config.selection, spec.workload_seed)
        sim_result = run_frontend(image, config, spec.instructions,
                                  traces=traces, obs=bus)
    result = RunResult(spec=spec, metrics=dict(sim_result.stats.summary()),
                       wall_seconds=time.perf_counter() - started,
                       manifest=build_manifest(spec))
    return ObservedRun(result=result, stats=sim_result.stats,
                       events=list(sink.events), metrics=bus.metrics)


def run_observed_many(specs: Sequence, jobs: int = 1) -> list[ObservedRun]:
    """Observed runs for every spec, optionally across processes.

    Results come back in spec order; each element is identical to what
    a serial :func:`run_observed` of the same spec produces.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if jobs == 1 or len(specs) <= 1:
        return [run_observed(spec) for spec in specs]
    with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
        return list(pool.map(run_observed, specs))
