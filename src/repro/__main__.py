"""``python -m repro`` entry point."""

import sys

from repro.cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # Downstream pager/head closed the pipe: the Unix convention is to
    # die quietly, not with a traceback.
    sys.stderr.close()
    sys.exit(141)  # 128 + SIGPIPE
