"""Regression triage: run diffing, divergence localization, reporting.

When two runs of the same experiment disagree — across commits, hosts,
or configuration tweaks — the aggregates say *that* they differ; this
package says *where first and why*:

* :mod:`repro.triage.differ` — ``repro diff``'s engine: materialize
  two runs as :class:`RunCapture`\\ s (from capture files, run
  manifests, or bare specs, executing through the result cache only
  when needed), localize the first divergent interval bucket by binary
  search over the monotone bucket-prefix-equality predicate, then
  drill into the two event streams inside that cycle window for the
  first differing record;
* :mod:`repro.triage.hypotheses` — turn the divergent bucket's counter
  skews into a ranked :class:`Hypothesis` list, each naming the
  counter, cycle window, emitting source, and any pc/trace identity
  the evidence event carried;
* :mod:`repro.triage.report` — ``repro report``: one self-contained
  static HTML dashboard (inline SVG, no external assets) over a run
  set's ``metrics.jsonl`` histograms, bench trajectories, and Perfetto
  trace links.
"""

from repro.triage.differ import (
    TRIAGE_SCHEMA,
    DiffResult,
    RunCapture,
    capture_spec,
    diff_paths,
    diff_runs,
    diff_specs,
    first_divergent_bucket,
    host_evidence,
    load_capture,
)
from repro.triage.hypotheses import Hypothesis, rank_hypotheses
from repro.triage.report import render_report, write_report

__all__ = [
    "TRIAGE_SCHEMA",
    "DiffResult",
    "Hypothesis",
    "RunCapture",
    "capture_spec",
    "diff_paths",
    "diff_runs",
    "diff_specs",
    "first_divergent_bucket",
    "host_evidence",
    "load_capture",
    "rank_hypotheses",
    "render_report",
    "write_report",
]
