"""Hypothesis ranking: from a divergent bucket to a suspect list.

Once the differ has localized the first divergent interval bucket,
the remaining question is *which counter moved first and what touched
it*.  This module turns the divergent bucket pair into a ranked list
of :class:`Hypothesis` records: one per differing counter, ordered by
relative skew (a counter that doubled outranks one that drifted 2%),
each naming the cycle window, the emitting source, and — when the
event drill found one — the first differing event record plus any
``pc`` / ``trace`` identity it carried.

The counter → event-source mapping below is the causal wiring of the
instrumentation sites: every :data:`~repro.obs.metrics.BUCKET_COUNTERS`
name is fed from exactly one source's events, so a skewed counter
points straight at the component whose event stream to drill.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.obs.metrics import BUCKET_COUNTERS

#: Which event source feeds each interval counter, and which of its
#: events are the evidence to drill for.  Mirrors the instrumentation
#: sites (``IntervalMetrics.on_*`` callers), not a heuristic.
COUNTER_EVIDENCE: dict[str, tuple[str, tuple[str, ...]]] = {
    "traces": ("frontend", ("trace_hit", "trace_miss")),
    "instructions": ("frontend", ("trace_hit", "trace_miss")),
    "trace_hits": ("frontend", ("trace_hit",)),
    "trace_misses": ("frontend", ("trace_miss",)),
    "buffer_hits": ("buffers", ("probe", "take")),
    "idle_cycles": ("frontend", ("idle_burst_start", "idle_burst_end")),
    "traces_constructed": ("engine", ("trace_constructed",)),
    # port_cycles is the engine's I-cache port accounting (the PR-3
    # overdraft family): region lifecycle events bracket every burst
    # that burned port bandwidth.
    "port_cycles": ("engine", ("region_assign", "region_complete",
                               "trace_constructed")),
}


@dataclass(frozen=True)
class Hypothesis:
    """One suspect counter for a localized divergence."""

    counter: str
    value_a: int
    value_b: int
    #: ``[start_cycle, end_cycle)`` of the divergent bucket.
    window: tuple[int, int]
    #: Event source that feeds this counter (``COUNTER_EVIDENCE``).
    source: str
    #: First event record differing between the two runs among this
    #: counter's evidence events inside the window (side B's record,
    #: or side A's when B ran out first).  ``None`` if the evidence
    #: streams are identical (the skew came from record *fields*, not
    #: presence — e.g. differing ``occupancy`` payloads).
    event: Optional[dict[str, Any]] = None
    #: Identity pulled off the evidence event, when it carried one.
    pc: Optional[int] = None
    trace: Optional[Any] = None
    rank: int = field(default=0, compare=False)

    @property
    def delta(self) -> int:
        return self.value_b - self.value_a

    @property
    def relative(self) -> float:
        """Skew magnitude normalized by the larger side (0..1+)."""
        scale = max(abs(self.value_a), abs(self.value_b), 1)
        return abs(self.delta) / scale

    def describe(self) -> str:
        start, end = self.window
        line = (f"{self.counter}: {self.value_a} -> {self.value_b} "
                f"({self.delta:+d}, {self.relative:.0%} skew) "
                f"in cycles [{start}, {end}) via {self.source}")
        if self.event is not None:
            line += (f"; first differing {self.source} event: "
                     f"{self.event.get('event')} "
                     f"@cycle {self.event.get('cycle')}")
        if self.pc is not None:
            line += f" pc={self.pc:#x}"
        if self.trace is not None:
            line += f" trace={self.trace}"
        return line

    def to_dict(self) -> dict[str, Any]:
        return {
            "counter": self.counter,
            "value_a": self.value_a,
            "value_b": self.value_b,
            "delta": self.delta,
            "relative": round(self.relative, 4),
            "window": list(self.window),
            "source": self.source,
            "event": self.event,
            "pc": self.pc,
            "trace": self.trace,
            "rank": self.rank,
        }


def _first_evidence(counter: str,
                    events_a: Sequence[Mapping[str, Any]],
                    events_b: Sequence[Mapping[str, Any]],
                    ) -> Optional[dict[str, Any]]:
    """First record differing between the runs' evidence streams.

    Both streams are filtered down to the counter's source/event names
    (window filtering already happened upstream) and compared
    positionally, ignoring the global ``seq`` stamp — an earlier
    unrelated divergence renumbers everything after it, and the drill
    must not blame this counter for that.
    """
    source, names = COUNTER_EVIDENCE[counter]

    def select(events: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
        return [dict(record) for record in events
                if record.get("source") == source
                and record.get("event") in names]

    picked_a, picked_b = select(events_a), select(events_b)
    for rec_a, rec_b in zip(picked_a, picked_b):
        key_a = {k: v for k, v in rec_a.items() if k != "seq"}
        key_b = {k: v for k, v in rec_b.items() if k != "seq"}
        if key_a != key_b:
            return rec_b
    if len(picked_a) != len(picked_b):
        longer = picked_b if len(picked_b) > len(picked_a) else picked_a
        return longer[min(len(picked_a), len(picked_b))]
    return None


def rank_hypotheses(bucket_a: Mapping[str, int],
                    bucket_b: Mapping[str, int],
                    window: tuple[int, int],
                    events_a: Sequence[Mapping[str, Any]] = (),
                    events_b: Sequence[Mapping[str, Any]] = (),
                    ) -> list[Hypothesis]:
    """Ranked suspects for one divergent bucket pair.

    ``bucket_a`` / ``bucket_b`` are the bucket's counter mappings from
    the two runs; ``events_a`` / ``events_b`` are the runs' event
    records already restricted to ``window``.  Counters equal on both
    sides produce no hypothesis.  Ranking: relative skew descending,
    then absolute delta, then counter name (deterministic ties).
    """
    suspects: list[Hypothesis] = []
    for counter in BUCKET_COUNTERS:
        value_a = int(bucket_a.get(counter, 0))
        value_b = int(bucket_b.get(counter, 0))
        if value_a == value_b:
            continue
        evidence = _first_evidence(counter, events_a, events_b)
        suspects.append(Hypothesis(
            counter=counter, value_a=value_a, value_b=value_b,
            window=window, source=COUNTER_EVIDENCE[counter][0],
            event=evidence,
            pc=evidence.get("pc") if evidence else None,
            trace=evidence.get("trace") if evidence else None))
    suspects.sort(key=lambda h: (-h.relative, -abs(h.delta), h.counter))
    return [Hypothesis(**{**vars(suspect), "rank": position + 1})
            for position, suspect in enumerate(suspects)]
