"""``repro report``: a self-contained static HTML dashboard.

One HTML file, no external scripts, stylesheets, fonts or images —
everything is inline SVG and a local ``<style>`` block — so the file
survives being uploaded as a CI artifact, mailed around, or opened
from ``file://`` years later.  It renders, for a run set:

* **interval metrics** (``metrics.jsonl``) — the per-bucket
  trace-miss-rate trajectory plus the four paper histograms;
* **bench reports** (``BENCH_*.json``) — per-section baseline→current
  dumbbells, and the cross-report wall-time trajectory when several
  reports are given;
* **Perfetto traces** — deep links into the Perfetto UI for each
  exported ``trace.json``.

Charts follow one visual system: a single blue carries single-series
magnitude, baseline/current pairs are two shades of that hue, marks
are thin (2px lines, bars capped at 24px with rounded data ends),
gridlines are hairlines, and all text wears ink tokens — never a
series color.  Light and dark render from the same CSS custom
properties (the OS preference and an explicit ``data-theme`` stamp
both work).
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Optional, Sequence

#: Plot geometry shared by every chart (viewBox units).
_W, _H = 640, 190
_ML, _MR, _MT, _MB = 56, 16, 14, 30

_CSS = """
:root { color-scheme: light dark; }
.viz-root {
  color-scheme: light;
  --page:           #f9f9f7;
  --surface-1:      #fcfcfb;
  --ink-primary:    #0b0b0b;
  --ink-secondary:  #52514e;
  --ink-muted:      #898781;
  --gridline:       #e1e0d9;
  --baseline:       #c3c2b7;
  --border:         rgba(11,11,11,0.10);
  --series-1:       #2a78d6;
  --series-1-soft:  #86b6ef;
  --series-2:       #eb6834;
  --series-3:       #1baf7a;
  --series-4:       #eda100;
  background: var(--page);
  color: var(--ink-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
  margin: 0; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page:           #0d0d0d;
    --surface-1:      #1a1a19;
    --ink-primary:    #ffffff;
    --ink-secondary:  #c3c2b7;
    --ink-muted:      #898781;
    --gridline:       #2c2c2a;
    --baseline:       #383835;
    --border:         rgba(255,255,255,0.10);
    --series-1:       #3987e5;
    --series-1-soft:  #1c5cab;
    --series-2:       #d95926;
    --series-3:       #199e70;
    --series-4:       #c98500;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --page:           #0d0d0d;
  --surface-1:      #1a1a19;
  --ink-primary:    #ffffff;
  --ink-secondary:  #c3c2b7;
  --ink-muted:      #898781;
  --gridline:       #2c2c2a;
  --baseline:       #383835;
  --border:         rgba(255,255,255,0.10);
  --series-1:       #3987e5;
  --series-1-soft:  #1c5cab;
  --series-2:       #d95926;
  --series-3:       #199e70;
  --series-4:       #c98500;
}
.viz-root h1 { font-size: 20px; font-weight: 600; margin: 0 0 2px; }
.viz-root h2 { font-size: 15px; font-weight: 600; margin: 28px 0 10px; }
.viz-root h3 { font-size: 13px; font-weight: 600; margin: 0 0 6px;
               color: var(--ink-secondary); }
.viz-root .subtitle { color: var(--ink-muted); margin: 0 0 18px; }
.viz-root .card {
  background: var(--surface-1);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 14px 16px;
  margin: 0 0 14px;
}
.viz-root .grid { display: grid; gap: 14px;
                  grid-template-columns: repeat(auto-fit,
                                                minmax(320px, 1fr)); }
.viz-root svg { display: block; width: 100%; height: auto; }
.viz-root table { border-collapse: collapse; width: 100%;
                  font-size: 13px; }
.viz-root th { text-align: left; color: var(--ink-muted);
               font-weight: 500; border-bottom: 1px solid var(--gridline);
               padding: 4px 10px 4px 0; }
.viz-root td { padding: 4px 10px 4px 0;
               border-bottom: 1px solid var(--gridline);
               font-variant-numeric: tabular-nums; }
.viz-root .legend { display: flex; gap: 16px; align-items: center;
                    font-size: 12px; color: var(--ink-secondary);
                    margin: 0 0 4px; }
.viz-root .legend .key { display: inline-flex; gap: 6px;
                         align-items: center; }
.viz-root .swatch { width: 10px; height: 10px; border-radius: 50%;
                    display: inline-block; }
.viz-root a { color: var(--series-1); }
.viz-root .note { color: var(--ink-muted); font-size: 12px; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: float) -> str:
    """Clean tick/label number: int when whole, short float otherwise."""
    if abs(value - round(value)) < 1e-9:
        return f"{int(round(value)):,}"
    return f"{value:,.2f}".rstrip("0").rstrip(".")


def _ticks(top: float) -> list[float]:
    """0 / mid / top — the recessive 3-line grid every chart uses."""
    if top <= 0:
        top = 1.0
    return [0.0, top / 2.0, top]


def _grid(top: float, unit: str = "") -> tuple[str, "_YScale"]:
    """Horizontal hairline gridlines + muted tick labels."""
    scale = _YScale(top)
    parts = []
    for tick in _ticks(top):
        y = scale(tick)
        parts.append(f'<line x1="{_ML}" y1="{y:.1f}" x2="{_W - _MR}" '
                     f'y2="{y:.1f}" stroke="var(--gridline)" '
                     f'stroke-width="1"/>')
        parts.append(f'<text x="{_ML - 8}" y="{y + 4:.1f}" '
                     f'text-anchor="end" font-size="11" '
                     f'fill="var(--ink-muted)">{_fmt(tick)}{unit}</text>')
    parts.append(f'<line x1="{_ML}" y1="{_H - _MB}" x2="{_W - _MR}" '
                 f'y2="{_H - _MB}" stroke="var(--baseline)" '
                 f'stroke-width="1"/>')
    return "".join(parts), scale


class _YScale:
    def __init__(self, top: float) -> None:
        self.top = top if top > 0 else 1.0

    def __call__(self, value: float) -> float:
        span = _H - _MT - _MB
        return _H - _MB - (min(value, self.top) / self.top) * span


def _svg(body: str, *, height: int = _H) -> str:
    return (f'<svg viewBox="0 0 {_W} {height}" role="img" '
            f'xmlns="http://www.w3.org/2000/svg">{body}</svg>')


def _bar_path(x: float, y_top: float, width: float, y_base: float,
              radius: float = 4.0) -> str:
    """Column with a 4px-rounded data end and a square baseline."""
    radius = min(radius, width / 2, max(y_base - y_top, 0.0))
    return (f"M {x:.1f},{y_base:.1f} "
            f"L {x:.1f},{y_top + radius:.1f} "
            f"Q {x:.1f},{y_top:.1f} {x + radius:.1f},{y_top:.1f} "
            f"L {x + width - radius:.1f},{y_top:.1f} "
            f"Q {x + width:.1f},{y_top:.1f} "
            f"{x + width:.1f},{y_top + radius:.1f} "
            f"L {x + width:.1f},{y_base:.1f} Z")


def _condense(counts: dict[int, int], max_bins: int = 32
              ) -> list[tuple[str, int]]:
    """Histogram counts folded into at most ``max_bins`` value ranges."""
    if not counts:
        return []
    values = sorted(counts)
    if len(values) <= max_bins:
        return [(str(value), counts[value]) for value in values]
    low, high = values[0], values[-1]
    width = max(1, (high - low + max_bins) // max_bins)
    bins: dict[int, int] = {}
    for value, count in counts.items():
        bins[(value - low) // width] = bins.get((value - low) // width,
                                                0) + count
    out = []
    for index in sorted(bins):
        start = low + index * width
        label = (str(start) if width == 1
                 else f"{start}–{start + width - 1}")
        out.append((label, bins[index]))
    return out


def _histogram_svg(hist: dict[str, Any]) -> str:
    counts = {int(value): int(count)
              for value, count in hist.get("counts", {}).items()}
    bars = _condense(counts)
    if not bars:
        return '<p class="note">(empty)</p>'
    top = max(count for _, count in bars)
    grid, scale = _grid(float(top))
    plot_width = _W - _ML - _MR
    slot = plot_width / len(bars)
    bar_width = min(24.0, max(slot - 2.0, 1.0))
    peak = max(range(len(bars)), key=lambda i: bars[i][1])
    parts = [grid]
    for index, (label, count) in enumerate(bars):
        x = _ML + index * slot + (slot - bar_width) / 2
        y_top = scale(count)
        parts.append(f'<path d="{_bar_path(x, y_top, bar_width, _H - _MB)}" '
                     f'fill="var(--series-1)">'
                     f'<title>{_esc(label)}: {count}</title></path>')
        if index == peak:
            parts.append(f'<text x="{x + bar_width / 2:.1f}" '
                         f'y="{y_top - 5:.1f}" text-anchor="middle" '
                         f'font-size="11" fill="var(--ink-secondary)">'
                         f'{_fmt(count)}</text>')
        if index in (0, len(bars) - 1, peak):
            parts.append(f'<text x="{x + bar_width / 2:.1f}" '
                         f'y="{_H - _MB + 16}" text-anchor="middle" '
                         f'font-size="11" fill="var(--ink-muted)">'
                         f'{_esc(label)}</text>')
    return _svg("".join(parts))


def _series_svg(intervals: list[dict[str, Any]],
                counter: str = "trace_misses_per_ki") -> str:
    points = [(int(row["start_cycle"]), float(row.get(counter, 0.0)))
              for row in intervals]
    if not points:
        return '<p class="note">(no interval rows)</p>'
    top = max(value for _, value in points)
    grid, scale = _grid(top)
    span = max(points[-1][0] - points[0][0], 1)
    plot_width = _W - _ML - _MR

    def x_of(cycle: int) -> float:
        return _ML + (cycle - points[0][0]) / span * plot_width

    coords = " ".join(f"{x_of(cycle):.1f},{scale(value):.1f}"
                      for cycle, value in points)
    last_x, last_y = x_of(points[-1][0]), scale(points[-1][1])
    parts = [grid]
    parts.append(f'<polyline points="{coords}" fill="none" '
                 f'stroke="var(--series-1)" stroke-width="2" '
                 f'stroke-linejoin="round" stroke-linecap="round"/>')
    parts.append(f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="4" '
                 f'fill="var(--series-1)" stroke="var(--surface-1)" '
                 f'stroke-width="2"><title>cycle {points[-1][0]}: '
                 f'{_fmt(points[-1][1])}</title></circle>')
    parts.append(f'<text x="{min(last_x, _W - _MR) - 2:.1f}" '
                 f'y="{max(last_y - 8, 12):.1f}" text-anchor="end" '
                 f'font-size="11" fill="var(--ink-secondary)">'
                 f'{_fmt(points[-1][1])}</text>')
    for cycle, anchor in ((points[0][0], "start"), (points[-1][0], "end")):
        parts.append(f'<text x="{x_of(cycle):.1f}" y="{_H - _MB + 16}" '
                     f'text-anchor="{anchor}" font-size="11" '
                     f'fill="var(--ink-muted)">cycle {_fmt(cycle)}</text>')
    return _svg("".join(parts))


def _bench_dumbbell_svg(sections: dict[str, Any]) -> str:
    rows = [(name, float(section.get("baseline_seconds", 0.0)),
             float(section.get("current_seconds", 0.0)))
            for name, section in sections.items()]
    if not rows:
        return '<p class="note">(no sections)</p>'
    top = max(max(baseline, current) for _, baseline, current in rows)
    top = top if top > 0 else 1.0
    row_height = 34
    height = _MT + row_height * len(rows) + _MB
    plot_width = _W - _ML - _MR

    def x_of(value: float) -> float:
        return _ML + (value / top) * plot_width * 0.94

    parts = []
    for tick in _ticks(top):
        x = x_of(tick)
        parts.append(f'<line x1="{x:.1f}" y1="{_MT}" x2="{x:.1f}" '
                     f'y2="{height - _MB}" stroke="var(--gridline)" '
                     f'stroke-width="1"/>')
        parts.append(f'<text x="{x:.1f}" y="{height - _MB + 16}" '
                     f'text-anchor="middle" font-size="11" '
                     f'fill="var(--ink-muted)">{_fmt(tick)}s</text>')
    for index, (name, baseline, current) in enumerate(rows):
        y = _MT + row_height * index + row_height / 2
        x_base, x_cur = x_of(baseline), x_of(current)
        parts.append(f'<text x="{_ML - 8}" y="{y + 4:.1f}" '
                     f'text-anchor="end" font-size="12" '
                     f'fill="var(--ink-secondary)">{_esc(name)}</text>')
        parts.append(f'<line x1="{x_base:.1f}" y1="{y:.1f}" '
                     f'x2="{x_cur:.1f}" y2="{y:.1f}" '
                     f'stroke="var(--series-1-soft)" stroke-width="2"/>')
        parts.append(f'<circle cx="{x_base:.1f}" cy="{y:.1f}" r="5" '
                     f'fill="var(--series-1-soft)" '
                     f'stroke="var(--surface-1)" stroke-width="2">'
                     f'<title>{_esc(name)} baseline: {baseline:.2f}s'
                     f'</title></circle>')
        parts.append(f'<circle cx="{x_cur:.1f}" cy="{y:.1f}" r="5" '
                     f'fill="var(--series-1)" stroke="var(--surface-1)" '
                     f'stroke-width="2"><title>{_esc(name)} current: '
                     f'{current:.2f}s</title></circle>')
        parts.append(f'<text x="{x_cur + 10:.1f}" y="{y + 4:.1f}" '
                     f'font-size="11" fill="var(--ink-secondary)">'
                     f'{current:.2f}s</text>')
    legend = ('<div class="legend">'
              '<span class="key"><span class="swatch" '
              'style="background: var(--series-1-soft)"></span>'
              'baseline</span>'
              '<span class="key"><span class="swatch" '
              'style="background: var(--series-1)"></span>'
              'current</span></div>')
    return legend + _svg("".join(parts), height=height)


_TRAJECTORY_SLOTS = ("--series-1", "--series-2", "--series-3", "--series-4")


def _bench_trajectory_svg(reports: list[tuple[str, dict[str, Any]]]) -> str:
    """Per-section ``current_seconds`` across reports, report order."""
    section_names: list[str] = []
    for _, payload in reports:
        for name in payload.get("sections", {}):
            if name not in section_names:
                section_names.append(name)
    section_names = section_names[:len(_TRAJECTORY_SLOTS)]
    if not section_names:
        return '<p class="note">(no sections)</p>'
    series = {
        name: [float(payload.get("sections", {})
                     .get(name, {}).get("current_seconds", 0.0))
               for _, payload in reports]
        for name in section_names}
    top = max(max(values) for values in series.values())
    grid, scale = _grid(top, "s")
    plot_width = _W - _ML - _MR
    step = plot_width / max(len(reports) - 1, 1)
    parts = [grid]
    for slot, name in enumerate(section_names):
        color = f"var({_TRAJECTORY_SLOTS[slot]})"
        coords = " ".join(
            f"{_ML + index * step:.1f},{scale(value):.1f}"
            for index, value in enumerate(series[name]))
        parts.append(f'<polyline points="{coords}" fill="none" '
                     f'stroke="{color}" stroke-width="2" '
                     f'stroke-linejoin="round" stroke-linecap="round"/>')
        for index, value in enumerate(series[name]):
            parts.append(f'<circle cx="{_ML + index * step:.1f}" '
                         f'cy="{scale(value):.1f}" r="4" fill="{color}" '
                         f'stroke="var(--surface-1)" stroke-width="2">'
                         f'<title>{_esc(name)} / {_esc(reports[index][0])}:'
                         f' {value:.2f}s</title></circle>')
    for index, (label, _) in enumerate(reports):
        anchor = ("start" if index == 0
                  else "end" if index == len(reports) - 1 else "middle")
        parts.append(f'<text x="{_ML + index * step:.1f}" '
                     f'y="{_H - _MB + 16}" text-anchor="{anchor}" '
                     f'font-size="11" fill="var(--ink-muted)">'
                     f'{_esc(label)}</text>')
    legend = "".join(
        f'<span class="key"><span class="swatch" style="background: '
        f'var({_TRAJECTORY_SLOTS[slot]})"></span>{_esc(name)}</span>'
        for slot, name in enumerate(section_names))
    return f'<div class="legend">{legend}</div>' + _svg("".join(parts))


# ----------------------------------------------------------------------
# Input readers
# ----------------------------------------------------------------------
def _read_metrics(path: Path) -> dict[str, Any]:
    meta: dict[str, Any] = {}
    intervals: list[dict[str, Any]] = []
    histograms: list[dict[str, Any]] = []
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        row = json.loads(line)
        if row.get("type") == "meta":
            meta = row
        elif row.get("type") == "interval":
            intervals.append(row)
        elif row.get("type") == "histogram":
            histograms.append(row)
    return {"meta": meta, "intervals": intervals, "histograms": histograms}


def _metrics_section(paths: Sequence[Path]) -> str:
    blocks = ["<h2>Interval metrics</h2>"]
    for path in paths:
        data = _read_metrics(path)
        meta = data["meta"]
        blocks.append('<div class="card">')
        blocks.append(f"<h3>{_esc(path.name)}</h3>")
        blocks.append(f'<p class="note">bucket width '
                      f'{_esc(meta.get("bucket_cycles", "?"))} cycles, '
                      f'{_esc(meta.get("buckets", len(data["intervals"])))} '
                      f'buckets</p>')
        blocks.append("<h3>trace misses per 1000 instructions</h3>")
        blocks.append(_series_svg(data["intervals"]))
        blocks.append('<div class="grid">')
        for hist in data["histograms"]:
            blocks.append(f'<div><h3>{_esc(hist.get("name"))} '
                          f'(n={_esc(hist.get("count", 0))})</h3>'
                          f'{_histogram_svg(hist)}</div>')
        blocks.append("</div></div>")
    return "".join(blocks)


def _bench_section(paths: Sequence[Path]) -> str:
    reports = [(path.name, json.loads(path.read_text())) for path in paths]
    blocks = ["<h2>Bench</h2>"]
    if len(reports) > 1:
        blocks.append('<div class="card">'
                      "<h3>wall-time trajectory (current seconds)</h3>"
                      f"{_bench_trajectory_svg(reports)}</div>")
    for name, payload in reports:
        blocks.append('<div class="card">')
        blocks.append(f"<h3>{_esc(name)} "
                      f"({_esc(payload.get('mode', '?'))} mode, "
                      f"baseline {_esc(payload.get('baseline_commit', '?'))})"
                      f"</h3>")
        blocks.append(_bench_dumbbell_svg(payload.get("sections", {})))
        rows = "".join(
            f"<tr><td>{_esc(section_name)}</td>"
            f"<td>{_esc(section.get('specs', ''))}</td>"
            f"<td>{section.get('baseline_seconds', 0):.2f}</td>"
            f"<td>{section.get('current_seconds', 0):.2f}</td>"
            f"<td>{_esc(section.get('speedup') or 'n/a')}</td></tr>"
            for section_name, section
            in payload.get("sections", {}).items())
        blocks.append("<table><tr><th>section</th><th>specs</th>"
                      "<th>baseline s</th><th>current s</th>"
                      f"<th>speedup</th></tr>{rows}</table>")
        blocks.append("</div>")
    return "".join(blocks)


def _trajectory_section(paths: Sequence[Path]) -> str:
    """Committed ``BENCH_trajectory.jsonl`` rows as a wall-time chart.

    Each JSONL row carries ``sections.<name>.current_seconds`` — the
    same shape :func:`_bench_trajectory_svg` plots for report files —
    so trajectory rows become pseudo-reports labelled by commit.
    """
    from repro.runner import read_trajectory

    blocks = ["<h2>Bench trajectory</h2>"]
    for path in paths:
        rows = read_trajectory(path)
        blocks.append('<div class="card">')
        blocks.append(f"<h3>{_esc(path.name)} ({len(rows)} run(s))</h3>")
        if len(rows) < 2:
            blocks.append('<p class="note">(need at least two recorded '
                          "runs for a trajectory)</p>")
        else:
            reports = [(str(row.get("commit", "?")), row) for row in rows]
            blocks.append(_bench_trajectory_svg(reports))
        blocks.append("</div>")
    return "".join(blocks)


def _traces_section(paths: Sequence[Path]) -> str:
    items = []
    for path in paths:
        size = path.stat().st_size if path.is_file() else 0
        items.append(
            f'<div class="card"><h3>{_esc(path.name)}</h3>'
            f'<p class="note">{size:,} bytes — '
            f'<a href="https://ui.perfetto.dev/#!/viewer" '
            f'rel="noreferrer">open ui.perfetto.dev</a> and drop '
            f'<code>{_esc(path)}</code> into the viewer.</p></div>')
    return "<h2>Perfetto traces</h2>" + "".join(items)


def render_report(*, metrics: Sequence[str | Path] = (),
                  bench: Sequence[str | Path] = (),
                  traces: Sequence[str | Path] = (),
                  trajectory: Sequence[str | Path] = (),
                  title: str = "repro triage report") -> str:
    """The dashboard HTML for a run set (one self-contained string)."""
    metrics_paths = [Path(p) for p in metrics]
    bench_paths = [Path(p) for p in bench]
    trace_paths = [Path(p) for p in traces]
    trajectory_paths = [Path(p) for p in trajectory]
    if not (metrics_paths or bench_paths or trace_paths
            or trajectory_paths):
        raise ValueError("nothing to report: give at least one "
                         "metrics.jsonl, bench report, trajectory, "
                         "or trace")
    sections = []
    if metrics_paths:
        sections.append(_metrics_section(metrics_paths))
    if bench_paths:
        sections.append(_bench_section(bench_paths))
    if trajectory_paths:
        sections.append(_trajectory_section(trajectory_paths))
    if trace_paths:
        sections.append(_traces_section(trace_paths))
    counts = ", ".join(part for part in (
        f"{len(metrics_paths)} metrics file(s)" if metrics_paths else "",
        f"{len(bench_paths)} bench report(s)" if bench_paths else "",
        f"{len(trajectory_paths)} trajectory file(s)"
        if trajectory_paths else "",
        f"{len(trace_paths)} trace(s)" if trace_paths else "") if part)
    return (
        "<!doctype html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" '
        'content="width=device-width, initial-scale=1">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style>\n</head>\n"
        '<body class="viz-root">\n'
        f"<h1>{_esc(title)}</h1>\n"
        f'<p class="subtitle">{_esc(counts)}</p>\n'
        + "\n".join(sections)
        + "\n</body>\n</html>\n")


def write_report(path: str | Path, *,
                 metrics: Sequence[str | Path] = (),
                 bench: Sequence[str | Path] = (),
                 traces: Sequence[str | Path] = (),
                 trajectory: Sequence[str | Path] = (),
                 title: Optional[str] = None) -> Path:
    """Render and write the dashboard; returns the output path."""
    target = Path(path)
    kwargs: dict[str, Any] = {"metrics": metrics, "bench": bench,
                              "traces": traces, "trajectory": trajectory}
    if title is not None:
        kwargs["title"] = title
    target.write_text(render_report(**kwargs))
    return target
