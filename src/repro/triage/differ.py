"""The run differ: localize the first divergence between two runs.

``repro diff`` answers "these two runs disagree — *where first, and
why*?".  The search has three stages, each strictly narrowing:

1. **Aggregate short-circuit** — when both inputs are (or carry)
   :class:`~repro.runner.spec.ExperimentSpec`\\ s, their end-of-run
   metrics are fetched through the :class:`ResultCache` first (a warm
   cache answers without executing anything); equal aggregates from a
   deterministic simulator mean equal runs, and the diff stops there.
2. **Bucket localization** — otherwise both runs are materialized as
   :class:`RunCapture`\\ s (observed executions when needed) and the
   first divergent :class:`~repro.obs.metrics.IntervalMetrics` bucket
   is found by **binary search** over the monotone predicate
   "interval-bucket prefix ``0..k`` is equal" (once a prefix diverges
   it stays divergent), with per-bucket comparisons memoized so the
   probes share work.  This names a cycle window one bucket wide.
3. **Event drill** — the two :class:`~repro.obs.events.ObsBus` streams
   are restricted to that window and compared in order; the first
   differing record names the event, and
   :func:`~repro.triage.hypotheses.rank_hypotheses` turns the bucket's
   counter skews into a ranked suspect list (counter, window, source,
   pc/trace identity).

Captures serialize to a single JSON document (``TRIAGE_SCHEMA``), so a
CI job can pin two golden captures and diff them without a simulator
in the loop.
"""

from __future__ import annotations

import json
from contextlib import AbstractContextManager, nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.obs.metrics import BUCKET_COUNTERS, DEFAULT_BUCKET_CYCLES
from repro.runner.cache import ResultCache
from repro.runner.spec import ExperimentSpec
from repro.triage.hypotheses import Hypothesis, rank_hypotheses

#: Bump when the capture document layout changes incompatibly.
TRIAGE_SCHEMA = 1


@dataclass
class RunCapture:
    """Everything the differ needs from one run, as plain data.

    ``intervals`` are :meth:`IntervalMetrics.interval_rows` rows,
    ``events`` the full event stream, ``summary`` the end-of-run
    metrics mapping, ``spec`` the originating spec's ``to_dict()``
    payload when the capture came from an execution (``None`` for
    hand-built fixtures).
    """

    label: str
    bucket_cycles: int
    intervals: list[dict[str, Any]] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)
    summary: dict[str, Any] = field(default_factory=dict)
    spec: Optional[dict[str, Any]] = None

    def bucket_map(self) -> dict[int, dict[str, Any]]:
        """Bucket index -> interval row."""
        return {int(row["bucket"]): row for row in self.intervals}

    def events_in(self, start: int, end: int) -> list[dict[str, Any]]:
        """Event records with ``start <= cycle < end``, stream order."""
        return [record for record in self.events
                if start <= int(record.get("cycle", -1)) < end]

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": TRIAGE_SCHEMA,
            "kind": "triage-capture",
            "label": self.label,
            "bucket_cycles": self.bucket_cycles,
            "intervals": self.intervals,
            "events": self.events,
            "summary": self.summary,
            "spec": self.spec,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunCapture":
        return cls(label=str(payload.get("label", "capture")),
                   bucket_cycles=int(payload["bucket_cycles"]),
                   intervals=list(payload.get("intervals", [])),
                   events=list(payload.get("events", [])),
                   summary=dict(payload.get("summary", {})),
                   spec=(dict(payload["spec"])
                         if payload.get("spec") else None))

    def write(self, path: str | Path) -> Path:
        target = Path(path)
        target.write_text(json.dumps(self.to_dict(), indent=2,
                                     sort_keys=True) + "\n")
        return target


def capture_spec(spec: ExperimentSpec, *,
                 bucket_cycles: int = DEFAULT_BUCKET_CYCLES) -> RunCapture:
    """Execute ``spec`` observed and package the capture."""
    from repro.obs import run_observed
    from repro.telemetry.session import current_telemetry

    tele = current_telemetry()
    context: AbstractContextManager[Any] = (
        tele.span("triage.capture", label=spec.label,
                  bucket_cycles=bucket_cycles)
        if tele else nullcontext())
    with context:
        observed = run_observed(spec, bucket_cycles=bucket_cycles)
    assert observed.metrics is not None
    return RunCapture(label=spec.label, bucket_cycles=bucket_cycles,
                      intervals=observed.metrics.interval_rows(),
                      events=observed.events,
                      summary=dict(observed.result.metrics),
                      spec=spec.to_dict())


def host_evidence() -> list[dict[str, Any]]:
    """Wall-clock span evidence for the diff's cost accounting.

    When a telemetry session is active, the differ's ``DiffResult``
    carries the host-domain spans relevant to triage work —
    ``triage.*`` captures, ``cache.*`` lookups, ``runner.*`` passes —
    so a hypothesis reader can see *what the diff paid for* (cache
    short-circuit vs observed re-execution) alongside the cycle-domain
    findings.  Returns ``[]`` with telemetry off: evidence is strictly
    additive and never changes diff verdicts.
    """
    from repro.telemetry.session import current_telemetry

    tele = current_telemetry()
    if tele is None:
        return []
    rows: list[dict[str, Any]] = []
    for record in tele.tracer.spans():
        name = str(record.get("name", ""))
        if name.startswith(("triage.", "cache.", "runner.")):
            rows.append({"name": name,
                         "dur_us": record.get("dur_us"),
                         "attrs": dict(record.get("attrs", {}))})
    return rows


def _spec_of(payload: Mapping[str, Any]) -> Optional[ExperimentSpec]:
    """The spec a non-capture payload describes, if any.

    Accepts a :class:`RunResult` / cache-entry document (``spec`` key)
    or a bare ``ExperimentSpec.to_dict()`` payload (``benchmark`` key).
    """
    if isinstance(payload.get("spec"), Mapping):
        return ExperimentSpec.from_dict(payload["spec"])
    if "benchmark" in payload:
        known = {"benchmark", "tc_entries", "pb_entries", "static_seed",
                 "preprocess", "kind", "instructions", "workload_seed",
                 "mechanism"}
        fields_only = {key: value for key, value in payload.items()
                       if key in known}
        return ExperimentSpec.from_dict(fields_only)
    return None


def load_capture(path: str | Path, *,
                 bucket_cycles: int = DEFAULT_BUCKET_CYCLES) -> RunCapture:
    """Materialize a capture from any supported run manifest.

    Three input shapes, sniffed from the JSON payload:

    * a **capture** written by :meth:`RunCapture.write` — loaded as-is;
    * a **run manifest** (``RunResult``/cache-entry JSON, carrying a
      ``spec``) — the spec is re-executed observed (aggregates alone
      cannot be drilled);
    * a **bare spec** (``ExperimentSpec.to_dict()``) — executed
      observed.
    """
    document = Path(path)
    payload = json.loads(document.read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{document}: not a JSON object")
    if payload.get("kind") == "triage-capture" or (
            "intervals" in payload and "events" in payload):
        return RunCapture.from_dict(payload)
    spec = _spec_of(payload)
    if spec is None:
        raise ValueError(
            f"{document}: not a capture, run manifest, or spec "
            "(expected 'intervals'+'events', 'spec', or 'benchmark')")
    return capture_spec(spec, bucket_cycles=bucket_cycles)


# ----------------------------------------------------------------------
# Localization
# ----------------------------------------------------------------------
def _bucket_counters(row: Optional[Mapping[str, Any]]) -> dict[str, int]:
    """The comparable counter slice of an interval row (missing bucket
    = all zeros: a run that emitted nothing there still has a value)."""
    if row is None:
        return dict.fromkeys(BUCKET_COUNTERS, 0)
    return {name: int(row.get(name, 0)) for name in BUCKET_COUNTERS}


def first_divergent_bucket(a: RunCapture, b: RunCapture) -> Optional[int]:
    """Index of the first bucket whose counters differ, or ``None``.

    Binary search over the monotone predicate *"the bucket prefix
    0..k is equal"*: equality of a prefix can only be lost, never
    regained, as ``k`` grows, so the boundary is the first divergent
    bucket.  Per-bucket equality is memoized — the probes overlap, and
    the memo keeps the total comparison work linear in the worst case
    while typical searches touch ``O(log n)`` fresh buckets.
    """
    map_a, map_b = a.bucket_map(), b.bucket_map()
    indices = sorted(set(map_a) | set(map_b))
    if not indices:
        return None

    equal_memo: dict[int, bool] = {}

    def bucket_equal(position: int) -> bool:
        cached = equal_memo.get(position)
        if cached is None:
            index = indices[position]
            cached = (_bucket_counters(map_a.get(index))
                      == _bucket_counters(map_b.get(index)))
            equal_memo[position] = cached
        return cached

    def prefix_equal(position: int) -> bool:
        return all(bucket_equal(i) for i in range(position + 1))

    if prefix_equal(len(indices) - 1):
        return None
    low, high = 0, len(indices) - 1
    while low < high:
        mid = (low + high) // 2
        if prefix_equal(mid):
            low = mid + 1
        else:
            high = mid
    return indices[low]


@dataclass
class DiffResult:
    """Outcome of one run diff: localization + ranked hypotheses."""

    label_a: str
    label_b: str
    identical: bool
    bucket_cycles: int
    #: First divergent bucket index, or ``None`` (identical intervals).
    bucket: Optional[int] = None
    #: ``[start_cycle, end_cycle)`` of the divergent bucket.
    window: Optional[tuple[int, int]] = None
    #: Differing counters in the divergent bucket: name -> (a, b).
    counters: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: First event record differing inside the window, with the stream
    #: position: ``{"position": i, "a": record|None, "b": record|None}``.
    first_event: Optional[dict[str, Any]] = None
    hypotheses: list[Hypothesis] = field(default_factory=list)
    #: End-of-run aggregates that differ: name -> (a, b).
    summary_deltas: dict[str, tuple[Any, Any]] = field(default_factory=dict)
    #: Observed executions this diff paid for (0 = fully served from
    #: captures / the result cache).
    executed: int = 0
    #: Host-domain span evidence (:func:`host_evidence` rows) — empty
    #: when no telemetry session was active during the diff.
    host: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": TRIAGE_SCHEMA,
            "label_a": self.label_a,
            "label_b": self.label_b,
            "identical": self.identical,
            "bucket_cycles": self.bucket_cycles,
            "bucket": self.bucket,
            "window": list(self.window) if self.window else None,
            "counters": {name: list(pair)
                         for name, pair in self.counters.items()},
            "first_event": self.first_event,
            "hypotheses": [h.to_dict() for h in self.hypotheses],
            "summary_deltas": {name: list(pair) for name, pair
                               in self.summary_deltas.items()},
            "executed": self.executed,
            "host": self.host,
        }

    def format(self) -> str:
        head = f"diff: {self.label_a}  vs  {self.label_b}"
        if self.identical:
            return f"{head}\nidentical: no divergence found"
        lines = [head]
        if self.bucket is not None and self.window is not None:
            start, end = self.window
            lines.append(f"first divergent bucket: {self.bucket} "
                         f"(cycles [{start}, {end}), "
                         f"bucket width {self.bucket_cycles})")
            for name in sorted(self.counters):
                value_a, value_b = self.counters[name]
                lines.append(f"  {name:20s} {value_a:10d} {value_b:10d} "
                             f"{value_b - value_a:+d}")
        if self.first_event is not None:
            rec_a = self.first_event.get("a")
            rec_b = self.first_event.get("b")

            def show(record: Optional[Mapping[str, Any]]) -> str:
                if record is None:
                    return "(stream ended)"
                return (f"{record.get('source')}/{record.get('event')} "
                        f"@cycle {record.get('cycle')}")

            lines.append(f"first differing event (window position "
                         f"{self.first_event.get('position')}): "
                         f"a={show(rec_a)}  b={show(rec_b)}")
        if self.hypotheses:
            lines.append("hypotheses (most suspect first):")
            lines.extend(f"  {h.rank}. {h.describe()}"
                         for h in self.hypotheses)
        if self.summary_deltas:
            lines.append("end-of-run aggregate deltas:")
            lines.extend(
                f"  {name}: {pair[0]!r} -> {pair[1]!r}"
                for name, pair in sorted(self.summary_deltas.items()))
        if self.host:
            lines.append("host-span evidence (wall-clock):")
            for row in self.host:
                attrs = row.get("attrs") or {}
                detail = " ".join(f"{key}={attrs[key]}"
                                  for key in sorted(attrs))
                lines.append(f"  {row.get('name')}  "
                             f"{row.get('dur_us')}us  {detail}".rstrip())
        return "\n".join(lines)


def _summary_deltas(a: Mapping[str, Any],
                    b: Mapping[str, Any]) -> dict[str, tuple[Any, Any]]:
    deltas: dict[str, tuple[Any, Any]] = {}
    for name in sorted(set(a) | set(b)):
        if a.get(name) != b.get(name):
            deltas[name] = (a.get(name), b.get(name))
    return deltas


def diff_runs(a: RunCapture, b: RunCapture) -> DiffResult:
    """Localize the first divergence between two captures."""
    if a.bucket_cycles != b.bucket_cycles:
        raise ValueError(
            f"bucket width mismatch: {a.bucket_cycles} vs "
            f"{b.bucket_cycles} — recapture with a common width")
    result = DiffResult(label_a=a.label, label_b=b.label, identical=True,
                        bucket_cycles=a.bucket_cycles,
                        summary_deltas=_summary_deltas(a.summary, b.summary))
    divergent = first_divergent_bucket(a, b)
    if divergent is None:
        result.identical = not result.summary_deltas
        return result
    result.identical = False
    result.bucket = divergent
    start = divergent * a.bucket_cycles
    end = start + a.bucket_cycles
    result.window = (start, end)
    counters_a = _bucket_counters(a.bucket_map().get(divergent))
    counters_b = _bucket_counters(b.bucket_map().get(divergent))
    result.counters = {name: (counters_a[name], counters_b[name])
                       for name in BUCKET_COUNTERS
                       if counters_a[name] != counters_b[name]}
    events_a = a.events_in(start, end)
    events_b = b.events_in(start, end)
    for position, (rec_a, rec_b) in enumerate(zip(events_a, events_b)):
        key_a = {k: v for k, v in rec_a.items() if k != "seq"}
        key_b = {k: v for k, v in rec_b.items() if k != "seq"}
        if key_a != key_b:
            result.first_event = {"position": position,
                                  "a": rec_a, "b": rec_b}
            break
    else:
        if len(events_a) != len(events_b):
            position = min(len(events_a), len(events_b))
            result.first_event = {
                "position": position,
                "a": events_a[position] if position < len(events_a)
                else None,
                "b": events_b[position] if position < len(events_b)
                else None}
    result.hypotheses = rank_hypotheses(counters_a, counters_b,
                                        (start, end), events_a, events_b)
    return result


def diff_specs(spec_a: ExperimentSpec, spec_b: ExperimentSpec, *,
               cache: Optional[ResultCache] = None,
               bucket_cycles: int = DEFAULT_BUCKET_CYCLES) -> DiffResult:
    """Diff two spec points, executing as little as possible.

    With a ``cache``, both points' end-of-run aggregates come through
    :func:`~repro.runner.pool.run_point` first (warm entries cost no
    execution); equal aggregates from the deterministic simulator mean
    equal runs and the diff returns ``identical`` without paying for
    observed executions.  Only a real disagreement buys the two
    observed runs the bucket search needs.
    """
    from repro.runner import run_point

    if cache is not None:
        result_a = run_point(spec_a, cache=cache)
        result_b = run_point(spec_b, cache=cache)
        executed = ((0 if result_a.cached else 1)
                    + (0 if result_b.cached else 1))
        if result_a.metrics == result_b.metrics:
            return DiffResult(label_a=spec_a.label, label_b=spec_b.label,
                              identical=True, bucket_cycles=bucket_cycles,
                              executed=executed, host=host_evidence())
    else:
        executed = 0
    result = diff_runs(capture_spec(spec_a, bucket_cycles=bucket_cycles),
                       capture_spec(spec_b, bucket_cycles=bucket_cycles))
    result.executed = executed + 2
    result.host = host_evidence()
    return result


def diff_paths(path_a: str | Path, path_b: str | Path, *,
               cache: Optional[ResultCache] = None,
               bucket_cycles: int = DEFAULT_BUCKET_CYCLES) -> DiffResult:
    """Diff two on-disk run documents (the ``repro diff`` engine).

    When *both* documents merely describe specs (run manifests or bare
    spec payloads), the diff routes through :func:`diff_specs` so the
    result cache's aggregates can short-circuit execution; pre-built
    captures are diffed directly.
    """
    payload_a = json.loads(Path(path_a).read_text())
    payload_b = json.loads(Path(path_b).read_text())

    def is_capture(payload: Any) -> bool:
        return isinstance(payload, dict) and (
            payload.get("kind") == "triage-capture"
            or ("intervals" in payload and "events" in payload))

    if not is_capture(payload_a) and not is_capture(payload_b):
        spec_a = _spec_of(payload_a) if isinstance(payload_a, dict) else None
        spec_b = _spec_of(payload_b) if isinstance(payload_b, dict) else None
        if spec_a is not None and spec_b is not None:
            return diff_specs(spec_a, spec_b, cache=cache,
                              bucket_cycles=bucket_cycles)
    capture_a = load_capture(path_a, bucket_cycles=bucket_cycles)
    capture_b = load_capture(path_b, bucket_cycles=bucket_cycles)
    result = diff_runs(capture_a, capture_b)
    result.host = host_evidence()
    return result
