"""Workload profiles: the knobs that shape a synthetic benchmark.

A profile describes the control-flow *structure* of a program — code
footprint, loop behaviour, branch-bias mix, call topology, indirect
dispatch — which is what trace-cache and preconstruction behaviour
actually depends on.  The SPECint95 stand-ins in
:mod:`repro.workloads.spec95` are instances of this dataclass tuned to
the working-set ordering reported by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadProfile:
    """Parameters of one synthetic workload."""

    name: str
    seed: int = 1

    # --- code footprint -------------------------------------------------
    procedures: int = 16
    """Number of procedures besides main (call targets form a DAG)."""

    constructs_min: int = 3
    constructs_max: int = 7
    """Constructs (loops / diamonds / switches / calls / blocks) per
    procedure body."""

    block_min: int = 3
    block_max: int = 8
    """Straight-line instructions per filler block."""

    # --- loops ------------------------------------------------------------
    loop_weight: float = 0.30
    """Relative probability that a construct is a counted loop."""

    loop_trip_min: int = 2
    loop_trip_max: int = 8

    nested_loop_prob: float = 0.25
    """Probability a loop body contains a nested construct chain."""

    # --- branches ---------------------------------------------------------
    diamond_weight: float = 0.30
    """Relative probability that a construct is an if/else diamond on
    pseudo-random data."""

    biased_fraction: float = 0.6
    """Fraction of diamonds whose branch is highly biased (~97% one
    way); the rest are weak (~50/50)."""

    # --- indirect dispatch --------------------------------------------------
    switch_weight: float = 0.08
    """Relative probability that a construct is a jump-table switch."""

    switch_arms: int = 4
    """Arms per switch (power of two)."""

    # --- calls ------------------------------------------------------------
    call_weight: float = 0.22
    """Relative probability that a construct is a call to another
    procedure (targets are later-indexed procedures: a DAG)."""

    call_guard_prob: float = 0.0
    """Fraction of call sites wrapped in a *phase guard*.  A guarded
    call is active only during its phase of the driver loop: each site
    is assigned a phase id and executes for runs of consecutive driver
    iterations, then goes dormant while other phases run.  This gives
    callee subtrees long revisit distances — the capacity-miss
    behaviour of large applications (gcc's per-function pass structure,
    go's game phases) — while keeping the guard branch *biased* within
    any phase, which is what lets the preconstruction engine follow the
    dominant path into or around the subtree."""

    guard_phases: int = 4
    """Number of rotating phases (power of two).  A guarded call is
    active in 1 of ``guard_phases`` runs."""

    guard_run_shift: int = 3
    """log2 of the run length: a phase lasts ``2**guard_run_shift``
    consecutive driver iterations."""

    fptr_call_prob: float = 0.0
    """Fraction of call sites that dispatch through a function-pointer
    table (``JALR``) instead of a direct ``JAL`` — the interpreter /
    funcall idiom.  Indirect calls are statically opaque to the
    preconstruction engine (paths terminate there), so this knob
    controls how much of the call graph preconstruction can see."""

    fanout: int = 3
    """Procedures directly called from main each driver iteration."""

    # --- misc ------------------------------------------------------------
    mul_fraction: float = 0.10
    """Fraction of filler ALU instructions that are multiplies."""

    load_fraction: float = 0.12
    store_fraction: float = 0.06
    """Fractions of filler instructions that touch memory."""

    data_words: int = 1024
    """Size of the pseudo-random data array driving data-dependent
    branches (power of two)."""

    def __post_init__(self) -> None:
        if self.procedures < 1:
            raise ValueError("need at least one procedure")
        if self.switch_arms & (self.switch_arms - 1):
            raise ValueError("switch_arms must be a power of two")
        if self.data_words & (self.data_words - 1):
            raise ValueError("data_words must be a power of two")
        if not 0.0 <= self.biased_fraction <= 1.0:
            raise ValueError("biased_fraction must be a probability")
        if self.constructs_min > self.constructs_max:
            raise ValueError("constructs_min > constructs_max")
        if self.block_min > self.block_max:
            raise ValueError("block_min > block_max")
        if self.fanout < 1:
            raise ValueError("fanout must be >= 1")
        if self.guard_phases & (self.guard_phases - 1):
            raise ValueError("guard_phases must be a power of two")
        if self.guard_run_shift < 0:
            raise ValueError("guard_run_shift must be >= 0")
        if not 0.0 <= self.call_guard_prob <= 1.0:
            raise ValueError("call_guard_prob must be a probability")
        if not 0.0 <= self.fptr_call_prob <= 1.0:
            raise ValueError("fptr_call_prob must be a probability")

    @property
    def construct_weights(self) -> dict[str, float]:
        """Normalised construct mix (the remainder is filler blocks)."""
        weights = {
            "loop": self.loop_weight,
            "diamond": self.diamond_weight,
            "switch": self.switch_weight,
            "call": self.call_weight,
        }
        total = sum(weights.values())
        if total > 1.0:
            weights = {k: v / total for k, v in weights.items()}
            total = 1.0
        weights["block"] = 1.0 - total
        return weights
