"""Seeded sampling of adversarial :class:`WorkloadProfile`\\ s.

The SPECint95 stand-ins (:mod:`repro.workloads.spec95`) are *friendly*
profiles: tuned mixes that exercise the trace cache the way the paper's
benchmarks do.  The differential-validation fuzzer needs the opposite —
randomized-but-reproducible profiles that push the generator and every
model above it into corners the fixed profiles never reach: deep call
chains, degenerate one-arm switch tables, single-iteration loops,
near-empty procedures, all-indirect call graphs.

Every fuzz profile is a pure function of one integer seed:
``fuzz_profile(7)`` is byte-for-byte identical across processes and
``PYTHONHASHSEED`` values, so a fuzz case can be named (``"fuzz-7"``),
content-addressed through :class:`repro.runner.ExperimentSpec`, and
replayed from nothing but its seed.
"""

from __future__ import annotations

import random
from dataclasses import replace

from repro.workloads.profiles import WorkloadProfile

#: Benchmark-name prefix that routes :func:`repro.workloads.build_workload`
#: to the fuzz sampler: ``"fuzz-<seed>"``.
FUZZ_PREFIX = "fuzz-"

#: Decouples profile-shape sampling from the workload's own data seed.
_SHAPE_SALT = 0x5EED_FACE

#: The degenerate shapes the sampler injects, each with the probability
#: that a given fuzz seed draws it (independently; several can stack).
DEGENERATE_SHAPES = ("deep_calls", "degenerate_switch",
                     "single_trip_loops", "near_empty_procs",
                     "indirect_heavy")


def is_fuzz_name(name: str) -> bool:
    """True for benchmark names the fuzz sampler owns (``fuzz-<seed>``)."""
    if not name.startswith(FUZZ_PREFIX):
        return False
    suffix = name[len(FUZZ_PREFIX):]
    return suffix.isdigit()


def fuzz_seed_of(name: str) -> int:
    """The integer seed encoded in a ``fuzz-<seed>`` benchmark name."""
    if not is_fuzz_name(name):
        raise ValueError(f"not a fuzz benchmark name: {name!r}")
    return int(name[len(FUZZ_PREFIX):])


def fuzz_profile(seed: int) -> WorkloadProfile:
    """The deterministic fuzz profile named ``fuzz-<seed>``.

    Samples every structural knob from a :class:`random.Random` seeded
    only by ``seed`` (mixed with a fixed salt so the *shape* stream is
    independent of the workload's own data stream), then layers zero or
    more degenerate shapes on top.  The result always satisfies
    :class:`WorkloadProfile`'s validation invariants.
    """
    if seed < 0:
        raise ValueError("fuzz seed must be non-negative")
    rng = random.Random((seed << 1) ^ _SHAPE_SALT)

    constructs_min = rng.randint(0, 4)
    loop_trip_min = rng.randint(1, 6)
    block_min = rng.randint(1, 4)
    profile = WorkloadProfile(
        name=f"{FUZZ_PREFIX}{seed}",
        seed=seed,
        procedures=rng.randint(1, 48),
        constructs_min=constructs_min,
        constructs_max=constructs_min + rng.randint(0, 6),
        block_min=block_min,
        block_max=block_min + rng.randint(0, 8),
        loop_weight=rng.uniform(0.0, 0.5),
        loop_trip_min=loop_trip_min,
        loop_trip_max=loop_trip_min + rng.randint(0, 20),
        nested_loop_prob=rng.uniform(0.0, 0.6),
        diamond_weight=rng.uniform(0.0, 0.5),
        biased_fraction=rng.choice((0.0, 1.0, rng.random())),
        switch_weight=rng.uniform(0.0, 0.25),
        switch_arms=rng.choice((1, 2, 4, 8, 16)),
        call_weight=rng.uniform(0.0, 0.5),
        call_guard_prob=rng.choice((0.0, 1.0, rng.random())),
        guard_phases=rng.choice((1, 2, 4, 8)),
        guard_run_shift=rng.randint(0, 5),
        fptr_call_prob=rng.choice((0.0, rng.random())),
        fanout=rng.randint(1, 8),
        mul_fraction=rng.uniform(0.0, 0.3),
        load_fraction=rng.uniform(0.0, 0.3),
        store_fraction=rng.uniform(0.0, 0.2),
        data_words=rng.choice((8, 64, 256, 1024, 4096)),
    )

    shapes = [shape for shape in DEGENERATE_SHAPES if rng.random() < 0.18]
    for shape in shapes:
        profile = _apply_shape(profile, shape, rng)
    return profile


def _apply_shape(profile: WorkloadProfile, shape: str,
                 rng: random.Random) -> WorkloadProfile:
    """One degenerate-shape overlay (each keeps the profile valid)."""
    if shape == "deep_calls":
        # A long thin chain: every procedure calls the next, main calls
        # only the head, so the dynamic call depth spans the program.
        return replace(profile, procedures=rng.randint(32, 96),
                       call_weight=0.8, loop_weight=0.05,
                       switch_weight=0.0, fanout=1,
                       constructs_min=1, constructs_max=2)
    if shape == "degenerate_switch":
        # One-arm jump tables: an indirect jump whose table has a
        # single entry (ANDI mask 0), plus a switch-heavy mix.
        return replace(profile, switch_arms=1, switch_weight=0.5)
    if shape == "single_trip_loops":
        # Loops whose counted bound is exactly one iteration.
        return replace(profile, loop_trip_min=1, loop_trip_max=1,
                       loop_weight=0.5, nested_loop_prob=0.0)
    if shape == "near_empty_procs":
        # Procedures whose bodies shrink toward the bare prologue /
        # epilogue pair.
        return replace(profile, constructs_min=0, constructs_max=1,
                       block_min=1, block_max=2)
    if shape == "indirect_heavy":
        # Every call site dispatches through a function-pointer table;
        # statically opaque to preconstruction.
        return replace(profile, fptr_call_prob=1.0, call_weight=0.6,
                       procedures=max(profile.procedures, 8))
    raise ValueError(f"unknown degenerate shape {shape!r}")
