"""Synthetic workloads: parametric generator + SPECint95 stand-ins."""

from repro.workloads.data import (
    RANDOM_ARRAY_OFFSET,
    SCRATCH_OFFSET,
    cursor_mask,
    fill_random_array,
)
from repro.workloads.fuzz import (
    FUZZ_PREFIX,
    fuzz_profile,
    fuzz_seed_of,
    is_fuzz_name,
)
from repro.workloads.generator import GeneratedWorkload, generate
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.spec95 import (
    LARGE_WORKING_SET,
    SPEC95_NAMES,
    SPEC95_PROFILES,
    build_workload,
    profile_for,
)

__all__ = [
    "RANDOM_ARRAY_OFFSET", "SCRATCH_OFFSET", "cursor_mask",
    "fill_random_array", "GeneratedWorkload", "generate", "WorkloadProfile",
    "LARGE_WORKING_SET", "SPEC95_NAMES", "SPEC95_PROFILES", "build_workload",
    "profile_for", "FUZZ_PREFIX", "fuzz_profile", "fuzz_seed_of",
    "is_fuzz_name",
]
