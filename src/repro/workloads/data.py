"""Pseudo-random data segment driving data-dependent control flow.

The generated programs read a seeded random word array through a global
cursor register; diamond branches test masked bits of those words and
switch constructs index jump tables with them.  This reproduces the
*statistics* of data-dependent branching (bias mixes, switch-target
distributions) without needing the SPEC inputs.
"""

from __future__ import annotations

import random

from repro.program import DataSegment

#: Word offset within the data segment where the random array starts.
RANDOM_ARRAY_OFFSET = 0

#: Byte offset (from the data base) of the scratch area programs may
#: store to, kept clear of the read-only random array and jump tables.
SCRATCH_OFFSET = 0x1_0000


def fill_random_array(data: DataSegment, words: int, seed: int) -> int:
    """Append ``words`` seeded random 32-bit values; returns base address."""
    rng = random.Random(seed ^ 0xDA7A)
    return data.extend([rng.getrandbits(32) for _ in range(words)])


def cursor_mask(words: int) -> int:
    """AND-mask that wraps the global cursor over the random array."""
    if words & (words - 1):
        raise ValueError("data array size must be a power of two")
    return words - 1
