"""SPECint95 stand-in profiles.

The paper evaluates on the eight SPECint95 benchmarks.  We cannot run
SimpleScalar SPEC binaries, so each benchmark is modelled as a
:class:`WorkloadProfile` tuned to the *structural* characterisation the
paper (and the surrounding trace-cache literature) gives:

* **gcc**, **go** — the largest instruction working sets, stressing the
  trace cache the most; go additionally has many weakly-predictable
  branches (its branch behaviour is famously poor).
* **vortex** — a working set almost as large as gcc/go but highly
  *biased* branch behaviour ("preconstruction works extremely well for
  vortex"), which is exactly what the biased-path-following heuristic
  exploits.
* **perl**, **m88ksim** — interpreter / simulator dispatch loops:
  medium footprint with jump-table switches.
* **lisp** (xlisp) — call-heavy with small procedures.
* **compress**, **ijpeg** — tiny working sets, tight loops; "even a
  very small trace cache performs very well and there is little room
  for improvement."

The absolute code sizes are scaled down ~30x alongside the 200M->~200k
instruction-budget scaling, keeping the ratio of trace working set to
trace-cache capacity in the paper's regime.
"""

from __future__ import annotations

from dataclasses import replace

from repro.workloads.generator import GeneratedWorkload, generate
from repro.workloads.profiles import WorkloadProfile

SPEC95_PROFILES: dict[str, WorkloadProfile] = {
    "gcc": WorkloadProfile(
        name="gcc", seed=101,
        procedures=64, constructs_min=5, constructs_max=9,
        loop_weight=0.24, diamond_weight=0.32, switch_weight=0.08,
        call_weight=0.26, biased_fraction=0.55, switch_arms=8,
        fanout=6, nested_loop_prob=0.2,
        loop_trip_min=6, loop_trip_max=20,
        call_guard_prob=0.65, guard_phases=4, guard_run_shift=2,
        fptr_call_prob=0.10,
    ),
    "go": WorkloadProfile(
        name="go", seed=102,
        procedures=56, constructs_min=5, constructs_max=9,
        loop_weight=0.26, diamond_weight=0.36, switch_weight=0.02,
        call_weight=0.26, biased_fraction=0.35,  # weakly biased branches
        fanout=5, nested_loop_prob=0.3,
        loop_trip_min=6, loop_trip_max=20,
        call_guard_prob=0.65, guard_phases=4, guard_run_shift=2,
    ),
    "vortex": WorkloadProfile(
        name="vortex", seed=103,
        procedures=64, constructs_min=5, constructs_max=9,
        loop_weight=0.26, diamond_weight=0.26, switch_weight=0.0,
        call_weight=0.34, biased_fraction=0.98,  # highly biased branches
        fanout=6, nested_loop_prob=0.2,
        loop_trip_min=10, loop_trip_max=30,
        call_guard_prob=0.80, guard_phases=4, guard_run_shift=3,
    ),
    "perl": WorkloadProfile(
        name="perl", seed=104,
        procedures=18, constructs_min=4, constructs_max=7,
        loop_weight=0.30, diamond_weight=0.28, switch_weight=0.10,
        call_weight=0.20, biased_fraction=0.65, switch_arms=8,
        fanout=3, nested_loop_prob=0.25,
        loop_trip_min=4, loop_trip_max=14,
        call_guard_prob=0.50, guard_phases=4, guard_run_shift=2,
        fptr_call_prob=0.15,  # interpreter dispatch
    ),
    "m88ksim": WorkloadProfile(
        name="m88ksim", seed=105,
        procedures=18, constructs_min=4, constructs_max=7,
        loop_weight=0.30, diamond_weight=0.26, switch_weight=0.12,
        call_weight=0.20, biased_fraction=0.7, switch_arms=8,
        fanout=3, nested_loop_prob=0.25,
        call_guard_prob=0.45, guard_phases=4, guard_run_shift=2,
    ),
    "lisp": WorkloadProfile(
        name="lisp", seed=106,
        procedures=20, constructs_min=3, constructs_max=5,
        loop_weight=0.22, diamond_weight=0.28, switch_weight=0.04,
        call_weight=0.36, biased_fraction=0.6,   # call-heavy, small procs
        fanout=4, nested_loop_prob=0.15,
        call_guard_prob=0.45, guard_phases=4, guard_run_shift=2,
        fptr_call_prob=0.20,  # funcall-style dispatch
    ),
    "compress": WorkloadProfile(
        name="compress", seed=107,
        procedures=5, constructs_min=3, constructs_max=5,
        loop_weight=0.42, diamond_weight=0.30, switch_weight=0.0,
        call_weight=0.12, biased_fraction=0.65,
        fanout=2, nested_loop_prob=0.4, loop_trip_max=12,
        call_guard_prob=0.10, guard_phases=2, guard_run_shift=2,
    ),
    "ijpeg": WorkloadProfile(
        name="ijpeg", seed=108,
        procedures=7, constructs_min=3, constructs_max=6,
        loop_weight=0.44, diamond_weight=0.24, switch_weight=0.0,
        call_weight=0.14, biased_fraction=0.8,
        fanout=2, nested_loop_prob=0.5, loop_trip_max=16,
        call_guard_prob=0.15, guard_phases=2, guard_run_shift=2,
    ),
}

#: The paper's presentation order.
SPEC95_NAMES = tuple(SPEC95_PROFILES)

#: Benchmarks the paper singles out as having the largest working sets.
LARGE_WORKING_SET = ("gcc", "go", "vortex")


def profile_for(name: str, seed: int | None = None) -> WorkloadProfile:
    """The profile behind a benchmark name.

    Accepts the SPECint95 stand-in names *and* fuzz names
    (``fuzz-<seed>``, resolved through
    :func:`repro.workloads.fuzz.fuzz_profile`), so every layer keyed by
    benchmark name — :class:`repro.runner.ExperimentSpec`, the stream
    cache, the differential checker — covers fuzz cases uniformly.
    ``seed`` overrides the profile's own workload seed.
    """
    from repro.workloads.fuzz import fuzz_profile, fuzz_seed_of, is_fuzz_name

    if is_fuzz_name(name):
        profile = fuzz_profile(fuzz_seed_of(name))
    else:
        try:
            profile = SPEC95_PROFILES[name]
        except KeyError:
            raise ValueError(
                f"unknown benchmark {name!r}; choose from {SPEC95_NAMES} "
                f"or a fuzz name like 'fuzz-7'"
            ) from None
    if seed is not None:
        profile = replace(profile, seed=seed)
    return profile


def build_workload(name: str, seed: int | None = None) -> GeneratedWorkload:
    """Generate the named benchmark (deterministic per name).

    ``seed`` overrides the profile's own seed, producing a structurally
    equivalent but differently-shuffled instance of the benchmark —
    the knob behind :class:`repro.runner.ExperimentSpec.workload_seed`.
    """
    return generate(profile_for(name, seed))
