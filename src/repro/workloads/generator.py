"""Synthetic workload generator.

Generates *real executable programs* for the repro ISA whose control
flow has the structure that trace caches and preconstruction care
about: procedures (a call DAG rooted at ``main``), counted and
data-dependent loops, biased and weak if/else diamonds on pseudo-random
data, and jump-table switches (register-indirect dispatch).

Register conventions used by generated code:

====  =============================================================
r1-r12  procedure-local (loop counters/limits, compute temps);
        callee-saved in the prologue when used
r13   data-array base (0x40_0000), materialised in every prologue
r14   scratch-store base (0x41_0000)
r15   main's driver iteration counter
r16-r18  switch dispatch temps (volatile)
r20   global data cursor index (deliberately *not* saved/restored,
      so data-dependent behaviour does not repeat per call)
r21-r23  diamond / filler temps (volatile)
r29   stack pointer; r31 link register
====  =============================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.isa import Instruction, Opcode, RA, SP
from repro.program import (
    BasicBlock,
    Call,
    ControlFlowGraph,
    DataSegment,
    Procedure,
    ProgramImage,
    Reloc,
    TermKind,
    Terminator,
    layout,
)
from repro.workloads.data import cursor_mask, fill_random_array
from repro.workloads.profiles import WorkloadProfile

_DATA_BASE_HI = 0x40      # lui value for the data array base
_SCRATCH_BASE_HI = 0x41   # lui value for the scratch store area
_STACK_HI = 0x80          # lui value for the initial stack pointer

_LOCAL_POOL = tuple(range(1, 13))
_CURSOR = 20
_T0, _T1, _T2 = 21, 22, 23      # volatile temps
_S0, _S1, _S2 = 16, 17, 18      # switch temps
_DATA_BASE_REG = 13
_SCRATCH_BASE_REG = 14

_STRONG_MASK = 63   # biased diamond: taken ~63/64 of the time
_WEAK_MASK = 1      # weak diamond: ~50/50


class WorkloadVerificationError(RuntimeError):
    """A generated workload failed the post-generation verifier gate."""

    def __init__(self, name: str, findings) -> None:
        self.findings = list(findings)
        details = "\n".join(f"  {f}" for f in self.findings)
        super().__init__(
            f"generated workload {name!r} failed verification "
            f"({len(self.findings)} errors):\n{details}")


@dataclass
class GeneratedWorkload:
    """A linked synthetic benchmark plus its provenance.

    ``branch_intents`` maps the byte address of each intentful
    conditional branch to the generator's intent kind
    (``diamond_strong`` / ``diamond_weak`` / ``loop_back`` / ``guard``)
    so the verifier can cross-check emitted code against what the
    generator meant to emit.
    """

    profile: WorkloadProfile
    image: ProgramImage
    procedures: list[Procedure]
    branch_intents: dict[int, str] = field(default_factory=dict)


def generate(profile: WorkloadProfile,
             verify: bool = True) -> GeneratedWorkload:
    """Generate, link, and return the workload described by ``profile``.

    With ``verify`` (the default), the linked image is run through the
    static verifier and any ERROR-severity finding aborts generation
    with :class:`WorkloadVerificationError` — a generator bug must
    never silently become a simulation result.
    """
    rng = random.Random(profile.seed)
    data = DataSegment()
    fill_random_array(data, profile.data_words, profile.seed)

    names = [f"p{i}" for i in range(profile.procedures)]
    procedures = []
    intent_labels: list[tuple[str, str]] = []
    for i, name in enumerate(names):
        callees = names[i + 1:i + 1 + 8]
        emitter = _ProcedureEmitter(name, profile, rng, data, callees)
        procedures.append(emitter.build())
        intent_labels.extend(emitter.branch_intents)

    top_level = names[:min(profile.fanout, len(names))]
    procedures.insert(0, _build_main(top_level, profile))

    image = layout(procedures, entry="main", data=data)

    # The intentful branch is its block's terminator: it lands right
    # after the block body (one instruction per body item — a Call
    # lowers to a single JAL).
    body_len = {block.label: len(block.body)
                for proc in procedures for block in proc.cfg.blocks}
    branch_intents = {
        image.labels[label] + 4 * body_len[label]: kind
        for label, kind in intent_labels}

    if verify:
        from repro.static.verifier import verify_image
        report = verify_image(image, intents=branch_intents)
        if report.errors:
            raise WorkloadVerificationError(profile.name, report.errors)

    return GeneratedWorkload(profile=profile, image=image,
                             procedures=procedures,
                             branch_intents=branch_intents)


def _build_main(top_level: list[str], profile: WorkloadProfile) -> Procedure:
    """The driver: initialise globals, then call the top-level
    procedures forever (runs are bounded by instruction budget)."""
    cfg = ControlFlowGraph()
    setup = [
        Instruction(Opcode.LUI, rd=SP, imm=_STACK_HI),
        Instruction(Opcode.ADDI, rd=_CURSOR, rs1=0, imm=0),
        Instruction(Opcode.ADDI, rd=15, rs1=0, imm=0),
    ]
    cfg.add(BasicBlock(
        label="main", body=setup,
        terminator=Terminator(TermKind.FALLTHROUGH, targets=("main:loop",))))
    body: list = [Call(name) for name in top_level]
    body.append(Instruction(Opcode.ADDI, rd=15, rs1=15, imm=1))
    cfg.add(BasicBlock(
        label="main:loop", body=body,
        terminator=Terminator(TermKind.JUMP, targets=("main:loop",))))
    return Procedure(name="main", cfg=cfg)


class _ProcedureEmitter:
    """Emits one procedure's CFG from the profile's construct mix."""

    def __init__(self, name: str, profile: WorkloadProfile,
                 rng: random.Random, data: DataSegment,
                 callees: list[str]) -> None:
        self.name = name
        self.profile = profile
        self.rng = rng
        self.data = data
        self.callees = callees
        self._label_counter = 0
        self._blocks: list[BasicBlock] = []
        self._body: list = []
        self._label = self._new_label()
        self._pool = list(_LOCAL_POOL)
        self._used_locals: list[int] = []
        self._live: list[int] = []
        self._makes_calls = False
        self._uses_stores = False
        self._cursor_mask = cursor_mask(profile.data_words)
        #: (block label, intent kind) for every intentful branch; the
        #: branch is that block's terminator.
        self.branch_intents: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    # Label / block plumbing
    # ------------------------------------------------------------------
    def _new_label(self) -> str:
        self._label_counter += 1
        return f"{self.name}:b{self._label_counter}"

    def _close(self, terminator: Terminator) -> None:
        self._blocks.append(BasicBlock(label=self._label, body=self._body,
                                       terminator=terminator))
        self._body = []

    def _open(self, label: str) -> None:
        self._label = label

    def _fall_to(self, label: str) -> None:
        self._close(Terminator(TermKind.FALLTHROUGH, targets=(label,)))
        self._open(label)

    # ------------------------------------------------------------------
    # Register allocation
    # ------------------------------------------------------------------
    def _alloc(self) -> int | None:
        if not self._pool:
            return None
        reg = self._pool.pop(0)
        self._used_locals.append(reg)
        return reg

    # ------------------------------------------------------------------
    # Construct emitters
    # ------------------------------------------------------------------
    def _emit_filler(self, count: int | None = None) -> None:
        """Straight-line compute: ALU mix with occasional memory ops."""
        profile = self.profile
        rng = self.rng
        if count is None:
            count = rng.randint(profile.block_min, profile.block_max)
        if not self._live:
            reg = self._alloc() or _T0
            self._body.append(Instruction(Opcode.ADDI, rd=reg, rs1=0,
                                          imm=rng.randint(1, 100)))
            self._live.append(reg)
            count -= 1
        for _ in range(max(0, count)):
            roll = rng.random()
            dst = rng.choice(self._live + [_T0])
            src = rng.choice(self._live)
            if roll < profile.load_fraction:
                offset = 4 * rng.randrange(profile.data_words)
                self._body.append(Instruction(
                    Opcode.LW, rd=dst, rs1=_DATA_BASE_REG, imm=offset))
            elif roll < profile.load_fraction + profile.store_fraction:
                self._uses_stores = True
                offset = 4 * rng.randrange(256)
                self._body.append(Instruction(
                    Opcode.SW, rs1=_SCRATCH_BASE_REG, rs2=src, imm=offset))
            elif roll < (profile.load_fraction + profile.store_fraction
                         + profile.mul_fraction):
                src2 = rng.choice(self._live)
                self._body.append(Instruction(
                    Opcode.MUL, rd=dst, rs1=src, rs2=src2))
            else:
                op = rng.choice((Opcode.ADD, Opcode.SUB, Opcode.XOR,
                                 Opcode.ADDI, Opcode.SLLI, Opcode.ORI))
                if op in (Opcode.ADDI, Opcode.ORI):
                    self._body.append(Instruction(
                        op, rd=dst, rs1=src, imm=rng.randint(1, 63)))
                elif op is Opcode.SLLI:
                    self._body.append(Instruction(
                        op, rd=dst, rs1=src, imm=rng.randint(1, 4)))
                else:
                    src2 = rng.choice(self._live)
                    self._body.append(Instruction(op, rd=dst, rs1=src,
                                                  rs2=src2))

    def _emit_cursor_advance(self, result_reg: int) -> None:
        """cursor++, wrap, load data[cursor] into ``result_reg``."""
        self._body.extend([
            Instruction(Opcode.ADDI, rd=_CURSOR, rs1=_CURSOR, imm=1),
            Instruction(Opcode.ANDI, rd=_CURSOR, rs1=_CURSOR,
                        imm=self._cursor_mask),
            Instruction(Opcode.SLLI, rd=_T1, rs1=_CURSOR, imm=2),
            Instruction(Opcode.ADD, rd=_T1, rs1=_DATA_BASE_REG, rs2=_T1),
            Instruction(Opcode.LW, rd=result_reg, rs1=_T1, imm=0),
        ])

    def _emit_diamond(self) -> None:
        """Data-dependent if/else on a masked random word."""
        rng = self.rng
        strong = rng.random() < self.profile.biased_fraction
        mask = _STRONG_MASK if strong else _WEAK_MASK
        then_label = self._new_label()
        else_label = self._new_label()
        join_label = self._new_label()
        self._emit_cursor_advance(_T0)
        self._body.append(Instruction(Opcode.ANDI, rd=_T0, rs1=_T0,
                                      imm=mask))
        # bne: taken whenever any masked bit is set (prob 1 - 2^-bits).
        self.branch_intents.append(
            (self._label, "diamond_strong" if strong else "diamond_weak"))
        self._close(Terminator(
            TermKind.BRANCH, targets=(then_label, else_label),
            branch_op=Opcode.BNE, rs1=_T0, rs2=0))
        self._open(else_label)
        self._emit_filler(rng.randint(2, 4))
        self._close(Terminator(TermKind.JUMP, targets=(join_label,)))
        self._open(then_label)
        self._emit_filler(rng.randint(2, 4))
        self._fall_to(join_label)

    def _emit_loop(self, depth: int) -> None:
        counter = self._alloc()
        limit = self._alloc()
        if counter is None or limit is None:
            self._emit_filler()
            return
        rng = self.rng
        head_label = self._new_label()
        exit_label = self._new_label()
        self._body.append(Instruction(Opcode.ADDI, rd=counter, rs1=0, imm=0))
        if rng.random() < 0.25:
            # Data-dependent trip count: a weakly-predictable loop bound.
            self._emit_cursor_advance(limit)
            trip_mask = 7
            self._body.append(Instruction(Opcode.ANDI, rd=limit, rs1=limit,
                                          imm=trip_mask))
            self._body.append(Instruction(Opcode.ORI, rd=limit, rs1=limit,
                                          imm=1))
        else:
            trip = rng.randint(self.profile.loop_trip_min,
                               self.profile.loop_trip_max)
            self._body.append(Instruction(Opcode.ADDI, rd=limit, rs1=0,
                                          imm=trip))
        self._fall_to(head_label)
        if depth > 0 and rng.random() < self.profile.nested_loop_prob:
            self._emit_construct(depth - 1)
        else:
            self._emit_filler()
        self._body.append(Instruction(Opcode.ADDI, rd=counter, rs1=counter,
                                      imm=1))
        self.branch_intents.append((self._label, "loop_back"))
        self._close(Terminator(
            TermKind.BRANCH, targets=(head_label, exit_label),
            branch_op=Opcode.BLT, rs1=counter, rs2=limit))
        self._open(exit_label)

    def _emit_switch(self) -> None:
        """Jump-table dispatch on masked random data (indirect jump)."""
        rng = self.rng
        arms = self.profile.switch_arms
        arm_labels = [self._new_label() for _ in range(arms)]
        join_label = self._new_label()
        table_addr = self.data.extend(
            [Reloc(label) for label in arm_labels])
        self._emit_cursor_advance(_S0)
        self._body.extend([
            Instruction(Opcode.ANDI, rd=_S0, rs1=_S0, imm=arms - 1),
            Instruction(Opcode.SLLI, rd=_S0, rs1=_S0, imm=2),
            Instruction(Opcode.LUI, rd=_S1, imm=table_addr >> 16),
            Instruction(Opcode.ORI, rd=_S1, rs1=_S1,
                        imm=table_addr & 0xFFFF),
            Instruction(Opcode.ADD, rd=_S1, rs1=_S1, rs2=_S0),
            Instruction(Opcode.LW, rd=_S2, rs1=_S1, imm=0),
        ])
        self._close(Terminator(TermKind.INDIRECT_JUMP,
                               targets=tuple(arm_labels), reg=_S2))
        for i, label in enumerate(arm_labels):
            self._open(label)
            self._emit_filler(rng.randint(2, 4))
            if i == arms - 1:
                self._fall_to(join_label)
            else:
                self._close(Terminator(TermKind.JUMP, targets=(join_label,)))
        # join_label already open via the last arm's fallthrough.

    def _emit_call(self) -> None:
        if not self.callees:
            self._emit_filler()
            return
        self._makes_calls = True
        if (len(self.callees) >= 2
                and self.rng.random() < self.profile.fptr_call_prob):
            self._emit_fptr_call()
            return
        callee = self.rng.choice(self.callees)
        if self.rng.random() < self.profile.call_guard_prob:
            self._emit_guarded_call(callee)
        else:
            self._body.append(Call(callee))

    def _emit_fptr_call(self) -> None:
        """Function-pointer dispatch: ``JALR`` through a data table of
        procedure addresses, indexed by pseudo-random data (the
        interpreter / funcall idiom).  Statically opaque to the
        preconstruction walker."""
        count = min(len(self.callees), 4)
        targets = self.rng.sample(self.callees, count)
        # Table size must be a power of two for the masking index.
        while count & (count - 1):
            targets.append(self.rng.choice(targets))
            count += 1
        table_addr = self.data.extend([Reloc(name) for name in targets])
        self._emit_cursor_advance(_S0)
        self._body.extend([
            Instruction(Opcode.ANDI, rd=_S0, rs1=_S0, imm=count - 1),
            Instruction(Opcode.SLLI, rd=_S0, rs1=_S0, imm=2),
            Instruction(Opcode.LUI, rd=_S1, imm=table_addr >> 16),
            Instruction(Opcode.ORI, rd=_S1, rs1=_S1,
                        imm=table_addr & 0xFFFF),
            Instruction(Opcode.ADD, rd=_S1, rs1=_S1, rs2=_S0),
            Instruction(Opcode.LW, rd=_S2, rs1=_S1, imm=0),
            Instruction(Opcode.JALR, rd=RA, rs1=_S2),
        ])

    def _emit_guarded_call(self, callee: str) -> None:
        """A call behind a rotating *phase* guard.

        ``if ((iteration >> run_shift) & (phases-1)) == site_phase:
        call callee`` — the subtree is entered for runs of consecutive
        driver iterations and then lies dormant, producing long revisit
        distances.  Within any phase the guard branch is strongly
        biased, so the preconstruction bias heuristic follows the
        currently-dominant direction."""
        phases = self.profile.guard_phases
        site_phase = self.rng.randrange(phases)
        call_label = self._new_label()
        join_label = self._new_label()
        self._body.extend([
            Instruction(Opcode.SRLI, rd=_T0, rs1=15,
                        imm=self.profile.guard_run_shift),
            Instruction(Opcode.ANDI, rd=_T0, rs1=_T0, imm=phases - 1),
            Instruction(Opcode.XORI, rd=_T0, rs1=_T0, imm=site_phase),
        ])
        # Taken (phase mismatch) jumps over the call.
        self.branch_intents.append((self._label, "guard"))
        self._close(Terminator(
            TermKind.BRANCH, targets=(join_label, call_label),
            branch_op=Opcode.BNE, rs1=_T0, rs2=0))
        self._open(call_label)
        self._body.append(Call(callee))
        self._fall_to(join_label)

    def _emit_construct(self, depth: int) -> None:
        weights = self.profile.construct_weights
        kinds = list(weights)
        chosen = self.rng.choices(kinds, weights=[weights[k] for k in kinds])[0]
        if chosen == "loop":
            self._emit_loop(depth)
        elif chosen == "diamond":
            self._emit_diamond()
        elif chosen == "switch":
            self._emit_switch()
        elif chosen == "call":
            self._emit_call()
        else:
            self._emit_filler()

    # ------------------------------------------------------------------
    def build(self) -> Procedure:
        count = self.rng.randint(self.profile.constructs_min,
                                 self.profile.constructs_max)
        for _ in range(count):
            self._emit_construct(depth=1)
        ret_label = f"{self.name}:ret"
        self._fall_to(ret_label)
        saved = list(self._used_locals)
        frame = 4 * (len(saved) + 1)  # +1 slot for ra
        # Epilogue: restore, release frame, return.
        if self._makes_calls:
            self._body.append(Instruction(Opcode.LW, rd=RA, rs1=SP, imm=0))
        for i, reg in enumerate(saved):
            self._body.append(Instruction(Opcode.LW, rd=reg, rs1=SP,
                                          imm=4 * (i + 1)))
        self._body.append(Instruction(Opcode.ADDI, rd=SP, rs1=SP, imm=frame))
        self._close(Terminator(TermKind.RETURN))

        # Prologue block carries the procedure's entry label.
        prologue: list = [
            Instruction(Opcode.LUI, rd=_DATA_BASE_REG, imm=_DATA_BASE_HI),
            Instruction(Opcode.ADDI, rd=SP, rs1=SP, imm=-frame),
        ]
        if self._uses_stores:
            prologue.insert(1, Instruction(Opcode.LUI, rd=_SCRATCH_BASE_REG,
                                           imm=_SCRATCH_BASE_HI))
        if self._makes_calls:
            prologue.append(Instruction(Opcode.SW, rs1=SP, rs2=RA, imm=0))
        for i, reg in enumerate(saved):
            prologue.append(Instruction(Opcode.SW, rs1=SP, rs2=reg,
                                        imm=4 * (i + 1)))
        first_body_label = self._blocks[0].label
        entry = BasicBlock(
            label=self.name, body=prologue,
            terminator=Terminator(TermKind.FALLTHROUGH,
                                  targets=(first_body_label,)))
        cfg = ControlFlowGraph()
        cfg.add(entry)
        for block in self._blocks:
            cfg.add(block)
        return Procedure(name=self.name, cfg=cfg)
