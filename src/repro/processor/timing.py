"""Full trace-processor timing simulation (frontend + backend).

This is the model behind the paper's Figure 6 (speedup from
preconstruction) and Figure 8 (extended pipeline: preconstruction +
preprocessing).  It replays the committed dynamic stream trace by
trace, with:

* next-trace prediction gating the fast (trace cache) fetch path;
* slow-path fetch through the shared instruction cache when the
  predictor has no matching prediction or the trace is absent;
* mispredict resolution tied to the previous trace's last control
  transfer completing in the backend;
* the dataflow backend of :mod:`repro.processor.backend` (4 PEs,
  2-way in-order issue each, global result buses);
* optional preconstruction, funded by cycles in which the slow path is
  idle (dispatch-to-dispatch span minus slow-path busy time);
* optional fill-unit preprocessing: the backend executes the
  preprocessed *execution view* of each trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.branch import BimodalPredictor, NextTracePredictor
from repro.caches import InstructionCache
from repro.core import PreconstructionEngine
from repro.engine import FunctionalEngine, StreamRecord
from repro.isa import Instruction
from repro.preprocess import PreprocessConfig, Preprocessor
from repro.processor.backend import BackendConfig, BackendModel
from repro.program import ProgramImage
from repro.sim.config import FrontendConfig
from repro.trace import Trace, TraceCache, TraceID, TraceSelector


@dataclass(frozen=True)
class ProcessorConfig:
    """Frontend + backend + optional preprocessing."""

    frontend: FrontendConfig = field(default_factory=FrontendConfig)
    backend: BackendConfig = field(default_factory=BackendConfig)
    preprocess: Optional[PreprocessConfig] = None


@dataclass
class ProcessorStats:
    """Counters and timing results of a full-processor run."""

    instructions: int = 0
    traces: int = 0
    cycles: int = 0
    trace_hits: int = 0
    trace_misses: int = 0
    buffer_hits: int = 0
    slow_path_traces: int = 0
    ntp_correct: int = 0
    ntp_wrong: int = 0
    ntp_none: int = 0
    issue_stalls: int = 0
    idle_cycles: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def trace_miss_rate_per_ki(self) -> float:
        return (1000.0 * self.trace_misses / self.instructions
                if self.instructions else 0.0)


@dataclass
class ProcessorResult:
    config: ProcessorConfig
    stats: ProcessorStats
    preconstruction: Optional[PreconstructionEngine]
    backend: Optional[object] = None


class ProcessorSimulation:
    """Cycle-timestamped trace-processor model."""

    def __init__(self, image: ProgramImage, config: ProcessorConfig) -> None:
        self.image = image
        self.config = config
        front = config.frontend
        self.stats = ProcessorStats()
        self.icache = InstructionCache(front.icache)
        self.trace_cache = TraceCache(front.trace_cache)
        self.bimodal = BimodalPredictor(entries=front.bimodal_entries)
        self.predictor: NextTracePredictor = NextTracePredictor(
            front.predictor)
        self.selector = TraceSelector(front.selection)
        self.backend = BackendModel(config.backend)
        self.preprocessor: Optional[Preprocessor] = None
        if config.preprocess is not None and config.preprocess.any_enabled:
            self.preprocessor = Preprocessor(config.preprocess)
        self._views: dict[TraceID, tuple[Instruction, ...]] = {}
        self.precon: Optional[PreconstructionEngine] = None
        if front.preconstruction is not None:
            self.precon = PreconstructionEngine(
                image=image, icache=self.icache, bimodal=self.bimodal,
                trace_cache=self.trace_cache,
                config=front.preconstruction, selection=front.selection)
        # Timeline state
        self._fetch_free = 0
        self._prev_last_control = 0
        self._prev_retire = 0
        self._prev_dispatch = 0
        self._next_pe = 0

    # ------------------------------------------------------------------
    def run(self, stream: Iterable[StreamRecord]) -> ProcessorResult:
        feed = self.selector.feed
        step = self._process_trace
        for record in stream:
            trace = feed(record)
            if trace is not None:
                step(trace)
        tail = self.selector.flush()
        if tail is not None:
            step(tail)
        self.stats.cycles = self._prev_retire
        return ProcessorResult(config=self.config, stats=self.stats,
                               preconstruction=self.precon,
                               backend=self.backend)

    # ------------------------------------------------------------------
    def _execution_view(self, trace: Trace) -> tuple[Instruction, ...]:
        if self.preprocessor is None:
            return trace.instructions
        view = self._views.get(trace.trace_id)
        if view is None:
            view = self.preprocessor.process(trace)
            self._views[trace.trace_id] = view
        return view

    # ------------------------------------------------------------------
    def _process_trace(self, actual: Trace) -> None:
        stats = self.stats
        front = self.config.frontend
        stats.traces += 1
        stats.instructions += len(actual)

        predicted = self.predictor.predict()
        predicted_ok = predicted == actual.trace_id
        present = self.trace_cache.lookup(actual.trace_id) is not None
        if not present and self.precon is not None:
            present = self.precon.probe_and_promote(
                actual.trace_id) is not None
            if present:
                stats.buffer_hits += 1

        start = self._fetch_free
        if predicted is None:
            stats.ntp_none += 1
        elif predicted_ok:
            stats.ntp_correct += 1
        else:
            stats.ntp_wrong += 1
            # Wrong path fetched; redirect after the previous trace's
            # control transfers resolve in the backend.
            start = max(start, self._prev_last_control
                        + self.config.backend.redirect_penalty)

        slow_busy = 0
        if present:
            stats.trace_hits += 1
        else:
            stats.trace_misses += 1
        if present and (predicted_ok or predicted is not None):
            # Trace-cache supply (after redirect when mispredicted).
            fetch_done = start + 1
        else:
            # Slow path: no usable prediction or trace absent.
            stats.slow_path_traces += 1
            slow_busy = self._slow_path_cycles(actual)
            fetch_done = start + slow_busy
            if not present and not actual.partial:
                self.trace_cache.insert(actual)

        self._fetch_free = fetch_done

        pe = self._next_pe
        self._next_pe = (pe + 1) % self.config.backend.num_pes
        dispatch = max(fetch_done, self.backend.pe_free[pe])
        timing = self.backend.execute_trace(
            self._execution_view(actual), dispatch, pe,
            mem_addrs=self.selector.last_addresses)
        stats.issue_stalls += timing.issue_stalls
        retire = max(timing.done, self._prev_retire)
        self.backend.pe_free[pe] = retire
        self._prev_retire = retire
        self._prev_last_control = timing.last_control

        if self.precon is not None:
            # Slow-path hardware is idle for the remainder of the
            # dispatch-to-dispatch span (including backend-drain time).
            idle = max(0, (dispatch - self._prev_dispatch) - slow_busy)
            stats.idle_cycles += idle
            self.precon.observe_dispatch(actual)
            if idle:
                self.precon.tick(idle)
        self._prev_dispatch = dispatch

        self._train(actual, predicted)

    # ------------------------------------------------------------------
    def _slow_path_cycles(self, actual: Trace) -> int:
        """Slow-path supply latency for one trace (icache + bimodal)."""
        front = self.config.frontend
        line_bytes = self.icache.config.line_bytes
        cycles = -(-len(actual) // front.fetch_width)
        fetch_line = self.icache.fetch_line
        for line, _count in actual.line_runs(line_bytes):
            latency, missed = fetch_line(line, "slow_path", instructions=0)
            if missed:
                cycles += latency
        outcomes = actual.trace_id.outcomes
        if outcomes:
            outcome_index = 0
            predict = self.bimodal.predict
            penalty = front.branch_mispredict_penalty
            for pc, inst in zip(actual.pcs, actual.instructions):
                if inst.is_conditional_branch:
                    taken = outcomes[outcome_index]
                    outcome_index += 1
                    if predict(pc) != taken:
                        cycles += penalty
        return cycles

    def _train(self, actual: Trace, predicted) -> None:
        self.predictor.update(actual.trace_id, predicted,
                              ends_in_call=actual.ends_in_call,
                              ends_in_return=actual.ends_in_return)
        outcomes = actual.trace_id.outcomes
        if outcomes and self.config.frontend.train_bimodal_on_all_branches:
            outcome_index = 0
            update = self.bimodal.update
            for pc, inst in zip(actual.pcs, actual.instructions):
                if inst.is_conditional_branch:
                    update(pc, outcomes[outcome_index])
                    outcome_index += 1


def run_processor(image: ProgramImage, config: ProcessorConfig,
                  max_instructions: int,
                  stream: Optional[list[StreamRecord]] = None
                  ) -> ProcessorResult:
    """Convenience wrapper mirroring :func:`repro.sim.run_frontend`."""
    if stream is None:
        stream = FunctionalEngine(image).run(max_instructions)
    else:
        stream = stream[:max_instructions]
    return ProcessorSimulation(image, config).run(stream)
