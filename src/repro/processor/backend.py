"""Backend timing model: distributed trace-processor execution engine.

Models the paper's §4.1 configuration:

* four processing elements, each holding one trace (16-instruction
  window each, 64 total);
* two-way issue per PE with *windowed dynamic scheduling*: each cycle a
  PE issues up to two ready instructions from among the oldest
  ``issue_lookahead`` unissued instructions of its trace.  A lookahead
  of 1 degenerates to strict in-order issue; 16 is full out-of-order
  within the trace.  The default (5) models a small select window —
  this is why the preprocessing scheduler earns its keep by moving
  ready work into view;
* full internal bypassing (dependent ops back-to-back within a PE);
* global result buses (8 total) for cross-PE register communication: a
  result produced in cycle N is broadcast in cycle N+1 and usable by
  other PEs in cycle N+2 — one extra cycle beyond completion, plus
  possible bus contention;
* in-order trace retirement (enforced by the timing driver).

Intra-trace ordering constraints (RAW dataflow, load/store order,
control order) come from :mod:`repro.preprocess.dependence` so the
backend and the preprocessing scheduler agree on what is legal.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.caches.dcache import DataCache, DCacheConfig
from repro.isa import Instruction, Kind
from repro.preprocess.dependence import build_dependence_graph
from repro.processor.latencies import instruction_latency


@dataclass(frozen=True)
class BackendConfig:
    """Execution-engine geometry (paper §4.1 defaults)."""

    num_pes: int = 4
    issue_per_pe: int = 2
    issue_lookahead: int = 5
    result_buses: int = 8
    cross_pe_delay: int = 1    # extra cycles beyond completion
    redirect_penalty: int = 1  # fetch redirect after a resolved mispredict

    def __post_init__(self) -> None:
        if min(self.num_pes, self.issue_per_pe, self.result_buses,
               self.issue_lookahead) <= 0:
            raise ValueError("backend geometry must be positive")


class _RegValue:
    """Producer record for one architectural register."""

    __slots__ = ("ready", "pe", "broadcast")

    def __init__(self, ready: int, pe: int) -> None:
        self.ready = ready
        self.pe = pe
        self.broadcast: int | None = None  # bus slot, allocated lazily


@dataclass
class TraceTiming:
    """Timing outcome of executing one trace."""

    dispatch: int
    done: int              # all instructions complete
    last_control: int      # last control transfer resolved
    issue_stalls: int = 0  # instruction-cycles spent waiting to issue


class BackendModel:
    """Shared backend state across the whole run."""

    def __init__(self, config: BackendConfig | None = None,
                 dcache: DataCache | None = None) -> None:
        self.config = config or BackendConfig()
        self.dcache = dcache if dcache is not None else DataCache(
            DCacheConfig())
        self._regs: dict[int, _RegValue] = {}
        self._bus_load: Counter = Counter()
        self._graph_cache: dict = {}
        self.pe_free: list[int] = [0] * self.config.num_pes
        self.bus_conflicts = 0

    # ------------------------------------------------------------------
    def _operand_ready(self, reg: int, pe: int, dispatch: int) -> int:
        """Availability of a register produced *outside* this trace."""
        value = self._regs.get(reg)
        if value is None:
            return 0
        if value.pe == pe or value.ready <= dispatch:
            # Same PE (bypassed) or already architected when we started.
            return value.ready
        # Cross-PE: needs a global result bus.
        if value.broadcast is None:
            slot = value.ready
            while self._bus_load[slot] >= self.config.result_buses:
                slot += 1
                self.bus_conflicts += 1
            self._bus_load[slot] += 1
            value.broadcast = slot
        return value.broadcast + self.config.cross_pe_delay

    # ------------------------------------------------------------------
    def execute_trace(self, instructions: tuple[Instruction, ...],
                      dispatch: int, pe: int,
                      mem_addrs: tuple[int, ...] = ()) -> TraceTiming:
        """Timestamp one trace's execution on ``pe`` starting at
        ``dispatch``; updates shared register/bus state.

        ``mem_addrs`` holds the effective addresses of the trace's
        memory instructions in program order (preprocessing preserves
        relative memory order, so the mapping survives scheduling).
        Loads complete through the data-cache timing model; stores
        retire into the write buffer after their port access.
        """
        config = self.config
        n = len(instructions)
        graph = self._graph_cache.get(instructions)
        if graph is None:
            graph = build_dependence_graph(instructions)
            self._graph_cache[instructions] = graph

        # External operand availability per instruction: sources with no
        # in-trace producer read backend register state.
        produced_in_trace: dict[int, int] = {}
        external_ready = [dispatch] * n
        for i, inst in enumerate(instructions):
            for reg in inst.source_registers():
                if reg not in produced_in_trace:
                    ready = self._operand_ready(reg, pe, dispatch)
                    if ready > external_ready[i]:
                        external_ready[i] = ready
            dest = inst.destination_register()
            if dest is not None:
                produced_in_trace.setdefault(dest, i)

        # Map each memory instruction (by its position among memory
        # instructions) to its effective address.
        mem_index = [0] * n
        k = 0
        for i, inst in enumerate(instructions):
            if inst.kind in (Kind.LOAD, Kind.STORE):
                mem_index[i] = k
                k += 1

        complete = [0] * n
        issued = [False] * n
        pending = list(range(n))
        cycle = dispatch
        stalls = 0
        guard = 0
        while pending:
            guard += 1
            if guard > 100_000:  # pragma: no cover - model bug backstop
                raise RuntimeError("backend issue loop failed to converge")
            slots = config.issue_per_pe
            window = pending[:config.issue_lookahead]
            for index in window:
                if slots == 0:
                    break
                if external_ready[index] > cycle:
                    continue
                deps = graph.preds[index]
                if any(not issued[d] or complete[d] > cycle for d in deps):
                    continue
                issued[index] = True
                inst = instructions[index]
                if inst.kind in (Kind.LOAD, Kind.STORE) and mem_addrs:
                    pos = mem_index[index]
                    addr = (mem_addrs[pos] if pos < len(mem_addrs) else 0)
                    latency = self.dcache.access(
                        addr, inst.kind is Kind.STORE, cycle, pe)
                    if inst.kind is Kind.STORE:
                        latency = 1  # retires into the write buffer
                    complete[index] = cycle + latency
                else:
                    complete[index] = cycle + instruction_latency(inst)
                slots -= 1
            newly = [i for i in pending if issued[i]]
            if newly:
                pending = [i for i in pending if not issued[i]]
            stalls += min(len(window), config.issue_per_pe) - (
                config.issue_per_pe - slots)
            cycle += 1

        done = dispatch
        last_control = dispatch
        for i, inst in enumerate(instructions):
            if complete[i] > done:
                done = complete[i]
            dest = inst.destination_register()
            if dest is not None:
                self._regs[dest] = _RegValue(complete[i], pe)
            if ((inst.is_control or inst.is_conditional_branch)
                    and complete[i] > last_control):
                last_control = complete[i]
        return TraceTiming(dispatch=dispatch, done=done,
                           last_control=last_control, issue_stalls=stalls)
