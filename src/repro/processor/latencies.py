"""Operation latencies for the backend timing model.

"The latency of each operation is equivalent to the latency of the
corresponding operation in the MIPS R10000 processor" — integer ALU 1,
multiply 3, divide 20 (as encoded in :mod:`repro.isa.opcodes`); loads
take 2 cycles on a data-cache hit.  The generated workloads' data
footprint (a few KB) fits the modelled 64 KB L1 easily, so loads are
charged the hit latency (documented substitution in DESIGN.md).
"""

from __future__ import annotations

from repro.isa import Instruction


def instruction_latency(inst: Instruction) -> int:
    """Execution latency in cycles for ``inst`` (R10000 model)."""
    return inst.latency
