"""Trace-processor timing model: backend dataflow engine + full sim."""

from repro.processor.backend import BackendConfig, BackendModel, TraceTiming
from repro.processor.latencies import instruction_latency
from repro.processor.timing import (
    ProcessorConfig,
    ProcessorResult,
    ProcessorSimulation,
    ProcessorStats,
    run_processor,
)

__all__ = [
    "BackendConfig", "BackendModel", "TraceTiming", "instruction_latency",
    "ProcessorConfig", "ProcessorResult", "ProcessorSimulation",
    "ProcessorStats", "run_processor",
]
