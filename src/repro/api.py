"""Stable top-level facade: the one import surface for downstream use.

Instead of importing from five deep modules (``repro.analysis.sweeps``,
``repro.sim.frontend_runner``, ``repro.workloads.spec95``, ...),
downstream code imports everything from here::

    from repro.api import ExperimentSpec, run_point, sweep

    spec = ExperimentSpec(benchmark="gcc", tc_entries=256, pb_entries=256)
    result = run_point(spec)
    print(result.metrics["trace_misses_per_ki"])

The surface, by layer:

* **Experiment description & execution** — :class:`ExperimentSpec`,
  :class:`RunResult`, :func:`run_point`, :func:`sweep`,
  :class:`ExperimentRunner`, :class:`ResultCache`,
  :class:`StreamCache`, :func:`resolve_instructions`;
* **Workloads** — :func:`build_workload`, :data:`SPEC95_NAMES`,
  :class:`WorkloadProfile`, :func:`generate`;
* **Static analysis** — :func:`analyze` (benchmark name in, full
  :class:`StaticAnalysisReport` out), :func:`predict` (benchmark name
  in, :class:`CoveragePrediction` of the trace working set out), plus
  :class:`StaticFacts` / :func:`predict_coverage` for bespoke images;
* **Differential validation** — :func:`check_profile` (oracle verdict
  for one profile), :func:`run_fuzz` (seeded sweep behind
  ``python -m repro fuzz``), :func:`minimize_case` (failure shrinking),
  :func:`oracle_names`;
* **Simulators** (for bespoke studies) — :func:`run_frontend` (the
  unified entry point: ``mechanism=`` selects the frontend mechanism,
  ``partition=`` enables the dynamic TC/PB partition) and
  :func:`run_processor` with their configuration types
  (:func:`run_dynamic_frontend` remains as a deprecated shim); the
  batched struct-of-arrays kernel behind ``simulator="vectorized"`` —
  :data:`SIMULATOR_KINDS`, :class:`DecodedImage`, :class:`BatchPlan` /
  :func:`build_plan` / :exc:`PlanMismatchError`, and
  :func:`run_frontend_batch` (served lazily: numpy is only required
  when the vectorized kernel is actually used);
* **Frontend-mechanism zoo** — :class:`FrontendMechanism` (the seam
  every competing frontend implements), :class:`MechanismContext`,
  :func:`register_mechanism` / :func:`mechanism_names` /
  :func:`create_mechanism` (the registry), plus the head-to-head
  comparison drivers :func:`compare_sweep`, :func:`compare_specs`,
  :func:`compare_from_results`, :func:`format_compare`,
  :func:`rows_to_dicts` behind ``python -m repro compare``;
* **Observability** — :func:`run_observed`, :class:`ObsBus`, the
  event sinks, :class:`IntervalMetrics`, :func:`build_manifest`,
  :func:`write_perfetto` / :func:`validate_chrome_trace`, and the
  :func:`get_logger` / :func:`configure_logging` logging helpers;
* **Host telemetry** — wall-clock observability of the harness itself:
  :func:`enable_telemetry` / :func:`disable_telemetry` /
  :func:`telemetry_session` / :func:`current_telemetry` manage the
  process-wide :class:`Telemetry` session, :func:`span` traces a
  region, :class:`SpanTracer` / :class:`MetricsRegistry` are the
  underlying stores, :func:`format_span_tree` renders span forests,
  :func:`merged_perfetto_trace` / :func:`write_merged_perfetto` /
  :func:`validate_merged_trace` export host + cycle domains into one
  Perfetto file, and :func:`hotspot_rows` summarizes ``cProfile``
  captures; bench trajectories persist via :func:`append_trajectory` /
  :func:`read_trajectory` / :func:`trajectory_reference`;
* **Building blocks** (for custom workload scripts) —
  :func:`assemble`, :class:`ProgramImage`, :class:`FunctionalEngine`,
  :class:`TraceCache`, :class:`PreconstructionEngine`, ...

Names exported here are covered by the deprecation policy: removals go
through a ``DeprecationWarning`` cycle first.
"""

from __future__ import annotations

from repro.analysis import (
    COMPARE_PB_SIZES,
    CompareRow,
    compare_from_results,
    compare_specs,
    compare_sweep,
    compute_tables,
    figure5_sweep,
    figure6,
    figure8,
    format_all_tables,
    format_compare,
    format_figure5,
    format_figure6,
    format_figure8,
    rows_to_dicts,
)
from repro.branch import BimodalPredictor
from repro.caches import InstructionCache
from repro.check import (
    CheckReport,
    FuzzReport,
    MinimizedCase,
    Violation,
    check_profile,
    minimize_case,
    oracle_names,
    run_fuzz,
)
from repro.core import PreconstructionConfig, PreconstructionEngine
from repro.engine import FunctionalEngine
from repro.frontends import (
    FrontendMechanism,
    MechanismContext,
    create_mechanism,
    mechanism_names,
    register_mechanism,
)
from repro.isa import assemble
from repro.obs import (
    IntervalMetrics,
    JsonlSink,
    NullSink,
    ObsBus,
    ObservedRun,
    RingBufferSink,
    build_manifest,
    configure_logging,
    get_logger,
    run_observed,
    run_observed_many,
    validate_chrome_trace,
    write_perfetto,
)
from repro.program import ProgramImage
from repro.processor import ProcessorConfig, run_processor
from repro.runner import (
    DEFAULT_INSTRUCTIONS,
    SIMULATOR_KINDS,
    ExperimentRunner,
    ExperimentSpec,
    ResultCache,
    RunResult,
    StreamCache,
    TimingReport,
    append_trajectory,
    build_frontend_config,
    build_processor_config,
    read_trajectory,
    resolve_instructions,
    run_point,
    sweep,
    trajectory_reference,
)
from repro.sim import (
    DynamicPartitionConfig,
    FrontendConfig,
    run_dynamic_frontend,
    run_frontend,
)
from repro.static import (
    CoveragePrediction,
    StaticAnalysisReport,
    StaticFacts,
    analyze_image,
    predict_coverage,
)
from repro.telemetry import (
    MetricsRegistry,
    SpanTracer,
    Telemetry,
    current_telemetry,
    disable_telemetry,
    enable_telemetry,
    format_span_tree,
    hotspot_rows,
    merged_perfetto_trace,
    span,
    telemetry_session,
    validate_merged_trace,
    write_merged_perfetto,
)
from repro.trace import TraceCache, traces_of_stream
from repro.triage import (
    DiffResult,
    Hypothesis,
    RunCapture,
    capture_spec,
    diff_runs,
    diff_specs,
    load_capture,
    rank_hypotheses,
    render_report,
    write_report,
)
from repro.workloads import (
    SPEC95_NAMES,
    WorkloadProfile,
    build_workload,
    fuzz_profile,
    generate,
    profile_for,
)


def analyze(benchmark: str, *,
            workload_seed: int | None = None) -> StaticAnalysisReport:
    """Static analysis + lint report for a named benchmark.

    Builds the workload (honouring ``workload_seed``) and runs the
    whole static pipeline — CFG recovery, dominators/loops, call graph,
    verifier, region seeding — the engine behind
    ``python -m repro analyze``.
    """
    workload = build_workload(benchmark, seed=workload_seed)
    return analyze_image(workload.image, intents=workload.branch_intents,
                         name=benchmark)


def predict(benchmark: str, *,
            workload_seed: int | None = None) -> CoveragePrediction:
    """Static trace-coverage prediction for a named benchmark.

    Builds the workload and statically delimits every trace the fill
    unit can construct (§3.2) under the default selection rules — the
    engine behind ``python -m repro predict``.  The prediction's
    containment guarantee (every dynamic trace start and committed pc
    is predicted) is what the ``coverage`` oracle asserts.
    """
    workload = build_workload(benchmark, seed=workload_seed)
    return predict_coverage(workload.image)


#: Names served lazily from :mod:`repro.vector`: the batched kernel
#: needs numpy, and the default scalar pipeline must stay importable
#: without it.
_VECTOR_NAMES = ("BatchPlan", "DecodedImage", "PlanMismatchError",
                 "build_plan", "run_frontend_batch")


def __getattr__(name: str) -> object:
    if name in _VECTOR_NAMES:
        import repro.vector

        return getattr(repro.vector, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# Sorted alphabetically (ASCII order); tests/test_api_surface.py keeps
# this list in lockstep with the README's documented surface.
__all__ = [
    "BatchPlan",
    "BimodalPredictor",
    "COMPARE_PB_SIZES",
    "CheckReport",
    "CompareRow",
    "CoveragePrediction",
    "DEFAULT_INSTRUCTIONS",
    "DecodedImage",
    "DiffResult",
    "DynamicPartitionConfig",
    "ExperimentRunner",
    "ExperimentSpec",
    "FrontendConfig",
    "FrontendMechanism",
    "FunctionalEngine",
    "FuzzReport",
    "Hypothesis",
    "InstructionCache",
    "IntervalMetrics",
    "JsonlSink",
    "MechanismContext",
    "MetricsRegistry",
    "MinimizedCase",
    "NullSink",
    "ObsBus",
    "ObservedRun",
    "PlanMismatchError",
    "PreconstructionConfig",
    "PreconstructionEngine",
    "ProcessorConfig",
    "ProgramImage",
    "ResultCache",
    "RingBufferSink",
    "RunCapture",
    "RunResult",
    "SIMULATOR_KINDS",
    "SPEC95_NAMES",
    "SpanTracer",
    "StaticAnalysisReport",
    "StaticFacts",
    "StreamCache",
    "Telemetry",
    "TimingReport",
    "TraceCache",
    "Violation",
    "WorkloadProfile",
    "analyze",
    "analyze_image",
    "append_trajectory",
    "assemble",
    "build_frontend_config",
    "build_manifest",
    "build_plan",
    "build_processor_config",
    "build_workload",
    "capture_spec",
    "check_profile",
    "compare_from_results",
    "compare_specs",
    "compare_sweep",
    "compute_tables",
    "configure_logging",
    "create_mechanism",
    "current_telemetry",
    "diff_runs",
    "diff_specs",
    "disable_telemetry",
    "enable_telemetry",
    "figure5_sweep",
    "figure6",
    "figure8",
    "format_all_tables",
    "format_compare",
    "format_figure5",
    "format_figure6",
    "format_figure8",
    "format_span_tree",
    "fuzz_profile",
    "generate",
    "get_logger",
    "hotspot_rows",
    "load_capture",
    "mechanism_names",
    "merged_perfetto_trace",
    "minimize_case",
    "oracle_names",
    "predict",
    "predict_coverage",
    "profile_for",
    "rank_hypotheses",
    "read_trajectory",
    "register_mechanism",
    "render_report",
    "resolve_instructions",
    "rows_to_dicts",
    "run_dynamic_frontend",
    "run_frontend",
    "run_frontend_batch",
    "run_fuzz",
    "run_observed",
    "run_observed_many",
    "run_point",
    "run_processor",
    "span",
    "sweep",
    "telemetry_session",
    "traces_of_stream",
    "trajectory_reference",
    "validate_chrome_trace",
    "validate_merged_trace",
    "write_merged_perfetto",
    "write_perfetto",
    "write_report",
]
