"""Minimal ASCII chart rendering for terminal experiment reports."""

from __future__ import annotations

from typing import Mapping, Sequence


def bar_chart(values: Mapping[str, float], width: int = 48,
              unit: str = "", title: str = "") -> str:
    """Horizontal bar chart; bars scaled to the max value."""
    if not values:
        return title
    peak = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        bar = "#" * max(0, round(abs(value) / peak * width))
        lines.append(f"{key:<{label_width}s} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def series_table(x_label: str, xs: Sequence, series: Mapping[str, Sequence],
                 title: str = "", fmt: str = "8.2f") -> str:
    """Tabular rendering of several y-series over a shared x-axis."""
    lines = [title] if title else []
    header = f"{x_label:>10s} " + " ".join(f"{name:>10s}" for name in series)
    lines.append(header)
    for i, x in enumerate(xs):
        row = f"{str(x):>10s} "
        for name in series:
            value = series[name][i]
            row += (f"{value:>10{fmt[1:]}} " if value is not None
                    else f"{'-':>10s} ")
        lines.append(row.rstrip())
    return "\n".join(lines)
