"""Sweep drivers: benchmark x configuration grids as spec batches.

Every driver now describes its grid as a list of
:class:`~repro.runner.ExperimentSpec` and delegates execution to
:mod:`repro.runner` — which deduplicates points, serves unchanged ones
from the content-addressed result cache, and fans benchmark groups out
across worker processes (``jobs``).  The ``*_specs`` builders and
``*_points`` assemblers are exposed separately so ``repro all`` can
batch every exhibit's specs through one scheduler pass.

The loose-kwargs helpers deprecated in the runner redesign
(``frontend_config(tc, pb, ...)``, ``run_frontend_point(cache,
benchmark, tc, ...)``) have been **removed** after their
``DeprecationWarning`` cycle; the point runners are spec-only now.

The per-run instruction budget follows one precedence order —
explicit value > ``REPRO_INSTRUCTIONS`` env > built-in default — see
:func:`repro.runner.resolve_instructions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.processor import ProcessorStats, run_processor
from repro.runner import (
    ExperimentSpec,
    ResultCache,
    RunResult,
    StreamCache,
    resolve_instructions,
    sweep,
)
from repro.sim import FrontendStats, run_frontend

__all__ = [
    "FIGURE5_PB_SIZES", "FIGURE5_TC_SIZES", "Figure5Point", "StreamCache",
    "default_instructions", "figure5_points", "figure5_specs",
    "figure5_sweep", "run_frontend_point", "run_processor_point",
]


def default_instructions() -> int:
    """Per-run instruction budget (env-overridable).

    Alias for :func:`repro.runner.resolve_instructions` with no
    explicit value: ``REPRO_INSTRUCTIONS`` env > built-in default.
    """
    return resolve_instructions()


# ----------------------------------------------------------------------
# Single-point runners (spec-only)
# ----------------------------------------------------------------------
def run_frontend_point(cache: StreamCache, spec: ExperimentSpec,
                       *legacy_args, **legacy_kwargs) -> FrontendStats:
    """One frontend simulation at ``spec``'s configuration point."""
    if legacy_args or legacy_kwargs or not isinstance(spec, ExperimentSpec):
        raise TypeError(
            "run_frontend_point(cache, benchmark, tc_entries, ...) was "
            "removed; build a repro.api.ExperimentSpec and pass it "
            "instead (see README 'The repro.api surface')")
    result = run_frontend(cache.image(spec.benchmark, spec.workload_seed),
                          spec.frontend_config(),
                          min(spec.instructions, cache.instructions),
                          stream=cache.stream(spec.benchmark,
                                              spec.workload_seed))
    return result.stats


def run_processor_point(cache: StreamCache, spec: ExperimentSpec,
                        *legacy_args, **legacy_kwargs) -> ProcessorStats:
    """One full-processor simulation at ``spec``'s configuration point."""
    if legacy_args or legacy_kwargs or not isinstance(spec, ExperimentSpec):
        raise TypeError(
            "run_processor_point(cache, benchmark, tc_entries, ...) was "
            "removed; build a repro.api.ExperimentSpec and pass it "
            "instead (see README 'The repro.api surface')")
    result = run_processor(cache.image(spec.benchmark, spec.workload_seed),
                           spec.processor_config(),
                           min(spec.instructions, cache.instructions),
                           stream=cache.stream(spec.benchmark,
                                               spec.workload_seed))
    return result.stats


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------
@dataclass
class Figure5Point:
    """One point of the Figure 5 curves."""

    benchmark: str
    tc_entries: int
    pb_entries: int
    miss_per_ki: float

    @property
    def total_entries(self) -> int:
        return self.tc_entries + self.pb_entries

    @property
    def total_kbytes(self) -> float:
        return self.total_entries * 64 / 1024


#: Paper §4.1 sweep ranges: TC 64..1024 entries, PB 32..256 entries.
FIGURE5_TC_SIZES = (64, 128, 256, 512, 1024)
FIGURE5_PB_SIZES = (0, 32, 128, 256)


def figure5_specs(benchmark: str, instructions: Optional[int] = None,
                  tc_sizes: Iterable[int] = FIGURE5_TC_SIZES,
                  pb_sizes: Iterable[int] = FIGURE5_PB_SIZES
                  ) -> list[ExperimentSpec]:
    """The Figure 5 grid for one benchmark, as specs."""
    budget = resolve_instructions(instructions)
    return [ExperimentSpec(benchmark=benchmark, tc_entries=tc,
                           pb_entries=pb, instructions=budget)
            for tc in tc_sizes for pb in pb_sizes]


def figure5_points(results: Sequence[RunResult]) -> list[Figure5Point]:
    """Assemble runner results into Figure 5 points."""
    return [Figure5Point(benchmark=r.spec.benchmark,
                         tc_entries=r.spec.tc_entries,
                         pb_entries=r.spec.pb_entries,
                         miss_per_ki=r.metrics["trace_misses_per_ki"])
            for r in results]


def figure5_sweep(cache: StreamCache, benchmark: str,
                  tc_sizes: Iterable[int] = FIGURE5_TC_SIZES,
                  pb_sizes: Iterable[int] = FIGURE5_PB_SIZES, *,
                  jobs: int = 1,
                  result_cache: Optional[ResultCache] = None
                  ) -> list[Figure5Point]:
    """Miss-rate grid for one benchmark (the Figure 5 panel data)."""
    specs = figure5_specs(benchmark, cache.instructions, tc_sizes, pb_sizes)
    return figure5_points(sweep(specs, jobs=jobs, cache=result_cache,
                                stream_cache=cache))
