"""Sweep drivers: benchmark x configuration grids as spec batches.

Every driver now describes its grid as a list of
:class:`~repro.runner.ExperimentSpec` and delegates execution to
:mod:`repro.runner` — which deduplicates points, serves unchanged ones
from the content-addressed result cache, and fans benchmark groups out
across worker processes (``jobs``).  The ``*_specs`` builders and
``*_points`` assemblers are exposed separately so ``repro all`` can
batch every exhibit's specs through one scheduler pass.

The legacy loose-kwargs helpers (``frontend_config(tc, pb, ...)``,
``run_frontend_point(cache, benchmark, tc, ...)``) still work but emit
:class:`DeprecationWarning`; pass an :class:`ExperimentSpec` instead.

The per-run instruction budget follows one precedence order —
explicit value > ``REPRO_INSTRUCTIONS`` env > built-in default — see
:func:`repro.runner.resolve_instructions`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.processor import ProcessorConfig, ProcessorStats, run_processor
from repro.runner import (
    ExperimentSpec,
    ResultCache,
    RunResult,
    StreamCache,
    build_frontend_config,
    build_processor_config,
    resolve_instructions,
    sweep,
)
from repro.sim import FrontendConfig, FrontendStats, run_frontend

__all__ = [
    "FIGURE5_PB_SIZES", "FIGURE5_TC_SIZES", "Figure5Point", "StreamCache",
    "default_instructions", "figure5_points", "figure5_specs",
    "figure5_sweep", "frontend_config", "processor_config",
    "run_frontend_point", "run_processor_point",
]

_SPEC_HINT = ("build a repro.api.ExperimentSpec and pass it instead "
              "(see README 'The repro.api surface')")


def default_instructions() -> int:
    """Per-run instruction budget (env-overridable).

    Alias for :func:`repro.runner.resolve_instructions` with no
    explicit value: ``REPRO_INSTRUCTIONS`` env > built-in default.
    """
    return resolve_instructions()


# ----------------------------------------------------------------------
# Configuration builders (spec-first; loose kwargs deprecated)
# ----------------------------------------------------------------------
def frontend_config(tc_entries, pb_entries: int = 0,
                    static_seed: bool = False) -> FrontendConfig:
    """Standard frontend configuration for a TC/PB size point.

    Preferred form: ``frontend_config(spec)`` with an
    :class:`ExperimentSpec`.  The positional ``(tc_entries, pb_entries,
    static_seed)`` form is deprecated.
    """
    if isinstance(tc_entries, ExperimentSpec):
        return tc_entries.frontend_config()
    warnings.warn(
        "frontend_config(tc_entries, pb_entries, static_seed) is "
        f"deprecated; {_SPEC_HINT}", DeprecationWarning, stacklevel=2)
    return build_frontend_config(tc_entries, pb_entries,
                                 static_seed=static_seed)


def processor_config(tc_entries, pb_entries: int = 0,
                     preprocess: bool = False) -> ProcessorConfig:
    """Standard full-processor configuration for Figures 6/8.

    Preferred form: ``processor_config(spec)`` with an
    :class:`ExperimentSpec`; the positional form is deprecated.
    """
    if isinstance(tc_entries, ExperimentSpec):
        return tc_entries.processor_config()
    warnings.warn(
        "processor_config(tc_entries, pb_entries, preprocess) is "
        f"deprecated; {_SPEC_HINT}", DeprecationWarning, stacklevel=2)
    return build_processor_config(tc_entries, pb_entries,
                                  preprocess=preprocess)


# ----------------------------------------------------------------------
# Single-point runners (spec-first; loose kwargs deprecated)
# ----------------------------------------------------------------------
def _coerce_frontend_spec(cache: StreamCache, benchmark, tc_entries,
                          pb_entries, static_seed, caller) -> ExperimentSpec:
    if isinstance(benchmark, ExperimentSpec):
        return benchmark
    warnings.warn(
        f"{caller}(cache, benchmark, tc_entries, ...) is deprecated; "
        f"{_SPEC_HINT}", DeprecationWarning, stacklevel=3)
    return ExperimentSpec(benchmark=benchmark, tc_entries=tc_entries,
                          pb_entries=pb_entries, static_seed=static_seed,
                          instructions=cache.instructions)


def run_frontend_point(cache: StreamCache, benchmark,
                       tc_entries: Optional[int] = None, pb_entries: int = 0,
                       static_seed: bool = False) -> FrontendStats:
    """One frontend simulation at a (benchmark, TC, PB) point.

    Preferred form: ``run_frontend_point(cache, spec)``.
    """
    spec = _coerce_frontend_spec(cache, benchmark, tc_entries, pb_entries,
                                 static_seed, "run_frontend_point")
    result = run_frontend(cache.image(spec.benchmark, spec.workload_seed),
                          spec.frontend_config(),
                          min(spec.instructions, cache.instructions),
                          stream=cache.stream(spec.benchmark,
                                              spec.workload_seed))
    return result.stats


def run_processor_point(cache: StreamCache, benchmark,
                        tc_entries: Optional[int] = None, pb_entries: int = 0,
                        preprocess: bool = False) -> ProcessorStats:
    """One full-processor simulation at a configuration point.

    Preferred form: ``run_processor_point(cache, spec)``.
    """
    if isinstance(benchmark, ExperimentSpec):
        spec = benchmark
    else:
        warnings.warn(
            "run_processor_point(cache, benchmark, tc_entries, ...) is "
            f"deprecated; {_SPEC_HINT}", DeprecationWarning, stacklevel=2)
        spec = ExperimentSpec(benchmark=benchmark, tc_entries=tc_entries,
                              pb_entries=pb_entries, preprocess=preprocess,
                              kind="processor",
                              instructions=cache.instructions)
    result = run_processor(cache.image(spec.benchmark, spec.workload_seed),
                           spec.processor_config(),
                           min(spec.instructions, cache.instructions),
                           stream=cache.stream(spec.benchmark,
                                               spec.workload_seed))
    return result.stats


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------
@dataclass
class Figure5Point:
    """One point of the Figure 5 curves."""

    benchmark: str
    tc_entries: int
    pb_entries: int
    miss_per_ki: float

    @property
    def total_entries(self) -> int:
        return self.tc_entries + self.pb_entries

    @property
    def total_kbytes(self) -> float:
        return self.total_entries * 64 / 1024


#: Paper §4.1 sweep ranges: TC 64..1024 entries, PB 32..256 entries.
FIGURE5_TC_SIZES = (64, 128, 256, 512, 1024)
FIGURE5_PB_SIZES = (0, 32, 128, 256)


def figure5_specs(benchmark: str, instructions: Optional[int] = None,
                  tc_sizes: Iterable[int] = FIGURE5_TC_SIZES,
                  pb_sizes: Iterable[int] = FIGURE5_PB_SIZES
                  ) -> list[ExperimentSpec]:
    """The Figure 5 grid for one benchmark, as specs."""
    budget = resolve_instructions(instructions)
    return [ExperimentSpec(benchmark=benchmark, tc_entries=tc,
                           pb_entries=pb, instructions=budget)
            for tc in tc_sizes for pb in pb_sizes]


def figure5_points(results: Sequence[RunResult]) -> list[Figure5Point]:
    """Assemble runner results into Figure 5 points."""
    return [Figure5Point(benchmark=r.spec.benchmark,
                         tc_entries=r.spec.tc_entries,
                         pb_entries=r.spec.pb_entries,
                         miss_per_ki=r.metrics["trace_misses_per_ki"])
            for r in results]


def figure5_sweep(cache: StreamCache, benchmark: str,
                  tc_sizes: Iterable[int] = FIGURE5_TC_SIZES,
                  pb_sizes: Iterable[int] = FIGURE5_PB_SIZES, *,
                  jobs: int = 1,
                  result_cache: Optional[ResultCache] = None
                  ) -> list[Figure5Point]:
    """Miss-rate grid for one benchmark (the Figure 5 panel data)."""
    specs = figure5_specs(benchmark, cache.instructions, tc_sizes, pb_sizes)
    return figure5_points(sweep(specs, jobs=jobs, cache=result_cache,
                                stream_cache=cache))
