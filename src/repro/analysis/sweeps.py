"""Sweep orchestration: run the simulators over benchmark x config grids.

All experiment drivers share a :class:`StreamCache` so each benchmark's
dynamic stream is generated once per process (the trace-driven design
makes frontend runs cheap to repeat across cache configurations).

The default instruction budget scales the paper's 200M-instruction runs
down ~2000x alongside the ~30x smaller code footprints; override via
the ``REPRO_INSTRUCTIONS`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core import PreconstructionConfig
from repro.engine import FunctionalEngine, StreamRecord
from repro.preprocess import PreprocessConfig
from repro.processor import (
    BackendConfig,
    ProcessorConfig,
    ProcessorStats,
    run_processor,
)
from repro.sim import FrontendConfig, FrontendStats, run_frontend
from repro.trace import TraceCacheConfig
from repro.workloads import build_workload


def default_instructions() -> int:
    """Per-run instruction budget (env-overridable)."""
    return int(os.environ.get("REPRO_INSTRUCTIONS", "100000"))


class StreamCache:
    """Generate-once cache of benchmark dynamic streams."""

    def __init__(self, instructions: Optional[int] = None) -> None:
        self.instructions = instructions or default_instructions()
        self._streams: dict[str, list[StreamRecord]] = {}
        self._images = {}

    def image(self, benchmark: str):
        if benchmark not in self._images:
            self._images[benchmark] = build_workload(benchmark).image
        return self._images[benchmark]

    def stream(self, benchmark: str) -> list[StreamRecord]:
        if benchmark not in self._streams:
            engine = FunctionalEngine(self.image(benchmark))
            self._streams[benchmark] = engine.run(self.instructions)
        return self._streams[benchmark]


def frontend_config(tc_entries: int, pb_entries: int = 0,
                    static_seed: bool = False) -> FrontendConfig:
    """Standard frontend configuration for a TC/PB size point."""
    precon = (PreconstructionConfig(buffer_entries=pb_entries)
              if pb_entries else None)
    return FrontendConfig(trace_cache=TraceCacheConfig(entries=tc_entries),
                          preconstruction=precon,
                          static_seed=static_seed)


def run_frontend_point(cache: StreamCache, benchmark: str,
                       tc_entries: int, pb_entries: int = 0,
                       static_seed: bool = False) -> FrontendStats:
    """One frontend simulation at a (benchmark, TC, PB) point."""
    result = run_frontend(cache.image(benchmark),
                          frontend_config(tc_entries, pb_entries,
                                          static_seed=static_seed),
                          cache.instructions,
                          stream=cache.stream(benchmark))
    return result.stats


def processor_config(tc_entries: int, pb_entries: int = 0,
                     preprocess: bool = False) -> ProcessorConfig:
    """Standard full-processor configuration for Figures 6/8."""
    return ProcessorConfig(
        frontend=frontend_config(tc_entries, pb_entries),
        backend=BackendConfig(),
        preprocess=PreprocessConfig() if preprocess else None)


def run_processor_point(cache: StreamCache, benchmark: str,
                        tc_entries: int, pb_entries: int = 0,
                        preprocess: bool = False) -> ProcessorStats:
    """One full-processor simulation at a configuration point."""
    result = run_processor(cache.image(benchmark),
                           processor_config(tc_entries, pb_entries,
                                            preprocess),
                           cache.instructions,
                           stream=cache.stream(benchmark))
    return result.stats


@dataclass
class Figure5Point:
    """One point of the Figure 5 curves."""

    benchmark: str
    tc_entries: int
    pb_entries: int
    miss_per_ki: float

    @property
    def total_entries(self) -> int:
        return self.tc_entries + self.pb_entries

    @property
    def total_kbytes(self) -> float:
        return self.total_entries * 64 / 1024


#: Paper §4.1 sweep ranges: TC 64..1024 entries, PB 32..256 entries.
FIGURE5_TC_SIZES = (64, 128, 256, 512, 1024)
FIGURE5_PB_SIZES = (0, 32, 128, 256)


def figure5_sweep(cache: StreamCache, benchmark: str,
                  tc_sizes: Iterable[int] = FIGURE5_TC_SIZES,
                  pb_sizes: Iterable[int] = FIGURE5_PB_SIZES
                  ) -> list[Figure5Point]:
    """Miss-rate grid for one benchmark (the Figure 5 panel data)."""
    points = []
    for tc in tc_sizes:
        for pb in pb_sizes:
            stats = run_frontend_point(cache, benchmark, tc, pb)
            points.append(Figure5Point(
                benchmark=benchmark, tc_entries=tc, pb_entries=pb,
                miss_per_ki=stats.trace_miss_rate_per_ki))
    return points
