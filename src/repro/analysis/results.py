"""Experiment result records and JSON serialisation.

Sweep drivers return live stats objects; this module flattens them into
plain records that can be saved, diffed across runs, and loaded back —
the artefact trail behind EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ExperimentRecord:
    """One simulation run's provenance and headline metrics."""

    exhibit: str                # e.g. "figure5", "table1", "figure8"
    benchmark: str
    config: dict[str, Any]      # e.g. {"tc": 256, "pb": 128}
    metrics: dict[str, float]
    instructions: int

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass
class ResultSet:
    """A collection of records for one harness invocation."""

    records: list[ExperimentRecord] = field(default_factory=list)

    def add(self, record: ExperimentRecord) -> None:
        self.records.append(record)

    def for_exhibit(self, exhibit: str) -> list[ExperimentRecord]:
        return [r for r in self.records if r.exhibit == exhibit]

    def for_benchmark(self, benchmark: str) -> list[ExperimentRecord]:
        return [r for r in self.records if r.benchmark == benchmark]

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        payload = {
            "schema": SCHEMA_VERSION,
            "records": [record.to_dict() for record in self.records],
        }
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "ResultSet":
        payload = json.loads(Path(path).read_text())
        if payload.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported result schema {payload.get('schema')!r}")
        records = [ExperimentRecord(**item) for item in payload["records"]]
        return cls(records=records)


def record_frontend_stats(exhibit: str, benchmark: str, tc: int, pb: int,
                          stats) -> ExperimentRecord:
    """Flatten a :class:`~repro.sim.FrontendStats` into a record."""
    return ExperimentRecord(
        exhibit=exhibit, benchmark=benchmark,
        config={"tc_entries": tc, "pb_entries": pb},
        metrics={k: float(v) for k, v in stats.summary().items()},
        instructions=stats.instructions)


def record_processor_stats(exhibit: str, benchmark: str, tc: int, pb: int,
                           preprocess: bool, stats) -> ExperimentRecord:
    """Flatten a :class:`~repro.processor.ProcessorStats` into a record."""
    return ExperimentRecord(
        exhibit=exhibit, benchmark=benchmark,
        config={"tc_entries": tc, "pb_entries": pb,
                "preprocess": preprocess},
        metrics={
            "cycles": float(stats.cycles),
            "ipc": stats.ipc,
            "trace_misses_per_ki": stats.trace_miss_rate_per_ki,
            "buffer_hits": float(stats.buffer_hits),
        },
        instructions=stats.instructions)
