"""Reproductions of the paper's Tables 1-3.

All three tables compare the same two configurations on gcc and go:

* a 512-entry trace cache (no preconstruction), and
* a 256-entry trace cache with a 256-entry preconstruction buffer
  (equal total trace storage).

Table 1 — instructions supplied by the I-cache per 1000 instructions.
Table 2 — I-cache misses per 1000 instructions (preconstruction's
          extra traffic included).
Table 3 — instructions supplied by I-cache *misses* per 1000
          instructions (how exposed the slow path is to miss latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.runner import (
    ExperimentSpec,
    ResultCache,
    RunResult,
    StreamCache,
    resolve_instructions,
    sweep,
)

TABLE_BENCHMARKS = ("gcc", "go")
BASELINE = (512, 0)
PRECON = (256, 256)


@dataclass
class TableRow:
    """One benchmark's pair of measurements for one table."""

    benchmark: str
    baseline: float
    preconstruction: float

    @property
    def change_percent(self) -> float:
        if self.baseline == 0:
            return 0.0
        return 100.0 * (self.preconstruction - self.baseline) / self.baseline


@dataclass
class TablesResult:
    """All three tables' rows, computed from one pair of runs each."""

    table1: list[TableRow]
    table2: list[TableRow]
    table3: list[TableRow]


def tables_specs(instructions: Optional[int] = None,
                 benchmarks=TABLE_BENCHMARKS) -> list[ExperimentSpec]:
    """The (baseline, preconstruction) spec pair per benchmark."""
    budget = resolve_instructions(instructions)
    specs = []
    for benchmark in benchmarks:
        for tc, pb in (BASELINE, PRECON):
            specs.append(ExperimentSpec(benchmark=benchmark, tc_entries=tc,
                                        pb_entries=pb, instructions=budget))
    return specs


def tables_from_results(results: Sequence[RunResult],
                        benchmarks=TABLE_BENCHMARKS) -> TablesResult:
    """Assemble runner results (in :func:`tables_specs` order)."""
    t1, t2, t3 = [], [], []
    pairs = iter(results)
    for benchmark in benchmarks:
        base, pre = next(pairs).metrics, next(pairs).metrics
        t1.append(TableRow(benchmark, base["icache_instructions_per_ki"],
                           pre["icache_instructions_per_ki"]))
        t2.append(TableRow(benchmark, base["icache_misses_per_ki"],
                           pre["icache_misses_per_ki"]))
        t3.append(TableRow(benchmark, base["icache_miss_instructions_per_ki"],
                           pre["icache_miss_instructions_per_ki"]))
    return TablesResult(table1=t1, table2=t2, table3=t3)


def compute_tables(cache: StreamCache,
                   benchmarks=TABLE_BENCHMARKS, *, jobs: int = 1,
                   result_cache: Optional[ResultCache] = None
                   ) -> TablesResult:
    """Run both configurations per benchmark and extract all 3 tables."""
    specs = tables_specs(cache.instructions, benchmarks)
    results = sweep(specs, jobs=jobs, cache=result_cache, stream_cache=cache)
    return tables_from_results(results, benchmarks)


_TITLES = {
    1: "Table 1: Instructions supplied by the I-cache (per 1000 instr)",
    2: "Table 2: I-cache misses (per 1000 instructions)",
    3: "Table 3: Instructions supplied by I-cache misses (per 1000 instr)",
}


def format_table(rows: list[TableRow], number: int) -> str:
    """Render one table in the paper's layout."""
    header = (f"{_TITLES[number]}\n"
              f"{'bench':10s} {'512-entry TC':>14s} "
              f"{'256 TC + 256 PB':>16s} {'change':>9s}")
    lines = [header]
    for row in rows:
        lines.append(f"{row.benchmark:10s} {row.baseline:14.1f} "
                     f"{row.preconstruction:16.1f} "
                     f"{row.change_percent:+8.1f}%")
    return "\n".join(lines)


def format_all_tables(result: TablesResult) -> str:
    return "\n\n".join((
        format_table(result.table1, 1),
        format_table(result.table2, 2),
        format_table(result.table3, 3),
    ))
