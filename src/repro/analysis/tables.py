"""Reproductions of the paper's Tables 1-3.

All three tables compare the same two configurations on gcc and go:

* a 512-entry trace cache (no preconstruction), and
* a 256-entry trace cache with a 256-entry preconstruction buffer
  (equal total trace storage).

Table 1 — instructions supplied by the I-cache per 1000 instructions.
Table 2 — I-cache misses per 1000 instructions (preconstruction's
          extra traffic included).
Table 3 — instructions supplied by I-cache *misses* per 1000
          instructions (how exposed the slow path is to miss latency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sweeps import StreamCache, run_frontend_point

TABLE_BENCHMARKS = ("gcc", "go")
BASELINE = (512, 0)
PRECON = (256, 256)


@dataclass
class TableRow:
    """One benchmark's pair of measurements for one table."""

    benchmark: str
    baseline: float
    preconstruction: float

    @property
    def change_percent(self) -> float:
        if self.baseline == 0:
            return 0.0
        return 100.0 * (self.preconstruction - self.baseline) / self.baseline


@dataclass
class TablesResult:
    """All three tables' rows, computed from one pair of runs each."""

    table1: list[TableRow]
    table2: list[TableRow]
    table3: list[TableRow]


def compute_tables(cache: StreamCache,
                   benchmarks=TABLE_BENCHMARKS) -> TablesResult:
    """Run both configurations per benchmark and extract all 3 tables."""
    t1, t2, t3 = [], [], []
    for benchmark in benchmarks:
        base = run_frontend_point(cache, benchmark, *BASELINE)
        pre = run_frontend_point(cache, benchmark, *PRECON)
        t1.append(TableRow(benchmark, base.icache_instructions_per_ki,
                           pre.icache_instructions_per_ki))
        t2.append(TableRow(benchmark, base.icache_misses_per_ki,
                           pre.icache_misses_per_ki))
        t3.append(TableRow(benchmark, base.icache_miss_instructions_per_ki,
                           pre.icache_miss_instructions_per_ki))
    return TablesResult(table1=t1, table2=t2, table3=t3)


_TITLES = {
    1: "Table 1: Instructions supplied by the I-cache (per 1000 instr)",
    2: "Table 2: I-cache misses (per 1000 instructions)",
    3: "Table 3: Instructions supplied by I-cache misses (per 1000 instr)",
}


def format_table(rows: list[TableRow], number: int) -> str:
    """Render one table in the paper's layout."""
    header = (f"{_TITLES[number]}\n"
              f"{'bench':10s} {'512-entry TC':>14s} "
              f"{'256 TC + 256 PB':>16s} {'change':>9s}")
    lines = [header]
    for row in rows:
        lines.append(f"{row.benchmark:10s} {row.baseline:14.1f} "
                     f"{row.preconstruction:16.1f} "
                     f"{row.change_percent:+8.1f}%")
    return "\n".join(lines)


def format_all_tables(result: TablesResult) -> str:
    return "\n\n".join((
        format_table(result.table1, 1),
        format_table(result.table2, 2),
        format_table(result.table3, 3),
    ))
