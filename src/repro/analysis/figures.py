"""Reproductions of the paper's Figures 5, 6 and 8.

* **Figure 5** — per-benchmark trace-cache miss rate (misses / 1000
  instructions) as a function of combined trace-cache +
  preconstruction-buffer size, one curve per PB size.
* **Figure 6** — overall performance improvement from adding
  preconstruction, for gcc / go / perl / vortex.
* **Figure 8** — the extended pipeline model: speedup of
  preconstruction alone, preprocessing alone, both combined, and the
  sum of the individual speedups (256-entry TC baseline vs 128 TC +
  128 PB for the preconstruction configurations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.charts import bar_chart, series_table
from repro.analysis.sweeps import Figure5Point
from repro.runner import (
    ExperimentSpec,
    ResultCache,
    RunResult,
    StreamCache,
    resolve_instructions,
    sweep,
)

SPEEDUP_BENCHMARKS = ("gcc", "go", "perl", "vortex")


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------
def figure5_series(points: list[Figure5Point]
                   ) -> tuple[list[int], dict[str, list]]:
    """Reshape sweep points into curves keyed by PB size.

    X axis: combined entries (TC+PB).  Each curve holds the miss rate
    at the x positions it covers (``None`` elsewhere), mirroring the
    paper's presentation of miss rate against total area.
    """
    xs = sorted({p.total_entries for p in points})
    curves: dict[str, list] = {}
    for point in points:
        name = (f"pb{point.pb_entries}" if point.pb_entries else "tc-only")
        curve = curves.setdefault(name, [None] * len(xs))
        curve[xs.index(point.total_entries)] = point.miss_per_ki
    return xs, curves


def format_figure5(benchmark: str, points: list[Figure5Point]) -> str:
    xs, curves = figure5_series(points)
    return series_table(
        "entries", xs, curves,
        title=(f"Figure 5 [{benchmark}]: trace-cache misses per 1000 "
               f"instructions vs combined TC+PB entries"))


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------
@dataclass
class SpeedupResult:
    benchmark: str
    base_cycles: int
    precon_cycles: int

    @property
    def speedup_percent(self) -> float:
        return 100.0 * (self.base_cycles / self.precon_cycles - 1.0)


def figure6_specs(instructions: Optional[int] = None,
                  benchmarks=SPEEDUP_BENCHMARKS,
                  base=(256, 0), precon=(128, 128)) -> list[ExperimentSpec]:
    """The (baseline, preconstruction) processor pair per benchmark."""
    budget = resolve_instructions(instructions)
    return [ExperimentSpec(benchmark=benchmark, tc_entries=tc, pb_entries=pb,
                           kind="processor", instructions=budget)
            for benchmark in benchmarks for tc, pb in (base, precon)]


def figure6_from_results(results: Sequence[RunResult]) -> list[SpeedupResult]:
    """Assemble runner results (in :func:`figure6_specs` order)."""
    pairs = iter(results)
    return [SpeedupResult(base.spec.benchmark, base.metrics["cycles"],
                          pre.metrics["cycles"])
            for base, pre in zip(pairs, pairs)]


def figure6(cache: StreamCache,
            benchmarks=SPEEDUP_BENCHMARKS,
            base=(256, 0), precon=(128, 128), *, jobs: int = 1,
            result_cache: Optional[ResultCache] = None
            ) -> list[SpeedupResult]:
    """Performance improvement from preconstruction (equal area)."""
    specs = figure6_specs(cache.instructions, benchmarks, base, precon)
    return figure6_from_results(sweep(specs, jobs=jobs, cache=result_cache,
                                      stream_cache=cache))


def format_figure6(results: list[SpeedupResult]) -> str:
    return bar_chart(
        {r.benchmark: r.speedup_percent for r in results}, unit="%",
        title="Figure 6: performance improvement from preconstruction")


# ----------------------------------------------------------------------
# Figure 8
# ----------------------------------------------------------------------
@dataclass
class ExtendedPipelineResult:
    """The four bars of Figure 8 for one benchmark."""

    benchmark: str
    base_cycles: int
    precon_cycles: int
    preproc_cycles: int
    combined_cycles: int

    def _speedup(self, cycles: int) -> float:
        return 100.0 * (self.base_cycles / cycles - 1.0)

    @property
    def precon_percent(self) -> float:
        return self._speedup(self.precon_cycles)

    @property
    def preproc_percent(self) -> float:
        return self._speedup(self.preproc_cycles)

    @property
    def combined_percent(self) -> float:
        return self._speedup(self.combined_cycles)

    @property
    def sum_percent(self) -> float:
        return self.precon_percent + self.preproc_percent

    @property
    def synergy(self) -> float:
        """Combined minus sum — positive when greater than the parts."""
        return self.combined_percent - self.sum_percent


def figure8_specs(instructions: Optional[int] = None,
                  benchmarks=SPEEDUP_BENCHMARKS,
                  base=(256, 0), precon=(128, 128)) -> list[ExperimentSpec]:
    """The four Figure 8 configurations per benchmark, as specs."""
    budget = resolve_instructions(instructions)
    specs = []
    for benchmark in benchmarks:
        for (tc, pb), preprocess in ((base, False), (precon, False),
                                     (base, True), (precon, True)):
            specs.append(ExperimentSpec(
                benchmark=benchmark, tc_entries=tc, pb_entries=pb,
                preprocess=preprocess, kind="processor",
                instructions=budget))
    return specs


def figure8_from_results(results: Sequence[RunResult]
                         ) -> list[ExtendedPipelineResult]:
    """Assemble runner results (in :func:`figure8_specs` order)."""
    quads = iter(results)
    assembled = []
    for base, pre, prep, both in zip(quads, quads, quads, quads):
        assembled.append(ExtendedPipelineResult(
            benchmark=base.spec.benchmark,
            base_cycles=base.metrics["cycles"],
            precon_cycles=pre.metrics["cycles"],
            preproc_cycles=prep.metrics["cycles"],
            combined_cycles=both.metrics["cycles"]))
    return assembled


def figure8(cache: StreamCache,
            benchmarks=SPEEDUP_BENCHMARKS,
            base=(256, 0), precon=(128, 128), *, jobs: int = 1,
            result_cache: Optional[ResultCache] = None
            ) -> list[ExtendedPipelineResult]:
    """The extended pipeline comparison (paper §6)."""
    specs = figure8_specs(cache.instructions, benchmarks, base, precon)
    return figure8_from_results(sweep(specs, jobs=jobs, cache=result_cache,
                                      stream_cache=cache))


def format_figure8(results: list[ExtendedPipelineResult]) -> str:
    lines = ["Figure 8: speedup from the extended pipeline model",
             f"{'bench':10s} {'precon':>8s} {'preproc':>8s} "
             f"{'combined':>9s} {'sum':>8s} {'synergy':>8s}"]
    for r in results:
        lines.append(
            f"{r.benchmark:10s} {r.precon_percent:+7.1f}% "
            f"{r.preproc_percent:+7.1f}% {r.combined_percent:+8.1f}% "
            f"{r.sum_percent:+7.1f}% {r.synergy:+7.1f}%")
    return "\n".join(lines)
