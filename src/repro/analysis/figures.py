"""Reproductions of the paper's Figures 5, 6 and 8.

* **Figure 5** — per-benchmark trace-cache miss rate (misses / 1000
  instructions) as a function of combined trace-cache +
  preconstruction-buffer size, one curve per PB size.
* **Figure 6** — overall performance improvement from adding
  preconstruction, for gcc / go / perl / vortex.
* **Figure 8** — the extended pipeline model: speedup of
  preconstruction alone, preprocessing alone, both combined, and the
  sum of the individual speedups (256-entry TC baseline vs 128 TC +
  128 PB for the preconstruction configurations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.charts import bar_chart, series_table
from repro.analysis.sweeps import (
    Figure5Point,
    StreamCache,
    figure5_sweep,
    run_processor_point,
)

SPEEDUP_BENCHMARKS = ("gcc", "go", "perl", "vortex")


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------
def figure5_series(points: list[Figure5Point]
                   ) -> tuple[list[int], dict[str, list]]:
    """Reshape sweep points into curves keyed by PB size.

    X axis: combined entries (TC+PB).  Each curve holds the miss rate
    at the x positions it covers (``None`` elsewhere), mirroring the
    paper's presentation of miss rate against total area.
    """
    xs = sorted({p.total_entries for p in points})
    curves: dict[str, list] = {}
    for point in points:
        name = (f"pb{point.pb_entries}" if point.pb_entries else "tc-only")
        curve = curves.setdefault(name, [None] * len(xs))
        curve[xs.index(point.total_entries)] = point.miss_per_ki
    return xs, curves


def format_figure5(benchmark: str, points: list[Figure5Point]) -> str:
    xs, curves = figure5_series(points)
    return series_table(
        "entries", xs, curves,
        title=(f"Figure 5 [{benchmark}]: trace-cache misses per 1000 "
               f"instructions vs combined TC+PB entries"))


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------
@dataclass
class SpeedupResult:
    benchmark: str
    base_cycles: int
    precon_cycles: int

    @property
    def speedup_percent(self) -> float:
        return 100.0 * (self.base_cycles / self.precon_cycles - 1.0)


def figure6(cache: StreamCache,
            benchmarks=SPEEDUP_BENCHMARKS,
            base=(256, 0), precon=(128, 128)) -> list[SpeedupResult]:
    """Performance improvement from preconstruction (equal area)."""
    results = []
    for benchmark in benchmarks:
        base_stats = run_processor_point(cache, benchmark, *base)
        pre_stats = run_processor_point(cache, benchmark, *precon)
        results.append(SpeedupResult(benchmark, base_stats.cycles,
                                     pre_stats.cycles))
    return results


def format_figure6(results: list[SpeedupResult]) -> str:
    return bar_chart(
        {r.benchmark: r.speedup_percent for r in results}, unit="%",
        title="Figure 6: performance improvement from preconstruction")


# ----------------------------------------------------------------------
# Figure 8
# ----------------------------------------------------------------------
@dataclass
class ExtendedPipelineResult:
    """The four bars of Figure 8 for one benchmark."""

    benchmark: str
    base_cycles: int
    precon_cycles: int
    preproc_cycles: int
    combined_cycles: int

    def _speedup(self, cycles: int) -> float:
        return 100.0 * (self.base_cycles / cycles - 1.0)

    @property
    def precon_percent(self) -> float:
        return self._speedup(self.precon_cycles)

    @property
    def preproc_percent(self) -> float:
        return self._speedup(self.preproc_cycles)

    @property
    def combined_percent(self) -> float:
        return self._speedup(self.combined_cycles)

    @property
    def sum_percent(self) -> float:
        return self.precon_percent + self.preproc_percent

    @property
    def synergy(self) -> float:
        """Combined minus sum — positive when greater than the parts."""
        return self.combined_percent - self.sum_percent


def figure8(cache: StreamCache,
            benchmarks=SPEEDUP_BENCHMARKS,
            base=(256, 0), precon=(128, 128)) -> list[ExtendedPipelineResult]:
    """The extended pipeline comparison (paper §6)."""
    results = []
    for benchmark in benchmarks:
        base_stats = run_processor_point(cache, benchmark, *base)
        pre = run_processor_point(cache, benchmark, *precon)
        prep = run_processor_point(cache, benchmark, *base,
                                   preprocess=True)
        both = run_processor_point(cache, benchmark, *precon,
                                   preprocess=True)
        results.append(ExtendedPipelineResult(
            benchmark=benchmark, base_cycles=base_stats.cycles,
            precon_cycles=pre.cycles, preproc_cycles=prep.cycles,
            combined_cycles=both.cycles))
    return results


def format_figure8(results: list[ExtendedPipelineResult]) -> str:
    lines = ["Figure 8: speedup from the extended pipeline model",
             f"{'bench':10s} {'precon':>8s} {'preproc':>8s} "
             f"{'combined':>9s} {'sum':>8s} {'synergy':>8s}"]
    for r in results:
        lines.append(
            f"{r.benchmark:10s} {r.precon_percent:+7.1f}% "
            f"{r.preproc_percent:+7.1f}% {r.combined_percent:+8.1f}% "
            f"{r.sum_percent:+7.1f}% {r.synergy:+7.1f}%")
    return "\n".join(lines)
