"""Experiment analysis: sweeps, table/figure reproductions, charts.

Execution is delegated to :mod:`repro.runner` — every driver describes
its grid as :class:`~repro.runner.ExperimentSpec` batches, so exhibit
regeneration parallelises (``jobs``) and caches (``result_cache``)
uniformly.  The ``*_specs`` / ``*_from_results`` pairs let callers
(notably ``repro all``) batch several exhibits through one scheduler.
"""

from repro.analysis.charts import bar_chart, series_table
from repro.analysis.compare import (
    COMPARE_PB_SIZES,
    CompareRow,
    compare_from_results,
    compare_specs,
    compare_sweep,
    format_compare,
    rows_to_dicts,
)
from repro.analysis.figures import (
    ExtendedPipelineResult,
    SpeedupResult,
    figure5_series,
    figure6,
    figure6_from_results,
    figure6_specs,
    figure8,
    figure8_from_results,
    figure8_specs,
    format_figure5,
    format_figure6,
    format_figure8,
)
from repro.analysis.results import (
    ExperimentRecord,
    ResultSet,
    record_frontend_stats,
    record_processor_stats,
)
from repro.analysis.sweeps import (
    FIGURE5_PB_SIZES,
    FIGURE5_TC_SIZES,
    Figure5Point,
    StreamCache,
    default_instructions,
    figure5_points,
    figure5_specs,
    figure5_sweep,
    run_frontend_point,
    run_processor_point,
)
from repro.analysis.tables import (
    TableRow,
    TablesResult,
    compute_tables,
    format_all_tables,
    format_table,
    tables_from_results,
    tables_specs,
)

__all__ = [
    "bar_chart", "series_table", "ExtendedPipelineResult", "SpeedupResult",
    "figure5_series", "figure6", "figure6_from_results", "figure6_specs",
    "figure8", "figure8_from_results", "figure8_specs", "format_figure5",
    "format_figure6", "format_figure8", "FIGURE5_PB_SIZES",
    "FIGURE5_TC_SIZES", "Figure5Point", "StreamCache",
    "default_instructions", "figure5_points", "figure5_specs",
    "figure5_sweep", "run_frontend_point", "run_processor_point",
    "COMPARE_PB_SIZES", "CompareRow", "compare_from_results",
    "compare_specs", "compare_sweep", "format_compare", "rows_to_dicts",
    "TableRow", "TablesResult", "compute_tables", "format_all_tables",
    "format_table", "tables_from_results", "tables_specs",
    "ExperimentRecord", "ResultSet",
    "record_frontend_stats", "record_processor_stats",
]
