"""Experiment analysis: sweeps, table/figure reproductions, charts."""

from repro.analysis.charts import bar_chart, series_table
from repro.analysis.figures import (
    ExtendedPipelineResult,
    SpeedupResult,
    figure5_series,
    figure6,
    figure8,
    format_figure5,
    format_figure6,
    format_figure8,
)
from repro.analysis.sweeps import (
    FIGURE5_PB_SIZES,
    FIGURE5_TC_SIZES,
    Figure5Point,
    StreamCache,
    default_instructions,
    figure5_sweep,
    frontend_config,
    processor_config,
    run_frontend_point,
    run_processor_point,
)
from repro.analysis.results import (
    ExperimentRecord,
    ResultSet,
    record_frontend_stats,
    record_processor_stats,
)
from repro.analysis.tables import (
    TableRow,
    TablesResult,
    compute_tables,
    format_all_tables,
    format_table,
)

__all__ = [
    "bar_chart", "series_table", "ExtendedPipelineResult", "SpeedupResult",
    "figure5_series", "figure6", "figure8", "format_figure5",
    "format_figure6", "format_figure8", "FIGURE5_PB_SIZES",
    "FIGURE5_TC_SIZES", "Figure5Point", "StreamCache",
    "default_instructions", "figure5_sweep", "frontend_config",
    "processor_config", "run_frontend_point", "run_processor_point",
    "TableRow", "TablesResult", "compute_tables", "format_all_tables",
    "format_table", "ExperimentRecord", "ResultSet",
    "record_frontend_stats", "record_processor_stats",
]
