"""Head-to-head frontend-mechanism comparison (``repro compare``).

Figure-5-style equal-area sweeps across the competing-frontend zoo:
for each benchmark, one shared baseline point (no mechanism) plus one
point per ``(mechanism, budget)`` at a fixed trace-cache size — the
budget is charged in the same 64-byte-entry currency for every
mechanism, so rows at one budget are equal-area designs.

The interesting asymmetry the table surfaces: preconstruction fills
the *trace cache* ahead of fetch (trace misses drop), while the
prefetcher zoo fills the *instruction cache* (slow-path misses drop
but every trace miss still pays the construction trip).  At repro
scale the 64 KB I-cache also never evicts, so the record-replay
prefetcher — which can only re-fetch lines it has already seen —
saturates at the baseline, exactly the behaviour that motivates
map/preconstruction-style mechanisms for cold code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from repro.frontends import mechanism_names
from repro.runner import (
    ExperimentSpec,
    ResultCache,
    RunResult,
    StreamCache,
    resolve_instructions,
    sweep,
)

__all__ = [
    "COMPARE_PB_SIZES",
    "CompareRow",
    "compare_from_results",
    "compare_specs",
    "compare_sweep",
    "format_compare",
    "rows_to_dicts",
]

#: Mechanism storage budgets swept per mechanism (64-byte entries).
COMPARE_PB_SIZES = (32, 128, 256)

#: Label used for the shared no-mechanism row.
BASELINE = "baseline"

#: Metrics carried per row (column order of the table / JSON).
_METRIC_KEYS = ("trace_misses_per_ki", "icache_misses_per_ki", "cycles",
                "trace_hit_fraction", "buffer_hits")


@dataclass(frozen=True)
class CompareRow:
    """One mechanism/budget point of a comparison sweep."""

    benchmark: str
    mechanism: str
    tc_entries: int
    pb_entries: int
    metrics: dict[str, Any]

    @property
    def cycles(self) -> int:
        return int(self.metrics["cycles"])


def _resolve_mechanisms(mechanisms: Optional[Sequence[str]]
                        ) -> tuple[str, ...]:
    if mechanisms is None:
        return mechanism_names()
    unknown = [name for name in mechanisms
               if name not in mechanism_names()]
    if unknown:
        raise ValueError(f"unknown mechanism(s) {unknown}; "
                         f"choose from {mechanism_names()}")
    return tuple(dict.fromkeys(mechanisms))


def compare_specs(benchmark: str,
                  mechanisms: Optional[Sequence[str]] = None,
                  tc_entries: int = 256,
                  pb_sizes: Iterable[int] = COMPARE_PB_SIZES,
                  instructions: Optional[int] = None
                  ) -> list[ExperimentSpec]:
    """The comparison grid for one benchmark, as specs.

    First spec is the shared baseline (budget 0 — every mechanism
    degenerates to the bare frontend there, so one point serves all);
    then one spec per ``(mechanism, budget)``.
    """
    budget = resolve_instructions(instructions)
    specs = [ExperimentSpec(benchmark=benchmark, tc_entries=tc_entries,
                            pb_entries=0, instructions=budget)]
    for mechanism in _resolve_mechanisms(mechanisms):
        for pb in pb_sizes:
            specs.append(ExperimentSpec(
                benchmark=benchmark, tc_entries=tc_entries, pb_entries=pb,
                mechanism=mechanism, instructions=budget))
    return specs


def compare_from_results(results: Sequence[RunResult]) -> list[CompareRow]:
    """Assemble runner results into comparison rows.

    The baseline rows (``pb_entries == 0``) are relabelled
    ``"baseline"`` — with a zero budget the mechanism field is inert.
    """
    rows = []
    for result in results:
        spec = result.spec
        mechanism = spec.mechanism if spec.pb_entries else BASELINE
        rows.append(CompareRow(
            benchmark=spec.benchmark, mechanism=mechanism,
            tc_entries=spec.tc_entries, pb_entries=spec.pb_entries,
            metrics={key: result.metrics[key] for key in _METRIC_KEYS
                     if key in result.metrics}))
    return rows


def rows_to_dicts(rows: Sequence[CompareRow]) -> list[dict[str, Any]]:
    """JSON-serialisable form of ``rows`` (the ``--json`` payload)."""
    return [{"benchmark": row.benchmark, "mechanism": row.mechanism,
             "tc_entries": row.tc_entries, "pb_entries": row.pb_entries,
             **row.metrics} for row in rows]


def format_compare(rows: Sequence[CompareRow],
                   instructions: Optional[int] = None) -> str:
    """Render comparison rows as one table per benchmark.

    ``vs-base`` is the cycle count relative to the benchmark's shared
    baseline row (< 1.0 means the mechanism sped the frontend up).
    """
    lines: list[str] = []
    benchmarks = list(dict.fromkeys(row.benchmark for row in rows))
    for benchmark in benchmarks:
        bench_rows = [row for row in rows if row.benchmark == benchmark]
        baseline = next((row for row in bench_rows
                         if row.mechanism == BASELINE), None)
        if lines:
            lines.append("")
        header = f"{benchmark} (tc={bench_rows[0].tc_entries}"
        if instructions is not None:
            header += f", {instructions} instructions"
        lines.append(header + ")")
        lines.append(f"{'mechanism':<16} {'budget':>6} {'t$miss/ki':>10} "
                     f"{'i$miss/ki':>10} {'cycles':>8} {'hit%':>6} "
                     f"{'bufhits':>8} {'vs-base':>8}")
        for row in bench_rows:
            metrics = row.metrics
            ratio = (row.cycles / baseline.cycles
                     if baseline is not None and baseline.cycles else
                     float("nan"))
            lines.append(
                f"{row.mechanism:<16} {row.pb_entries:>6} "
                f"{metrics['trace_misses_per_ki']:>10.2f} "
                f"{metrics['icache_misses_per_ki']:>10.2f} "
                f"{row.cycles:>8} "
                f"{100 * metrics['trace_hit_fraction']:>5.1f}% "
                f"{metrics['buffer_hits']:>8} "
                f"{ratio:>8.3f}")
    return "\n".join(lines)


def compare_sweep(benchmarks: Sequence[str],
                  mechanisms: Optional[Sequence[str]] = None,
                  tc_entries: int = 256,
                  pb_sizes: Iterable[int] = COMPARE_PB_SIZES,
                  instructions: Optional[int] = None, *,
                  jobs: int = 1,
                  result_cache: Optional[ResultCache] = None,
                  stream_cache: Optional[StreamCache] = None,
                  progress: Any = None,
                  simulator: str = "scalar") -> list[CompareRow]:
    """Run the full head-to-head comparison across ``benchmarks``.

    ``simulator`` selects the frontend kernel for every point; the
    rows are kernel-independent (the kernels are result-identical).
    """
    pb_sizes = tuple(pb_sizes)
    specs: list[ExperimentSpec] = []
    for benchmark in benchmarks:
        specs.extend(compare_specs(benchmark, mechanisms, tc_entries,
                                   pb_sizes, instructions))
    if simulator != "scalar":
        specs = [spec.replace(simulator=simulator) for spec in specs]
    results = sweep(specs, jobs=jobs, cache=result_cache,
                    stream_cache=stream_cache, progress=progress)
    return compare_from_results(results)
