"""Layout / linking: CFG form -> linked :class:`ProgramImage`.

Two passes:

1. Walk procedures and blocks in order, assigning byte addresses to
   every label.  A FALLTHROUGH terminator whose successor is the next
   block in layout order emits nothing; otherwise it emits a ``J``.
   A BRANCH terminator whose fallthrough successor is *not* the next
   block emits the branch plus a ``J``.
2. Emit instructions, patching branch immediates (PC-relative) and
   jump/call immediates (absolute), and apply data relocations (data
   words that hold code addresses, e.g. switch tables and function-
   pointer tables).

The program starts with a two-instruction stub ``JAL <entry>; HALT`` so
that the entry procedure's ``JR ra`` cleanly terminates execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from repro.isa import Instruction, Opcode, RA
from repro.program.block import BasicBlock, Call, TermKind
from repro.program.cfg import Procedure
from repro.program.image import CODE_BASE, DATA_BASE, ProgramImage


class LayoutError(ValueError):
    """Raised when a program cannot be linked (e.g. undefined label)."""


@dataclass(frozen=True)
class Reloc:
    """A data word whose value is the address of ``label`` (+ ``addend``)."""

    label: str
    addend: int = 0


#: One initial data word: a literal value or a code-address relocation.
DataWord = Union[int, Reloc]


@dataclass
class DataSegment:
    """Initial data memory: words laid out contiguously from ``base``."""

    words: list[DataWord] = field(default_factory=list)
    base: int = DATA_BASE

    def append(self, word: DataWord) -> int:
        """Append a word, returning its byte address."""
        addr = self.base + 4 * len(self.words)
        self.words.append(word)
        return addr

    def extend(self, words: Sequence[DataWord]) -> int:
        """Append ``words``, returning the byte address of the first."""
        addr = self.base + 4 * len(self.words)
        for word in words:
            self.words.append(word)
        return addr


def layout(procedures: Sequence[Procedure], entry: str,
           data: DataSegment | None = None,
           code_base: int = CODE_BASE) -> ProgramImage:
    """Link ``procedures`` into a :class:`ProgramImage`.

    ``entry`` names the procedure invoked by the startup stub.
    """
    names = [p.name for p in procedures]
    if len(set(names)) != len(names):
        raise LayoutError("duplicate procedure names")
    if entry not in names:
        raise LayoutError(f"entry procedure {entry!r} not defined")
    for proc in procedures:
        proc.cfg.validate()

    # ------------------------------------------------------------------
    # Pass 1: address assignment.
    # ------------------------------------------------------------------
    labels: dict[str, int] = {}
    # The stub occupies the first two slots.
    pc = code_base + 2 * 4
    plan: list[tuple[BasicBlock, str | None]] = []  # (block, next_label)
    for proc in procedures:
        blocks = proc.cfg.blocks
        for i, block in enumerate(blocks):
            if block.label in labels:
                raise LayoutError(f"duplicate label {block.label!r}")
            labels[block.label] = pc
            next_label = blocks[i + 1].label if i + 1 < len(blocks) else None
            plan.append((block, next_label))
            pc += 4 * _emitted_count(block, next_label)

    # ------------------------------------------------------------------
    # Pass 2: emission.
    # ------------------------------------------------------------------
    out: list[Instruction] = [
        Instruction(Opcode.JAL, rd=RA, imm=labels[entry]),
        Instruction(Opcode.HALT),
    ]
    pc = code_base + 2 * 4
    for block, next_label in plan:
        assert labels[block.label] == pc, "pass-1/pass-2 address drift"
        for item in block.body:
            if isinstance(item, Call):
                target = _resolve(labels, item.target_label)
                out.append(Instruction(Opcode.JAL, rd=RA, imm=target))
            else:
                out.append(item)
            pc += 4
        pc = _emit_terminator(out, block, next_label, pc, labels)

    image = ProgramImage(instructions=out, code_base=code_base,
                         entry=code_base, labels=labels)

    # ------------------------------------------------------------------
    # Data segment with relocations.
    # ------------------------------------------------------------------
    if data is not None:
        for i, word in enumerate(data.words):
            addr = data.base + 4 * i
            if isinstance(word, Reloc):
                image.data[addr] = _resolve(labels, word.label) + word.addend
                image.relocs[addr] = image.data[addr]
            else:
                image.data[addr] = word
    return image


def _resolve(labels: dict[str, int], label: str) -> int:
    if label not in labels:
        raise LayoutError(f"undefined label {label!r}")
    return labels[label]


def _emitted_count(block: BasicBlock, next_label: str | None) -> int:
    """Instructions ``block`` will emit given its layout successor."""
    count = len(block.body)
    term = block.terminator
    if term.kind is TermKind.FALLTHROUGH:
        count += 0 if term.targets[0] == next_label else 1
    elif term.kind is TermKind.BRANCH:
        count += 1
        if term.targets[1] != next_label:
            count += 1  # fallthrough needs an explicit J
    else:
        count += 1
    return count


def _emit_terminator(out: list[Instruction], block: BasicBlock,
                     next_label: str | None, pc: int,
                     labels: dict[str, int]) -> int:
    term = block.terminator
    if term.kind is TermKind.FALLTHROUGH:
        if term.targets[0] != next_label:
            out.append(Instruction(Opcode.J, imm=_resolve(labels,
                                                          term.targets[0])))
            pc += 4
        return pc
    if term.kind is TermKind.BRANCH:
        taken = _resolve(labels, term.targets[0])
        out.append(Instruction(term.branch_op, rs1=term.rs1, rs2=term.rs2,
                               imm=taken - pc))
        pc += 4
        if term.targets[1] != next_label:
            out.append(Instruction(Opcode.J,
                                   imm=_resolve(labels, term.targets[1])))
            pc += 4
        return pc
    if term.kind is TermKind.JUMP:
        out.append(Instruction(Opcode.J, imm=_resolve(labels,
                                                      term.targets[0])))
        return pc + 4
    if term.kind is TermKind.RETURN:
        out.append(Instruction(Opcode.JR, rs1=RA))
        return pc + 4
    if term.kind is TermKind.INDIRECT_JUMP:
        out.append(Instruction(Opcode.JR, rs1=term.reg))
        return pc + 4
    if term.kind is TermKind.HALT:
        out.append(Instruction(Opcode.HALT))
        return pc + 4
    raise LayoutError(f"unhandled terminator kind {term.kind}")
