"""The linked program image: flat instruction memory plus initial data.

A :class:`ProgramImage` is what every downstream consumer works from —
the functional engine executes it, the instruction cache models fetches
from it, and the preconstruction engine reads *static* instructions out
of it when exploring future regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.isa import INSTRUCTION_BYTES, Instruction

#: Default base address of the code segment.
CODE_BASE = 0x1000

#: Default base address of the data segment.
DATA_BASE = 0x40_0000

# PC-to-index arithmetic runs once per executed and once per
# preconstructed instruction; shift/mask beats divmod there.
_PC_SHIFT = INSTRUCTION_BYTES.bit_length() - 1
_PC_MASK = INSTRUCTION_BYTES - 1
assert 1 << _PC_SHIFT == INSTRUCTION_BYTES


@dataclass
class ProgramImage:
    """A fully linked program.

    ``instructions`` is dense from ``code_base``; instruction *i* lives
    at byte address ``code_base + 4*i``.  ``data`` maps word-aligned
    byte addresses to initial 32-bit values (the engine treats absent
    addresses as zero).  ``labels`` maps every procedure and block label
    to its byte address.  ``relocs`` records relocation provenance: the
    data addresses whose initial values are *code* addresses (jump
    tables, function-pointer tables), mapped to the resolved target —
    static analysis uses this instead of guessing which data words are
    code pointers.
    """

    instructions: list[Instruction]
    code_base: int = CODE_BASE
    entry: int = CODE_BASE
    labels: dict[str, int] = field(default_factory=dict)
    data: dict[int, int] = field(default_factory=dict)
    relocs: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code_base % INSTRUCTION_BYTES:
            raise ValueError("code_base must be instruction-aligned")

    # ------------------------------------------------------------------
    def fetch(self, pc: int) -> Instruction:
        """Return the instruction at byte address ``pc``.

        Raises ``IndexError`` for addresses outside the code segment —
        the simulator treats that as a wild jump (a bug in the workload
        or the machinery, never silently ignored).
        """
        offset = pc - self.code_base
        index = offset >> _PC_SHIFT
        if (offset & _PC_MASK or index < 0
                or index >= len(self.instructions)):
            raise IndexError(f"PC out of code segment: {pc:#x}")
        return self.instructions[index]

    def try_fetch(self, pc: int) -> Optional[Instruction]:
        """Like :meth:`fetch` but returns ``None`` out of bounds."""
        offset = pc - self.code_base
        index = offset >> _PC_SHIFT
        if (offset & _PC_MASK or index < 0
                or index >= len(self.instructions)):
            return None
        return self.instructions[index]

    def __contains__(self, pc: int) -> bool:
        return self.try_fetch(pc) is not None

    # ------------------------------------------------------------------
    @property
    def code_size(self) -> int:
        """Static code footprint in instructions."""
        return len(self.instructions)

    @property
    def code_bytes(self) -> int:
        return len(self.instructions) * INSTRUCTION_BYTES

    @property
    def code_end(self) -> int:
        """First byte address past the code segment."""
        return self.code_base + self.code_bytes

    def addresses(self) -> Iterator[int]:
        """Yield every instruction address in layout order."""
        for i in range(len(self.instructions)):
            yield self.code_base + i * INSTRUCTION_BYTES

    def label_at(self, pc: int) -> Optional[str]:
        """Reverse label lookup (first match), for diagnostics."""
        for name, addr in self.labels.items():
            if addr == pc:
                return name
        return None

    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Stable SHA-256 content address of the whole image.

        Covers every field that affects execution — code, entry, data,
        labels, relocation provenance — through a canonical rendering
        (sorted mappings, positional instruction fields), so the hex
        digest is identical across processes and ``PYTHONHASHSEED``
        values.  The determinism oracles and the cross-interpreter
        generator tests compare images through this.
        """
        import hashlib

        hasher = hashlib.sha256()
        hasher.update(f"base={self.code_base};entry={self.entry};".encode())
        for inst in self.instructions:
            hasher.update(
                f"{inst.op.value},{inst.rd},{inst.rs1},{inst.rs2},"
                f"{inst.imm},{inst.sh1},{inst.sh2};".encode())
        for addr in sorted(self.data):
            hasher.update(f"d{addr}={self.data[addr]};".encode())
        for addr in sorted(self.relocs):
            hasher.update(f"r{addr}={self.relocs[addr]};".encode())
        for name in sorted(self.labels):
            hasher.update(f"l{name}={self.labels[name]};".encode())
        return hasher.hexdigest()
