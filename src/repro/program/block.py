"""Basic blocks and their terminators (pre-layout program form).

The workload generator and the assembler-level tests build programs as
control-flow graphs of :class:`BasicBlock` objects.  Inside a block,
straight-line *body* items are either concrete :class:`Instruction`
objects or :class:`Call` markers (direct calls whose absolute target is
known only after layout).  Each block ends with exactly one
:class:`Terminator` describing how control leaves the block.

Label namespace: every block has a globally unique label of the form
``"<procedure>:<block>"``; procedure entry labels are just
``"<procedure>"``.  The layout pass (:mod:`repro.program.layout`)
resolves all labels to byte addresses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.isa import Instruction, Opcode


@dataclass(frozen=True)
class Call:
    """A direct procedure call (``JAL``) whose target is a label."""

    target_label: str


#: Straight-line body item: a concrete instruction or a call marker.
BodyItem = Union[Instruction, Call]


class TermKind(enum.Enum):
    """How control leaves a basic block."""

    FALLTHROUGH = "fallthrough"      # no control instruction emitted
    BRANCH = "branch"                # conditional, taken label + fallthrough
    JUMP = "jump"                    # unconditional J to a label
    RETURN = "return"                # JR ra
    INDIRECT_JUMP = "indirect_jump"  # JR reg (e.g. switch dispatch)
    HALT = "halt"


@dataclass
class Terminator:
    """Block terminator description.

    ``branch_op``/``rs1``/``rs2`` apply to :data:`TermKind.BRANCH`;
    ``reg`` applies to :data:`TermKind.INDIRECT_JUMP`.  ``targets``
    holds possible successor labels: for a branch, ``targets[0]`` is the
    taken label and ``targets[1]`` the fallthrough label; for an
    indirect jump it lists every table entry (for CFG analysis only —
    the emitted instruction carries no target).
    """

    kind: TermKind
    targets: tuple[str, ...] = ()
    branch_op: Optional[Opcode] = None
    rs1: int = 0
    rs2: int = 0
    reg: int = 0

    def __post_init__(self) -> None:
        if self.kind is TermKind.BRANCH:
            if self.branch_op is None or len(self.targets) != 2:
                raise ValueError(
                    "branch terminator needs branch_op and (taken, fallthrough)")
        elif self.kind is TermKind.JUMP:
            if len(self.targets) != 1:
                raise ValueError("jump terminator needs exactly one target")
        elif self.kind is TermKind.FALLTHROUGH:
            if len(self.targets) != 1:
                raise ValueError("fallthrough terminator needs its successor")


@dataclass
class BasicBlock:
    """A basic block: label, straight-line body, one terminator."""

    label: str
    body: list[BodyItem] = field(default_factory=list)
    terminator: Terminator = field(
        default_factory=lambda: Terminator(TermKind.HALT))

    @property
    def successor_labels(self) -> tuple[str, ...]:
        """Labels of possible intra-procedure successors."""
        return self.terminator.targets

    def body_size(self) -> int:
        """Number of instructions the body will emit (calls emit one JAL)."""
        return len(self.body)

    def emitted_size(self) -> int:
        """Instructions this block emits, including its terminator.

        The exact count for FALLTHROUGH depends on final placement (a
        ``J`` may be inserted); this returns the maximum.
        """
        term_cost = {
            TermKind.FALLTHROUGH: 1,
            TermKind.BRANCH: 1,
            TermKind.JUMP: 1,
            TermKind.RETURN: 1,
            TermKind.INDIRECT_JUMP: 1,
            TermKind.HALT: 1,
        }[self.terminator.kind]
        return self.body_size() + term_cost
