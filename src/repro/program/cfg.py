"""Control-flow graphs and procedures (pre-layout program form)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.program.block import BasicBlock, Call, TermKind


@dataclass
class ControlFlowGraph:
    """Blocks of one procedure, in intended layout order.

    The first block is the procedure entry.  Layout places blocks in
    list order, so a FALLTHROUGH terminator whose successor is the next
    block in the list costs zero instructions (otherwise a ``J`` is
    inserted).
    """

    blocks: list[BasicBlock] = field(default_factory=list)

    def add(self, block: BasicBlock) -> BasicBlock:
        if any(b.label == block.label for b in self.blocks):
            raise ValueError(f"duplicate block label: {block.label!r}")
        self.blocks.append(block)
        return block

    def block(self, label: str) -> BasicBlock:
        for b in self.blocks:
            if b.label == label:
                return b
        raise KeyError(label)

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError("empty CFG")
        return self.blocks[0]

    def edges(self) -> Iterator[tuple[str, str]]:
        """Yield (source_label, successor_label) pairs."""
        for block in self.blocks:
            for succ in block.successor_labels:
                yield block.label, succ

    def labels(self) -> set[str]:
        return {b.label for b in self.blocks}

    def validate(self) -> None:
        """Check internal consistency; raises ``ValueError`` on problems."""
        labels = self.labels()
        for block in self.blocks:
            for succ in block.successor_labels:
                # Successors may be intra-procedure labels only; calls are
                # body items, so every terminator target must be local.
                if succ not in labels:
                    raise ValueError(
                        f"block {block.label!r} targets unknown label {succ!r}")


@dataclass
class Procedure:
    """A named procedure: a CFG whose entry label equals the name."""

    name: str
    cfg: ControlFlowGraph

    def __post_init__(self) -> None:
        if self.cfg.blocks and self.cfg.entry.label != self.name:
            raise ValueError(
                f"entry block label {self.cfg.entry.label!r} must equal "
                f"procedure name {self.name!r}")

    def called_procedures(self) -> set[str]:
        """Names of procedures this one calls directly."""
        calls = set()
        for block in self.cfg.blocks:
            for item in block.body:
                if isinstance(item, Call):
                    calls.add(item.target_label)
        return calls

    def static_size(self) -> int:
        """Upper bound on emitted instruction count."""
        return sum(b.emitted_size() for b in self.cfg.blocks)

    def has_returns(self) -> bool:
        return any(b.terminator.kind is TermKind.RETURN
                   for b in self.cfg.blocks)
