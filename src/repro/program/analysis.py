"""Static analyses over linked program images.

These are used by the workload generator's self-checks and by tests:
reachability from the entry point, static branch inventory (forward vs
backward), call-graph extraction, and footprint statistics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.isa import INSTRUCTION_BYTES, Kind, Opcode
from repro.program.image import ProgramImage


@dataclass(frozen=True)
class StaticStats:
    """Summary statistics of a program image."""

    instructions: int
    conditional_branches: int
    backward_branches: int
    calls: int
    indirect_jumps: int
    returns: int
    procedures_reached: int


def instruction_successors(image: ProgramImage, pc: int,
                           indirect_targets: tuple[int, ...] = (),
                           ) -> tuple[int, ...]:
    """Static may-successor addresses of the instruction at ``pc``.

    The one-step successor relation both the conservative reachability
    walk below and the static trace predictor
    (:mod:`repro.static.predictor`) traverse:

    * plain instructions fall through;
    * branches yield taken target then fall-through;
    * direct jumps/calls yield their absolute target (a call *enters*
      the callee — the post-call return point is the callee's business,
      via its returns);
    * indirect transfers yield ``indirect_targets`` (the caller's
      resolution of the feeding table — conservative or exact);
    * returns and ``HALT`` yield nothing (return edges belong to call
      sites, matching the constructor's walk).

    Addresses outside the image are *not* filtered — running off the
    code segment is a finding the verifier owns, and callers decide
    how to treat it.
    """
    inst = image.try_fetch(pc)
    if inst is None:
        return ()
    kind = inst.kind
    if kind is Kind.HALT:
        return ()
    if kind is Kind.JUMP or kind is Kind.CALL:
        return (inst.imm,)
    if kind is Kind.BRANCH:
        return (pc + inst.imm, pc + INSTRUCTION_BYTES)
    if kind is Kind.CALL_INDIRECT:
        return tuple(indirect_targets)
    if kind is Kind.JUMP_INDIRECT:
        if inst.is_return:
            return ()
        return tuple(indirect_targets)
    return (pc + INSTRUCTION_BYTES,)


def reachable_addresses(image: ProgramImage) -> set[int]:
    """Instruction addresses reachable from the entry point.

    Register-indirect jumps/calls are resolved through the data segment
    relocations: any data word holding a code address is treated as a
    potential target (a conservative over-approximation, fine for the
    generator's self-checks).  Returns are handled via call-site
    fall-through edges.
    """
    indirect = tuple(sorted({value for value in image.data.values()
                             if value in image}))
    seen: set[int] = set()
    work: deque[int] = deque([image.entry])
    while work:
        pc = work.popleft()
        if pc in seen or pc not in image:
            continue
        seen.add(pc)
        inst = image.fetch(pc)
        work.extend(instruction_successors(image, pc, indirect))
        # Return edges come from call sites: every call's fall-through
        # is reachable once some callee return transfers back.
        if inst.is_call:
            work.append(pc + INSTRUCTION_BYTES)
    return seen


def static_stats(image: ProgramImage) -> StaticStats:
    """Inventory of control-flow instruction classes in ``image``."""
    cond = back = calls = indirect = rets = 0
    for pc in image.addresses():
        inst = image.fetch(pc)
        if inst.is_conditional_branch:
            cond += 1
            if inst.is_backward_branch():
                back += 1
        elif inst.is_call:
            calls += 1
        elif inst.is_return:
            rets += 1
        elif inst.is_indirect:
            indirect += 1
    procs = sum(1 for name, addr in image.labels.items()
                if ":" not in name and addr in reachable_addresses(image))
    return StaticStats(
        instructions=image.code_size,
        conditional_branches=cond,
        backward_branches=back,
        calls=calls,
        indirect_jumps=indirect,
        returns=rets,
        procedures_reached=procs,
    )


def call_graph(image: ProgramImage) -> dict[str, set[str]]:
    """Direct call graph over procedure labels (indirect calls omitted)."""
    # Procedure labels are those without a ':'; sort by address to map
    # call-site addresses back to their enclosing procedure.
    procs = sorted(((addr, name) for name, addr in image.labels.items()
                    if ":" not in name))
    addr_to_proc = {addr: name for addr, name in procs}

    def enclosing(pc: int) -> str | None:
        owner = None
        for addr, name in procs:
            if addr <= pc:
                owner = name
            else:
                break
        return owner

    graph: dict[str, set[str]] = {name: set() for _, name in procs}
    for pc in image.addresses():
        inst = image.fetch(pc)
        if inst.op is Opcode.JAL and inst.imm in addr_to_proc:
            caller = enclosing(pc)
            if caller is not None:
                graph[caller].add(addr_to_proc[inst.imm])
    return graph
