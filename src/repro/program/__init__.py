"""Static program representation: blocks, CFGs, layout, linked images."""

from repro.program.analysis import (
    StaticStats,
    call_graph,
    reachable_addresses,
    static_stats,
)
from repro.program.block import BasicBlock, BodyItem, Call, TermKind, Terminator
from repro.program.cfg import ControlFlowGraph, Procedure
from repro.program.image import CODE_BASE, DATA_BASE, ProgramImage
from repro.program.layout import DataSegment, LayoutError, Reloc, layout

__all__ = [
    "StaticStats", "call_graph", "reachable_addresses", "static_stats",
    "BasicBlock", "BodyItem", "Call", "TermKind", "Terminator",
    "ControlFlowGraph", "Procedure", "CODE_BASE", "DATA_BASE",
    "ProgramImage", "DataSegment", "LayoutError", "Reloc", "layout",
]
