"""Static program representation: blocks, CFGs, layout, linked images.

Also re-exports the deeper static-analysis toolkit from
:mod:`repro.static` (CFG recovery, dominators/loops, call graph,
verifier, region seeding) so image-level and recovered-structure
analyses share one import surface.
"""

from repro.program.analysis import (
    StaticStats,
    call_graph,
    instruction_successors,
    reachable_addresses,
    static_stats,
)
from repro.program.block import BasicBlock, BodyItem, Call, TermKind, Terminator
from repro.program.cfg import ControlFlowGraph, Procedure
from repro.program.image import CODE_BASE, DATA_BASE, ProgramImage
from repro.program.layout import DataSegment, LayoutError, Reloc, layout

#: Names re-exported lazily from :mod:`repro.static` (PEP 562): the
#: static package's modules import ``repro.program`` submodules, so an
#: eager import here would be circular.
_STATIC_EXPORTS = frozenset({
    "CoveragePrediction", "LintFinding", "RecoveredCFG", "Severity",
    "StaticAnalysisReport", "StaticCallGraph", "StaticFacts",
    "StaticSeed", "analyze_image", "compute_static_seeds",
    "predict_coverage", "recover_call_graph", "recover_cfg",
    "verify_image",
})


def __getattr__(name: str):
    if name in _STATIC_EXPORTS:
        import repro.static as _static
        return getattr(_static, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list:
    return sorted(set(globals()) | _STATIC_EXPORTS)


__all__ = [
    "StaticStats", "call_graph", "instruction_successors",
    "reachable_addresses", "static_stats",
    "BasicBlock", "BodyItem", "Call", "TermKind", "Terminator",
    "ControlFlowGraph", "Procedure", "CODE_BASE", "DATA_BASE",
    "ProgramImage", "DataSegment", "LayoutError", "Reloc", "layout",
    "CoveragePrediction", "LintFinding", "RecoveredCFG", "Severity",
    "StaticAnalysisReport", "StaticCallGraph", "StaticFacts",
    "StaticSeed", "analyze_image", "compute_static_seeds",
    "predict_coverage", "recover_call_graph", "recover_cfg",
    "verify_image",
]
