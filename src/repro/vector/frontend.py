"""The batched frontend kernel: one array pass, many sweep points.

:func:`run_frontend_batch` advances every sweep point sharing one
stream partition through the same trace-occurrence sequence in
lockstep, consuming a precomputed :class:`~repro.vector.plan.BatchPlan`
instead of re-deriving point-independent work per point:

* trace delimitation, per-occurrence lengths / branch counts — array
  passes at plan build;
* next-trace-predictor outcomes and bimodal slow-path misprediction
  counts — replayed once per partition, not once per point;
* branch (pc, taken) pairs and I-cache line runs — shared tuples.

Per point, the kernel keeps the *real* stateful structures — trace
cache, instruction cache, frontend mechanism (preconstruction engine,
record-replay prefetcher, ...) — and mirrors the scalar
:class:`~repro.sim.frontend_runner.FrontendSimulation` dispatch
protocol operation for operation, so every counter in
:class:`~repro.sim.stats.FrontendStats` and every cache/mechanism end
state is bit-identical to a scalar run of the same config.  The
differential test battery (``tests/test_vector_*.py``) and the fuzz
harness's ``simulator`` oracle enforce that equivalence continuously.

Lockstep ordering is what makes the shared bimodal table sound: at
occurrence *t* every point first dispatches (mechanisms may read the
table's bias), then the occurrence's training updates are applied once
— exactly the state evolution each scalar point would see, because the
scalar runner also trains after the mechanism tick.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.branch import BimodalPredictor
from repro.caches import InstructionCache
from repro.frontends import MechanismContext, create_mechanism
from repro.program import ProgramImage
from repro.sim.config import FrontendConfig
from repro.sim.frontend_runner import FrontendResult, retire_pace_table
from repro.sim.stats import FrontendStats
from repro.trace import TraceCache

from repro.vector.plan import NTP_CORRECT, NTP_NONE, NTP_WRONG, BatchPlan

if TYPE_CHECKING:
    from repro.obs.events import ObsBus

__all__ = ["run_frontend_batch"]


class _PointState:
    """One sweep point's live state inside a batch."""

    __slots__ = ("config", "stats", "icache", "trace_cache", "mechanism",
                 "precon", "pace", "base_fetch", "trace_penalty",
                 "branch_penalty", "obs_bucket")

    def __init__(self, image: ProgramImage, config: FrontendConfig,
                 bimodal: BimodalPredictor, plan: BatchPlan,
                 obs: Optional["ObsBus"]) -> None:
        self.config = config
        self.stats = FrontendStats()
        self.icache = InstructionCache(config.icache)
        self.trace_cache = TraceCache(config.trace_cache)
        if obs is not None:
            self.trace_cache.obs = obs
        self.mechanism = create_mechanism(
            config.mechanism,
            MechanismContext(
                image=image, icache=self.icache, bimodal=bimodal,
                trace_cache=self.trace_cache, selection=config.selection,
                budget_entries=config.mechanism_entries,
                static_seed=config.static_seed,
                preconstruction=config.preconstruction))
        self.precon = getattr(self.mechanism, "engine", None)
        if obs is not None and self.mechanism is not None:
            self.mechanism.attach_obs(obs)
        self.pace = retire_pace_table(config.retire_ipc,
                                      config.selection.max_length)
        # ceil(length / fetch_width) per occurrence — one vectorized
        # divide per point instead of one ceil per dispatched trace.
        width = config.fetch_width
        self.base_fetch = ((plan.length_arr + (width - 1)) // width).tolist()
        self.trace_penalty = config.trace_mispredict_penalty
        self.branch_penalty = config.branch_mispredict_penalty
        self.obs_bucket = -1

    def result(self) -> FrontendResult:
        return FrontendResult(config=self.config, stats=self.stats,
                              trace_cache=self.trace_cache,
                              preconstruction=self.precon,
                              icache=self.icache,
                              mechanism=self.mechanism,
                              partition_events=None)


def run_frontend_batch(image: ProgramImage,
                       configs: Sequence[FrontendConfig],
                       plan: BatchPlan,
                       obs: Optional["ObsBus"] = None
                       ) -> list[FrontendResult]:
    """Run every config of ``configs`` over ``plan``'s partition.

    Results come back in ``configs`` order and are point-for-point
    equivalent to ``run_frontend(image, config, traces=plan.traces)``.
    ``obs`` (an event bus) is only meaningful for a batch of one — the
    bus carries a single cycle domain, and points advance on distinct
    clocks.
    """
    for config in configs:
        why = plan.compatible_with(config)
        if why is not None:
            raise ValueError(
                f"config cannot join this batch plan: {why}")
    if obs is not None and len(configs) != 1:
        raise ValueError("obs requires a batch of exactly one point")

    # The one shared bimodal table: mechanisms read its bias, the
    # per-occurrence training below is its only writer — so its state
    # matches every scalar point's table at every occurrence.
    bimodal = BimodalPredictor(entries=plan.bimodal_entries)
    points = [_PointState(image, config, bimodal, plan, obs)
              for config in configs]

    traces = plan.traces
    length = plan.length
    ntp_code = plan.ntp_code
    n_branches = plan.n_branches
    n_mispredicts = plan.n_mispredicts
    all_runs = plan.line_runs
    all_pairs = plan.pairs
    train = plan.train_bimodal
    bimodal_update = bimodal.update

    for t, trace in enumerate(traces):
        trace_id = trace.trace_id
        n = length[t]
        code = ntp_code[t]
        runs = all_runs[t]
        branches = n_branches[t]
        mispredicted = n_mispredicts[t]
        partial = trace.partial
        for point in points:
            stats = point.stats
            mechanism = point.mechanism
            if obs:
                obs.now = stats.cycles
            stats.traces += 1
            stats.instructions += n

            present = point.trace_cache.lookup(trace_id) is not None
            buffer_hit = False
            if not present and mechanism is not None:
                buffer_hit = mechanism.probe(trace_id)
                if buffer_hit:
                    present = True
                    stats.buffer_hits += 1

            idle_cycles = 0
            cycles = 0
            if code == NTP_WRONG:
                cycles = point.trace_penalty
                idle_cycles = point.trace_penalty

            if present:
                stats.trace_hits += 1
                pace = point.pace[n]
                cycles += pace
                idle_cycles += pace
            else:
                stats.trace_misses += 1
                if mechanism is not None:
                    mechanism.on_slow_path(trace)
                # Slow path, with the plan's precomputed per-occurrence
                # features standing in for the scalar per-trace walks.
                stats.slow_path_traces += 1
                slow = point.base_fetch[t]
                icache = point.icache
                for run_line, run_count in runs:
                    latency, missed = icache.fetch_line(
                        run_line, "slow_path", instructions=run_count)
                    stats.slow_line_accesses += 1
                    if missed:
                        stats.slow_line_misses += 1
                        stats.slow_instructions_from_misses += run_count
                        slow += latency
                stats.slow_instructions += n
                if branches:
                    slow += mispredicted * point.branch_penalty
                    stats.bimodal_predictions += branches
                    stats.bimodal_mispredictions += mispredicted
                if not partial:
                    point.trace_cache.insert(trace)
                cycles += slow

            if obs:
                if present:
                    obs.emit("frontend", "trace_hit", pc=trace_id.start_pc,
                             len=n, buffer=buffer_hit)
                else:
                    obs.emit("frontend", "trace_miss",
                             pc=trace_id.start_pc, len=n)
                obs.metrics.on_trace(obs.now, n, present, buffer_hit)

            stats.cycles += cycles
            if mechanism is not None:
                stats.idle_cycles += idle_cycles
                mechanism.observe_dispatch(trace)
                if idle_cycles:
                    if obs:
                        obs.now = stats.cycles - idle_cycles
                        obs.emit("frontend", "idle_burst_start",
                                 len=idle_cycles)
                        obs.metrics.on_idle_burst(obs.now, idle_cycles)
                    mechanism.tick(idle_cycles)
                    if obs:
                        obs.now = stats.cycles
                        obs.emit("frontend", "idle_burst_end",
                                 len=idle_cycles)
                if obs and point.precon is not None:
                    bucket = stats.cycles // obs.metrics.bucket_cycles
                    if bucket != point.obs_bucket:
                        point.obs_bucket = bucket
                        obs.metrics.on_buffer_occupancy(
                            point.precon.buffers.occupancy())

        # Occurrence t's training, once for the whole batch — after
        # every point dispatched (the scalar runner also trains after
        # the mechanism tick, so bias reads see the same table).
        if train and branches:
            for pc, taken in all_pairs[t]:
                bimodal_update(pc, taken)

    # Point-independent totals and end-of-run mirrors, applied once.
    for point in points:
        stats = point.stats
        stats.ntp_none = plan.ntp_none
        stats.ntp_correct = plan.ntp_correct
        stats.ntp_wrong = plan.ntp_wrong
        # Table 2's mechanism-side I-cache traffic mirror — the scalar
        # runner reassigns it per trace; only the final value is
        # observable, so once at the end is equivalent.
        client = (point.mechanism.icache_client
                  if point.mechanism is not None else "preconstruct")
        traffic = point.icache.traffic.get(client)
        if traffic is not None:
            stats.precon_line_accesses = traffic.lines_accessed
            stats.precon_line_misses = traffic.misses

    return [point.result() for point in points]
