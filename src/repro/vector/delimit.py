"""Vectorized trace delimitation over struct-of-arrays stream data.

The scalar pipeline feeds one :class:`~repro.engine.StreamRecord` at a
time through :class:`~repro.trace.TraceBuilder`.  The vectorized kernel
re-expresses the dynamic stream as index arrays into a
:class:`~repro.vector.decoded.DecodedImage` and computes the trace
partition from precomputed stop/alignment masks: the per-record rule
masks (end-at-return, end-at-indirect, backward-branch) are array
passes, and the boundary walk consumes them one *trace* (not one
instruction) at a time.

The stopping rules are the same four as the scalar builder — max
length, end at returns, end at indirect transfers, aligned cut beyond
the last backward branch — and the equivalence is enforced twice: a
differential test battery over arbitrary streams, plus a cheap
structural cross-check in :func:`repro.vector.plan.build_plan` every
time a batch plan is built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.engine import StreamRecord
from repro.trace import SelectionConfig

from repro.vector.decoded import DecodedImage

__all__ = ["StreamArrays", "stream_arrays", "trace_boundaries",
           "final_trace_is_partial", "occurrence_lengths",
           "occurrence_branch_counts"]


@dataclass(frozen=True)
class StreamArrays:
    """One dynamic stream as parallel arrays.

    ``index`` holds each record's instruction index into the decoded
    image; ``taken`` the conditional-branch outcome (False elsewhere);
    ``next_pc`` the dynamically-next byte address (disambiguates a
    trailing indirect transfer's target, which the static arrays cannot
    resolve).
    """

    index: np.ndarray    # int64 instruction ids
    taken: np.ndarray    # bool
    next_pc: np.ndarray  # int64 byte addresses

    def __len__(self) -> int:
        return int(self.index.shape[0])


def stream_arrays(stream: Sequence[StreamRecord],
                  decoded: DecodedImage) -> StreamArrays:
    """Re-express ``stream`` as index arrays into ``decoded``."""
    n = len(stream)
    index = np.empty(n, dtype=np.int64)
    taken = np.empty(n, dtype=np.bool_)
    next_pc = np.empty(n, dtype=np.int64)
    base = decoded.code_base
    for i, record in enumerate(stream):
        index[i] = (record.pc - base) >> 2
        taken[i] = record.taken
        next_pc[i] = record.next_pc
    return StreamArrays(index=index, taken=taken, next_pc=next_pc)


def trace_boundaries(arrays: StreamArrays, decoded: DecodedImage,
                     selection: SelectionConfig) -> np.ndarray:
    """Exclusive end positions of every trace of ``arrays``' stream.

    ``ends[-1] == len(arrays)`` always; the final trace is *partial*
    (delimited by the measurement boundary, not a rule) exactly when no
    stopping rule fired on the last record — see
    :func:`final_trace_is_partial`.
    """
    idx = arrays.index
    forced = np.zeros(len(arrays), dtype=np.bool_)
    if selection.end_at_returns:
        forced |= decoded.is_return[idx]
    if selection.end_at_indirect:
        forced |= decoded.is_indirect[idx]
    backward = decoded.is_backward[idx]

    # The walk advances one trace per iteration over plain Python bools
    # (scalar indexing into numpy arrays costs more than it saves).
    forced_list = forced.tolist()
    backward_list = backward.tolist()
    n = len(forced_list)
    max_length = selection.max_length
    align = selection.align_multiple
    ends: list[int] = []
    pos = 0
    while pos < n:
        window_end = min(pos + max_length, n)
        end = -1
        for i in range(pos, window_end):
            if forced_list[i]:
                end = i + 1
                break
        if end < 0:
            if window_end - pos == max_length:
                # Length limit: aligned cut beyond the last backward
                # branch in the full window (scalar _aligned_cut).
                last_backward = -1
                for i in range(window_end - 1, pos - 1, -1):
                    if backward_list[i]:
                        last_backward = i - pos
                        break
                if align and last_backward >= 0:
                    beyond = max_length - last_backward - 1
                    end = (pos + last_backward + 1
                           + (beyond // align) * align)
                else:
                    end = window_end
            else:
                end = n  # partial tail, no rule fired
        ends.append(end)
        pos = end
    return np.asarray(ends, dtype=np.int64)


def final_trace_is_partial(arrays: StreamArrays, decoded: DecodedImage,
                           selection: SelectionConfig,
                           ends: np.ndarray) -> bool:
    """Whether the last trace was cut by the stream boundary.

    A rule-delimited final trace ends on a forced stop or a full
    length-limit window; anything shorter that still reaches the end of
    the stream is the flush-emitted partial tail.
    """
    if len(ends) == 0:
        return False
    start = int(ends[-2]) if len(ends) > 1 else 0
    end = int(ends[-1])
    last = int(arrays.index[end - 1])
    if selection.end_at_returns and bool(decoded.is_return[last]):
        return False
    if selection.end_at_indirect and bool(decoded.is_indirect[last]):
        return False
    return end - start < selection.max_length


def occurrence_lengths(ends: np.ndarray) -> np.ndarray:
    """Per-trace instruction counts, as one vectorized diff."""
    return np.diff(ends, prepend=np.int64(0))


def occurrence_branch_counts(arrays: StreamArrays, decoded: DecodedImage,
                             ends: np.ndarray) -> np.ndarray:
    """Per-trace conditional-branch counts, as one reduceat pass."""
    if len(ends) == 0:
        return np.zeros(0, dtype=np.int64)
    is_branch = decoded.is_conditional_branch[arrays.index].astype(np.int64)
    starts = np.concatenate((np.zeros(1, dtype=np.int64), ends[:-1]))
    return np.add.reduceat(is_branch, starts)
