"""Batched struct-of-arrays simulation kernel (``simulator="vectorized"``).

The scalar frontend kernel (:mod:`repro.sim.frontend_runner`) advances
one sweep point at a time, re-deriving per-occurrence trace features
and predictor evolution at every point.  This package re-expresses the
decoded program and the dynamic stream as parallel numpy arrays
(:class:`DecodedImage`, :class:`StreamArrays`), delimits traces and
accumulates Figure-5 counters as vectorized passes, and batches every
point sharing a stream partition through one lockstep pass
(:func:`run_frontend_batch` over a :class:`BatchPlan`).

Selection is by the ``simulator`` field of
:class:`~repro.runner.ExperimentSpec` (``"scalar"`` stays the default);
equivalence is enforced by a differential test battery plus a fuzz
oracle, and by structural cross-checks at plan build.
"""

from repro.vector.decoded import DecodedImage
from repro.vector.delimit import (
    StreamArrays,
    final_trace_is_partial,
    occurrence_branch_counts,
    occurrence_lengths,
    stream_arrays,
    trace_boundaries,
)
from repro.vector.frontend import run_frontend_batch
from repro.vector.plan import (
    BatchPlan,
    PlanMismatchError,
    build_plan,
    plan_key,
)

__all__ = [
    "BatchPlan",
    "DecodedImage",
    "PlanMismatchError",
    "StreamArrays",
    "build_plan",
    "final_trace_is_partial",
    "occurrence_branch_counts",
    "occurrence_lengths",
    "plan_key",
    "run_frontend_batch",
    "stream_arrays",
    "trace_boundaries",
]
