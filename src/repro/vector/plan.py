"""Shared batch precomputation for the vectorized frontend kernel.

A sweep's points that share one stream partition (same benchmark,
workload seed, instruction budget and selection rules — the PR 3
grouping the runner already schedules by) redo a large amount of
point-independent work in the scalar kernel: the next-trace predictor
and the bimodal table evolve identically at every point, per-occurrence
trace features are pure functions of the shared trace sequence, and the
slow path's bimodal predictions at occurrence *t* read table state that
is the same at every point.

A :class:`BatchPlan` computes all of it **once per partition**:

* the struct-of-arrays decode and vectorized trace delimitation
  (:mod:`repro.vector.decoded` / :mod:`repro.vector.delimit`), with a
  structural cross-check against the scalar trace partition;
* per-occurrence lengths / branch counts as array passes;
* one next-trace-predictor replay — per-occurrence prediction outcome
  (none / correct / wrong);
* one bimodal replay — per-occurrence prediction and misprediction
  counts against the pre-update table state, exactly what the scalar
  slow path would observe at that occurrence;
* per-occurrence branch (pc, taken) pairs and I-cache line runs
  (shared tuples across repeated traces).

What stays per point — and real — in the kernel: trace-cache and
I-cache contents, the frontend mechanism (preconstruction engine
state), and every stat derived from hit/miss outcomes.
"""

from __future__ import annotations

from dataclasses import astuple, dataclass
from typing import Optional, Sequence

import numpy as np

from repro.branch import BimodalPredictor, NextTracePredictor
from repro.branch.nexttrace import NextTracePredictorConfig
from repro.engine import StreamRecord
from repro.program import ProgramImage
from repro.sim.config import FrontendConfig
from repro.trace import SelectionConfig, Trace

from repro.vector.decoded import DecodedImage
from repro.vector.delimit import (
    final_trace_is_partial,
    occurrence_branch_counts,
    occurrence_lengths,
    stream_arrays,
    trace_boundaries,
)

__all__ = ["BatchPlan", "PlanMismatchError", "build_plan", "plan_key"]

#: Next-trace-prediction outcome codes (per occurrence).
NTP_NONE, NTP_CORRECT, NTP_WRONG = 0, 1, 2


class PlanMismatchError(ValueError):
    """Vectorized delimitation disagreed with the scalar partition."""


@dataclass(frozen=True)
class BatchPlan:
    """Point-independent precomputation for one stream partition."""

    traces: Sequence[Trace]
    decoded: DecodedImage
    selection: SelectionConfig
    predictor: NextTracePredictorConfig
    bimodal_entries: int
    train_bimodal: bool
    line_bytes: int

    # Per-occurrence features (Python lists for the dispatch loop,
    # numpy arrays for the closing reductions).
    length: list[int]
    n_branches: list[int]
    n_mispredicts: list[int]
    ntp_code: list[int]
    pairs: list[tuple[tuple[int, bool], ...]]
    line_runs: list[tuple[tuple[int, int], ...]]
    length_arr: np.ndarray
    n_branches_arr: np.ndarray
    n_mispredicts_arr: np.ndarray

    # Point-independent NTP totals (identical at every point).
    ntp_none: int
    ntp_correct: int
    ntp_wrong: int

    def __len__(self) -> int:
        return len(self.traces)

    def compatible_with(self, config: FrontendConfig) -> Optional[str]:
        """Why ``config`` cannot run under this plan (``None`` = fine).

        The plan hard-codes everything point-*independent*; a config is
        batchable iff those knobs match.  Cache sizes, mechanism choice
        and penalties are per-point and unrestricted.
        """
        if config.selection != self.selection:
            return "selection rules differ"
        if config.predictor != self.predictor:
            return "next-trace predictor config differs"
        if config.bimodal_entries != self.bimodal_entries:
            return "bimodal_entries differs"
        if config.train_bimodal_on_all_branches != self.train_bimodal:
            return "train_bimodal_on_all_branches differs"
        if config.icache.line_bytes != self.line_bytes:
            return "icache line_bytes differs"
        return None


def plan_key(config: FrontendConfig) -> tuple:
    """The point-independent knobs a batch plan is keyed by.

    Config dataclasses are not frozen, so they are flattened with
    :func:`dataclasses.astuple` to make the key hashable.
    """
    return (astuple(config.selection), astuple(config.predictor),
            config.bimodal_entries,
            config.train_bimodal_on_all_branches,
            config.icache.line_bytes)


def build_plan(image: ProgramImage, stream: Sequence[StreamRecord],
               traces: Sequence[Trace], *, selection: SelectionConfig,
               predictor: NextTracePredictorConfig, bimodal_entries: int,
               train_bimodal: bool, line_bytes: int) -> BatchPlan:
    """Precompute one partition's :class:`BatchPlan`.

    ``traces`` is the scalar partition (the runner's stream-cache
    currency — its interned objects stay the identity the trace cache
    and mechanisms key on); the vectorized delimitation is re-derived
    from the decoded arrays and structurally cross-checked against it
    on every build, so the two decode paths cannot drift silently.
    """
    decoded = DecodedImage.from_image(image)
    arrays = stream_arrays(stream, decoded)
    ends = trace_boundaries(arrays, decoded, selection)
    length_arr = occurrence_lengths(ends)
    branches_arr = occurrence_branch_counts(arrays, decoded, ends)

    n = len(traces)
    if len(ends) != n:
        raise PlanMismatchError(
            f"vectorized delimitation found {len(ends)} traces, "
            f"scalar partition has {n}")
    scalar_lengths = np.fromiter((len(t) for t in traces), dtype=np.int64,
                                 count=n)
    if not np.array_equal(length_arr, scalar_lengths):
        first = int(np.nonzero(length_arr != scalar_lengths)[0][0])
        raise PlanMismatchError(
            f"vectorized delimitation diverged at occurrence {first}: "
            f"length {int(length_arr[first])} != {int(scalar_lengths[first])}")
    scalar_branches = np.fromiter(
        (len(t.trace_id.outcomes) for t in traces), dtype=np.int64, count=n)
    if not np.array_equal(branches_arr, scalar_branches):
        raise PlanMismatchError(
            "vectorized branch counts diverged from the scalar partition")
    if n and final_trace_is_partial(arrays, decoded, selection,
                                    ends) != traces[-1].partial:
        raise PlanMismatchError(
            "vectorized partial-tail flag diverged from the scalar partition")

    # Per-occurrence branch pairs and line runs, shared across repeated
    # (interned) trace objects.
    pair_memo: dict[int, tuple[Trace, tuple[tuple[int, bool], ...]]] = {}
    run_memo: dict[int, tuple[Trace, tuple[tuple[int, int], ...]]] = {}
    pairs: list[tuple[tuple[int, bool], ...]] = []
    runs: list[tuple[tuple[int, int], ...]] = []
    for trace in traces:
        key = id(trace)
        memo = pair_memo.get(key)
        if memo is None or memo[0] is not trace:
            trace_pairs = tuple(
                (pc, taken) for pc, taken in
                zip((pc for pc, inst in zip(trace.pcs, trace.instructions)
                     if inst.is_conditional_branch),
                    trace.trace_id.outcomes))
            memo = (trace, trace_pairs)
            pair_memo[key] = memo
        pairs.append(memo[1])
        rmemo = run_memo.get(key)
        if rmemo is None or rmemo[0] is not trace:
            rmemo = (trace, trace.line_runs(line_bytes))
            run_memo[key] = rmemo
        runs.append(rmemo[1])

    # One next-trace-predictor replay: its state is a pure function of
    # the dispatched trace sequence (predict reads, update runs
    # unconditionally per trace), so the per-occurrence outcome is
    # point-independent.
    ntp = NextTracePredictor(predictor)
    ntp_code: list[int] = []
    counts = [0, 0, 0]
    for trace in traces:
        predicted = ntp.predict()
        if predicted is None:
            code = NTP_NONE
        elif predicted == trace.trace_id:
            code = NTP_CORRECT
        else:
            code = NTP_WRONG
        ntp_code.append(code)
        counts[code] += 1
        ntp.update(trace.trace_id, predicted,
                   ends_in_call=trace.ends_in_call,
                   ends_in_return=trace.ends_in_return)

    # One bimodal replay: the table is trained identically at every
    # point (updates are unconditional under the training flag, and the
    # slow path's predict() reads without writing), so the prediction /
    # misprediction counts a miss at occurrence t would record are
    # point-independent.  Reads happen against the pre-update state —
    # the scalar slow path predicts before the same trace trains.
    bimodal = BimodalPredictor(entries=bimodal_entries)
    peek = bimodal.peek
    update = bimodal.update
    n_mispredicts: list[int] = []
    for trace_pairs in pairs:
        mispredicted = 0
        for pc, taken in trace_pairs:
            if peek(pc) != taken:
                mispredicted += 1
        n_mispredicts.append(mispredicted)
        if train_bimodal:
            for pc, taken in trace_pairs:
                update(pc, taken)

    return BatchPlan(
        traces=traces, decoded=decoded, selection=selection,
        predictor=predictor, bimodal_entries=bimodal_entries,
        train_bimodal=train_bimodal, line_bytes=line_bytes,
        length=length_arr.tolist(), n_branches=branches_arr.tolist(),
        n_mispredicts=n_mispredicts, ntp_code=ntp_code, pairs=pairs,
        line_runs=runs, length_arr=length_arr,
        n_branches_arr=branches_arr,
        n_mispredicts_arr=np.asarray(n_mispredicts, dtype=np.int64),
        ntp_none=counts[NTP_NONE], ntp_correct=counts[NTP_CORRECT],
        ntp_wrong=counts[NTP_WRONG])
