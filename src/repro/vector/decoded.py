"""Struct-of-arrays decode of a :class:`~repro.program.ProgramImage`.

The scalar pipeline decodes a program into a list of
:class:`~repro.isa.Instruction` objects and consults their attributes
one dynamic instruction at a time.  The vectorized kernel instead works
from a :class:`DecodedImage`: every instruction field and every
classification bit laid out as one numpy array over the whole code
segment, so per-occurrence features of a dynamic stream (trace lengths,
branch counts, line footprints) become array passes instead of
per-object attribute walks.

The decode is *derived* — the :class:`~repro.isa.Instruction` list
stays the source of truth — and must round-trip: ``decoded.instruction(i)``
reconstructs an instruction equal to ``image.instructions[i]`` for
every ``i`` (property-tested over arbitrary generated programs,
including jump-table and reloc edge cases).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import OPCODE_INDEX, OPCODES
from repro.program import ProgramImage

__all__ = ["DecodedImage"]


@dataclass(frozen=True)
class DecodedImage:
    """Parallel-array decode of one program image.

    Operand arrays mirror :class:`~repro.isa.Instruction` fields;
    classification arrays mirror its precomputed predicates.
    ``taken_index`` / ``fall_index`` are *instruction indices* (not byte
    addresses) of the static taken-path successor and the sequential
    successor, with ``-1`` for statically unresolvable or out-of-image
    targets (register-indirect transfers, a jump off the code segment,
    the fall-through of the last instruction).  ``region`` tags each
    instruction with the index (in label-address order) of the static
    region — the innermost label at or below its address — or ``-1``
    ahead of the first label.
    """

    code_base: int
    entry: int

    op: np.ndarray          # int16, index into repro.isa.opcodes.OPCODES
    rd: np.ndarray          # int16
    rs1: np.ndarray         # int16
    rs2: np.ndarray         # int16
    imm: np.ndarray         # int64
    sh1: np.ndarray         # int16
    sh2: np.ndarray         # int16

    is_control: np.ndarray             # bool
    is_conditional_branch: np.ndarray  # bool
    is_call: np.ndarray                # bool
    is_return: np.ndarray              # bool
    is_indirect: np.ndarray            # bool
    is_backward: np.ndarray            # bool

    taken_index: np.ndarray  # int64, -1 when unresolvable/out of image
    fall_index: np.ndarray   # int64, -1 past the end of the segment
    region: np.ndarray       # int64 static-region tag, -1 before any label

    # ------------------------------------------------------------------
    @classmethod
    def from_image(cls, image: ProgramImage) -> "DecodedImage":
        """Decode ``image`` into parallel arrays (one pass, at build)."""
        instructions = image.instructions
        n = len(instructions)
        op = np.empty(n, dtype=np.int16)
        rd = np.empty(n, dtype=np.int16)
        rs1 = np.empty(n, dtype=np.int16)
        rs2 = np.empty(n, dtype=np.int16)
        imm = np.empty(n, dtype=np.int64)
        sh1 = np.empty(n, dtype=np.int16)
        sh2 = np.empty(n, dtype=np.int16)
        is_control = np.empty(n, dtype=np.bool_)
        is_cond = np.empty(n, dtype=np.bool_)
        is_call = np.empty(n, dtype=np.bool_)
        is_return = np.empty(n, dtype=np.bool_)
        is_indirect = np.empty(n, dtype=np.bool_)
        is_backward = np.empty(n, dtype=np.bool_)
        taken_pc = np.full(n, -1, dtype=np.int64)

        index_of = OPCODE_INDEX
        base = image.code_base
        for i, inst in enumerate(instructions):
            op[i] = index_of[inst.op]
            rd[i] = inst.rd
            rs1[i] = inst.rs1
            rs2[i] = inst.rs2
            imm[i] = inst.imm
            sh1[i] = inst.sh1
            sh2[i] = inst.sh2
            is_control[i] = inst.is_control
            is_cond[i] = inst.is_conditional_branch
            is_call[i] = inst.is_call
            is_return[i] = inst.is_return
            is_indirect[i] = inst.is_indirect
            is_backward[i] = inst.is_backward
            target = inst.taken_target(base + i * INSTRUCTION_BYTES)
            if target is not None:
                taken_pc[i] = target

        # Successor ids, resolved vectorized: a target maps to an
        # instruction index only when word-aligned and inside the code
        # segment; everything else is -1.
        offset = taken_pc - base
        candidate = offset >> 2
        valid = ((taken_pc >= 0) & (offset >= 0) & (offset % 4 == 0)
                 & (candidate < n))
        taken_index = np.where(valid, candidate, -1)
        fall_index = np.arange(1, n + 1, dtype=np.int64)
        if n:
            fall_index[n - 1] = -1

        # Static-region tags from the label map: innermost label at or
        # below each instruction's address.
        region = np.full(n, -1, dtype=np.int64)
        if image.labels:
            label_addrs = np.array(sorted(set(image.labels.values())),
                                   dtype=np.int64)
            pcs = base + np.arange(n, dtype=np.int64) * INSTRUCTION_BYTES
            region = np.searchsorted(label_addrs, pcs, side="right") - 1

        return cls(code_base=base, entry=image.entry, op=op, rd=rd,
                   rs1=rs1, rs2=rs2, imm=imm, sh1=sh1, sh2=sh2,
                   is_control=is_control, is_conditional_branch=is_cond,
                   is_call=is_call, is_return=is_return,
                   is_indirect=is_indirect, is_backward=is_backward,
                   taken_index=taken_index, fall_index=fall_index,
                   region=region)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.op.shape[0])

    def index_of(self, pc: int) -> int:
        """Instruction index of byte address ``pc`` (no bounds check)."""
        return (pc - self.code_base) >> 2

    def pc_of(self, index: int) -> int:
        """Byte address of instruction ``index``."""
        return self.code_base + index * INSTRUCTION_BYTES

    def instruction(self, index: int) -> Instruction:
        """Reconstruct the scalar :class:`Instruction` at ``index``.

        The round-trip contract: equal (``==``) to the source image's
        instruction at the same index, including every derived
        classification attribute (they are recomputed by the
        constructor from the same fields).
        """
        return Instruction(op=OPCODES[int(self.op[index])],
                           rd=int(self.rd[index]),
                           rs1=int(self.rs1[index]),
                           rs2=int(self.rs2[index]),
                           imm=int(self.imm[index]),
                           sh1=int(self.sh1[index]),
                           sh2=int(self.sh2[index]))
