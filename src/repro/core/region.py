"""Preconstruction regions and their worklists (paper §2.1, §3.4).

A *region* is the unit of preconstruction effort: it owns one prefetch
cache, a worklist of trace start points, and a visited set that keeps
the breadth-first traversal of the dynamic execution tree from
re-expanding the same start point.

Worklist entries carry the constructor's view of the call stack at that
point, because a region's traversal may descend through procedure calls
and must be able to resolve the matching returns ("our trace algorithm
terminates preconstruction at jump indirect instructions (the target is
unknown)" — returns whose call was observed *inside* the region are not
unknown, so traversal continues through them).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.caches import PrefetchCache


@dataclass(frozen=True, slots=True)
class StartPoint:
    """A trace start point inside a region.

    ``call_stack`` is the tuple of return addresses the region traversal
    has entered through (innermost last).
    """

    pc: int
    call_stack: tuple[int, ...] = ()


class RegionState(enum.Enum):
    ACTIVE = "active"
    COMPLETED = "completed"    # worklist drained or resource bound hit
    ABANDONED = "abandoned"    # processor caught up


class Region:
    """One preconstruction region."""

    def __init__(self, seq: int, start_pc: int,
                 prefetch_cache: PrefetchCache,
                 max_start_points: int = 64) -> None:
        self.seq = seq
        self.start_pc = start_pc
        self.prefetch_cache = prefetch_cache
        self.state = RegionState.ACTIVE
        self.max_start_points = max_start_points
        self._worklist: deque[StartPoint] = deque()
        self._visited: set[StartPoint] = set()
        self.traces_built = 0
        self.buffer_failures = 0
        self.fetch_bound_hit = False
        root = StartPoint(pc=start_pc)
        self._worklist.append(root)
        self._visited.add(root)

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self.state is RegionState.ACTIVE

    def priority_key(self) -> tuple[int, int]:
        """Sort key: active regions beat past regions, then newest first.

        Higher tuple = higher priority.
        """
        return (1 if self.active else 0, self.seq)

    # ------------------------------------------------------------------
    def push_start_point(self, point: StartPoint) -> bool:
        """Queue a new trace start point unless already expanded/bounded."""
        if not self.active:
            return False
        if point in self._visited:
            return False
        if len(self._visited) >= self.max_start_points:
            return False
        self._visited.add(point)
        self._worklist.append(point)
        return True

    def pop_start_point(self) -> Optional[StartPoint]:
        if self._worklist:
            return self._worklist.popleft()
        return None

    @property
    def worklist_empty(self) -> bool:
        return not self._worklist

    # ------------------------------------------------------------------
    def complete(self) -> None:
        if self.active:
            self.state = RegionState.COMPLETED
            self._worklist.clear()

    def abandon(self) -> None:
        """Processor caught up: stop work (already-built traces remain)."""
        if self.active:
            self.state = RegionState.ABANDONED
            self._worklist.clear()

    def covers(self, pc: int) -> bool:
        """Whether ``pc`` is code this region has fetched (catch-up test)."""
        return self.prefetch_cache.contains(pc)
