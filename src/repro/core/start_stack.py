"""The region start-point stack (paper §3.2).

Potential region start points — return points of observed calls and
fall-through (exit) points of observed backward branches — are kept in
a small hardware stack so that the *newest* start point is taken first.
Because of loop and subroutine nesting, newest-first order tends to
preconstruct the regions the processor will reach soonest.

Behaviours from the paper:

* depth-16 stack; when full, the **oldest** entry is discarded;
* a new start point is not pushed when it matches the current top
  (avoids re-pushing the same region every loop iteration);
* entries are removed when the processor reaches them (catch-up) or on
  misspeculation;
* a few extra entries (four) remember the most recently *completed*
  regions, and preconstruction is not re-initiated for those.
"""

from __future__ import annotations

from collections import deque
from typing import Optional


class StartPointStack:
    """Bounded LIFO of region start points plus completed-region memory."""

    def __init__(self, depth: int = 16, completed_memory: int = 4) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        # Oldest first, newest last.  A deque because overflow discards
        # the *oldest* entry: on a list that popleft is O(depth) and it
        # sits on the per-dispatched-trace hot path.
        self._stack: deque[int] = deque()
        # Occurrence counts mirroring the deque: membership is tested
        # once per *dispatched instruction* (catch-up detection), so it
        # must not scan the deque.
        self._counts: dict[int, int] = {}
        self._completed: deque[int] = deque(maxlen=max(0, completed_memory))
        self.pushes = 0
        self.duplicate_suppressed = 0
        self.overflow_discards = 0

    # ------------------------------------------------------------------
    def push(self, start_pc: int) -> bool:
        """Record a potential region start point.

        Returns ``True`` if the point was actually pushed (not a
        duplicate of the current top, not a recently completed region).
        """
        if self._stack and self._stack[-1] == start_pc:
            self.duplicate_suppressed += 1
            return False
        if start_pc in self._completed:
            self.duplicate_suppressed += 1
            return False
        if len(self._stack) >= self.depth:
            self._forget(self._stack.popleft())  # discard the oldest
            self.overflow_discards += 1
        self._stack.append(start_pc)
        self._counts[start_pc] = self._counts.get(start_pc, 0) + 1
        self.pushes += 1
        return True

    def _forget(self, start_pc: int) -> None:
        remaining = self._counts[start_pc] - 1
        if remaining:
            self._counts[start_pc] = remaining
        else:
            del self._counts[start_pc]

    def pop_newest(self) -> Optional[int]:
        """Take the highest-priority (newest) start point."""
        if not self._stack:
            return None
        start_pc = self._stack.pop()
        self._forget(start_pc)
        return start_pc

    def pop_oldest(self) -> Optional[int]:
        """FIFO pop (ablation alternative to the paper's newest-first)."""
        if not self._stack:
            return None
        start_pc = self._stack.popleft()
        self._forget(start_pc)
        return start_pc

    def peek_newest(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    def remove_reached(self, pc: int) -> bool:
        """Drop a start point the processor's execution has reached."""
        try:
            self._stack.remove(pc)
        except ValueError:
            return False
        self._forget(pc)
        return True

    def mark_completed(self, start_pc: int) -> None:
        """Remember a region whose preconstruction finished."""
        if self._completed.maxlen:
            self._completed.append(start_pc)

    def recently_completed(self, start_pc: int) -> bool:
        return start_pc in self._completed

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._stack)

    def __contains__(self, start_pc: int) -> bool:
        return start_pc in self._counts

    def entries(self) -> tuple[int, ...]:
        """Stack contents, oldest first (for tests/diagnostics)."""
        return tuple(self._stack)
