"""Trace constructors: walk static code and build candidate traces.

Implements the paper's §3.4 algorithm.  A constructor is assigned a
trace start point from a region's worklist and then:

* fetches and decodes static instructions (through the region's
  prefetch cache, falling back to the shared I-cache port);
* follows strongly-biased conditional branches only in their dominant
  direction, consulting the slow-path bimodal predictor's counters;
* at a weakly-biased branch, follows the not-taken path first and
  pushes the decision point onto a small internal stack; after a trace
  completes it pops the stack and re-walks the alternative direction;
* follows direct calls (remembering the return point on an internal
  call stack so the matching return is resolvable), and terminates the
  path at register-indirect transfers whose target is unknown;
* delimits traces with the *same* :class:`TraceBuilder` rules as the
  processor, so preconstructed traces align with demand traces.

The constructor is incremental: :meth:`step` performs one instruction's
worth of work and reports its decode/port cost, so the engine can meter
progress against the processor's idle slow-path cycles.

A correctness invariant enforced here: the constructor never emits a
*partial* trace.  A trace identity is (start PC, branch outcomes), so a
trace cut short by a resource bound would collide with the properly
delimited trace the processor will later ask for; partial work is
always discarded instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.branch import Bias, BimodalPredictor
from repro.caches import InstructionCache
from repro.core.region import Region, StartPoint
from repro.isa import INSTRUCTION_BYTES, Instruction, Kind
from repro.program import ProgramImage
from repro.trace import SelectionConfig, Trace, TraceBuilder


@dataclass(frozen=True)
class ConstructorConfig:
    """Bounds and policies for one constructor's work per start point.

    ``branch_policy`` selects the path-pruning heuristic at conditional
    branches (an ablation axis for the paper's §2.1 heuristic):

    * ``"biased"`` (the paper): follow strongly-biased branches in their
      dominant direction only; fork both ways at weak branches;
    * ``"both"``: fork at every branch (no pruning);
    * ``"taken"`` / ``"not_taken"``: static single-direction policies.
    """

    max_decision_depth: int = 4
    max_traces_per_start: int = 8
    max_walk_instructions: int = 96
    max_call_depth: int = 8
    branch_policy: str = "biased"

    def __post_init__(self) -> None:
        if self.branch_policy not in ("biased", "both", "taken",
                                      "not_taken"):
            raise ValueError(f"unknown branch_policy "
                             f"{self.branch_policy!r}")


@dataclass(slots=True)
class StepResult:
    """Outcome of one constructor step."""

    decode_cost: int = 1
    port_cost: int = 0
    icache_missed: bool = False
    completed: Optional[Trace] = None
    new_start_point: Optional[StartPoint] = None
    finished: bool = False            # start point fully explored
    region_fetch_bound: bool = False  # prefetch cache filled up
    notable: bool = False
    """True when any engine-visible event field above is set — the
    engine's one-load gate for dispatching to its slow handler."""


@dataclass(slots=True)
class _DecisionPoint:
    """Saved walk state at a weakly-biased branch (not-taken explored
    first; this snapshot resumes the taken direction)."""

    entries: list
    entry_stacks: list
    pc: int                # the branch pc itself
    taken_target: int
    call_stack: tuple[int, ...]
    walked: int


#: Sentinel distinguishing "never decoded" from a cached out-of-bounds
#: ``None`` in the shared decode cache.
_UNDECODED = object()


class TraceConstructor:
    """One of the (four) parallel trace construction units."""

    def __init__(self, image: ProgramImage, icache: InstructionCache,
                 bimodal: BimodalPredictor,
                 selection: SelectionConfig | None = None,
                 config: ConstructorConfig | None = None,
                 decode_cache: Optional[dict] = None) -> None:
        self.image = image
        self.icache = icache
        self.bimodal = bimodal
        self.selection = selection or SelectionConfig()
        self.config = config or ConstructorConfig()
        self.region: Optional[Region] = None
        self._builder = TraceBuilder(self.selection)
        # PC -> decoded instruction (or None when out of bounds).  The
        # image never changes during a run, and the engine shares one
        # cache across its constructors so each static instruction is
        # index-translated once rather than once per walk step.
        self._decode: dict = decode_cache if decode_cache is not None else {}
        self._branch_policy = self.config.branch_policy
        # One StepResult reused across steps: the engine consumes each
        # result before the next step, and allocating ~1 per walked
        # instruction showed up in profiles.
        self._result = StepResult()
        # The all-quiet result shared by every plain step (no port use,
        # nothing completed) — the overwhelmingly common case, returned
        # without touching any field.  Never mutated.
        self._plain = StepResult()
        # Call-stack state *after* each buffered entry, aligned with the
        # builder's buffer; needed to restart correctly after truncation.
        self._entry_stacks: list[tuple[int, ...]] = []
        self._pc: Optional[int] = None
        self._call_stack: tuple[int, ...] = ()
        self._decisions: list[_DecisionPoint] = []
        self._traces_emitted = 0
        self._walked = 0

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self.region is not None

    def assign(self, region: Region, start: StartPoint) -> None:
        """Begin exploring ``start`` on behalf of ``region``."""
        if self.busy:
            raise RuntimeError("constructor already assigned")
        self.region = region
        self._pc = start.pc
        self._call_stack = start.call_stack
        self._reset_buffer()
        self._decisions.clear()
        self._traces_emitted = 0
        self._walked = 0

    def release(self) -> None:
        self.region = None
        self._pc = None
        self._reset_buffer()
        self._decisions.clear()

    def needs_line_fetch(self) -> bool:
        """Will the next step consume the shared I-cache port?"""
        region = self.region
        pc = self._pc
        return (region is not None and pc is not None
                and not region.prefetch_cache.contains(pc))

    def _fresh_result(self) -> StepResult:
        """Reset and return the reused per-constructor StepResult."""
        result = self._result
        result.decode_cost = 1
        result.port_cost = 0
        result.icache_missed = False
        result.completed = None
        result.new_start_point = None
        result.finished = False
        result.region_fetch_bound = False
        result.notable = False
        return result

    # ------------------------------------------------------------------
    def step(self, needs_fetch: Optional[bool] = None) -> StepResult:
        """Perform one instruction's worth of construction work.

        ``needs_fetch`` lets the engine pass the result of its own
        :meth:`needs_line_fetch` gate so the prefetch cache is not
        probed twice per step; ``None`` probes here.
        """
        region = self.region
        if region is None:
            raise RuntimeError("step on idle constructor")
        pc = self._pc
        if pc is None:
            return self._backtrack_or_finish()
        if self._walked >= self.config.max_walk_instructions:
            self._reset_buffer()  # never emit a partial trace
            self._pc = None
            return self._backtrack_or_finish()

        result: Optional[StepResult] = None

        # Fetch through the prefetch cache; a fresh line uses the port.
        if (needs_fetch if needs_fetch is not None
                else not region.prefetch_cache.contains(pc)):
            result = self._fresh_result()
            if not region.prefetch_cache.add_line(pc):
                self._reset_buffer()
                self._pc = None
                result.finished = True
                result.region_fetch_bound = True
                result.notable = True
                return result
            latency, missed = self.icache.fetch_line(pc, "preconstruct")
            result.port_cost = latency
            result.icache_missed = missed

        inst = self._decode.get(pc, _UNDECODED)
        if inst is _UNDECODED:
            inst = self.image.try_fetch(pc)
            self._decode[pc] = inst
        if inst is None or inst.kind is Kind.HALT:
            self._reset_buffer()
            self._pc = None
            return result if result is not None else self._plain

        taken, next_pc, path_ends = self._advance(pc, inst)
        self._walked += 1
        completed = self._builder.add(pc, inst, taken,
                                      next_pc if next_pc is not None else 0)
        self._entry_stacks.append(self._call_stack)
        if completed is None:
            self._pc = None if path_ends else next_pc
            return result if result is not None else self._plain
        if result is None:
            result = self._fresh_result()
        self._complete(completed, result)
        self._pc = None
        return result

    # ------------------------------------------------------------------
    def _append_entry(self, pc: int, inst: Instruction, taken: bool,
                      record_next: int, result: StepResult) -> None:
        """Feed one entry to the builder, handling trace completion."""
        completed = self._builder.add(pc, inst, taken, record_next)
        self._entry_stacks.append(self._call_stack)
        if completed is None:
            return
        self._complete(completed, result)

    def _complete(self, completed: Trace, result: StepResult) -> None:
        """Populate ``result`` for an emitted trace."""
        self._traces_emitted += 1
        result.completed = completed
        result.notable = True
        cut = len(completed)
        if completed.next_pc:
            result.new_start_point = StartPoint(
                pc=completed.next_pc,
                call_stack=self._entry_stacks[cut - 1])
        self._reset_buffer()  # drop any truncation leftover
        if self._traces_emitted >= self.config.max_traces_per_start:
            self._decisions.clear()
            result.finished = True

    def _reset_buffer(self) -> None:
        self._builder.reset()
        self._entry_stacks.clear()

    # ------------------------------------------------------------------
    def _backtrack_or_finish(self) -> StepResult:
        """Resume a saved decision point, or report the start point done."""
        result = self._fresh_result()
        if (self._decisions
                and self._traces_emitted < self.config.max_traces_per_start):
            point = self._decisions.pop()
            self._builder.restore_entries(point.entries)
            self._entry_stacks = list(point.entry_stacks)
            self._call_stack = point.call_stack
            self._walked = point.walked + 1
            inst = self._decode.get(point.pc)
            if inst is None:
                inst = self.image.fetch(point.pc)
            self._append_entry(point.pc, inst, True, point.taken_target,
                               result)
            self._pc = (None if result.completed is not None
                        else point.taken_target)
            return result
        result.finished = True
        result.notable = True
        return result

    # ------------------------------------------------------------------
    def _advance(self, pc: int, inst: Instruction
                 ) -> tuple[bool, Optional[int], bool]:
        """Decide (taken, next_pc, path_ends) for the walked instruction.

        Mutates the call stack for calls and resolved returns, so the
        post-instruction stack snapshot taken by the caller is correct.
        """
        fall = pc + INSTRUCTION_BYTES
        if not inst.is_control:
            return False, fall, False
        kind = inst.kind
        if kind is Kind.BRANCH:
            policy = self._branch_policy
            if policy == "taken":
                return True, pc + inst.imm, False
            if policy == "not_taken":
                return False, fall, False
            if policy == "biased":
                bias = self.bimodal.bias(pc)
                if bias is Bias.STRONG_TAKEN:
                    return True, pc + inst.imm, False
                if bias is Bias.STRONG_NOT_TAKEN:
                    return False, fall, False
            # Weakly biased (or policy "both"): not-taken first,
            # remember the taken path.
            if len(self._decisions) < self.config.max_decision_depth:
                self._decisions.append(_DecisionPoint(
                    entries=self._builder.snapshot_entries(),
                    entry_stacks=list(self._entry_stacks),
                    pc=pc,
                    taken_target=pc + inst.imm,
                    call_stack=self._call_stack,
                    walked=self._walked,
                ))
            return False, fall, False
        if kind is Kind.JUMP:
            return False, inst.imm, False
        if kind is Kind.CALL:
            if len(self._call_stack) >= self.config.max_call_depth:
                return False, None, True  # too deep; end the path
            self._call_stack = self._call_stack + (fall,)
            return False, inst.imm, False
        if kind is Kind.JUMP_INDIRECT:
            if inst.is_return and self._call_stack:
                target = self._call_stack[-1]
                self._call_stack = self._call_stack[:-1]
                return False, target, False
            return False, None, True  # statically opaque target
        if kind is Kind.CALL_INDIRECT:
            return False, None, True
        return False, fall, False
