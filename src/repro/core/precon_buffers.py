"""Preconstruction buffers (paper §3.1).

A 2-way set-associative structure, organised like the primary trace
cache and probed in parallel with it.  Differences from the trace
cache:

* every resident trace is tagged with the region that produced it;
* replacement follows **region priority**: active regions beat past
  regions, and among actives the more recent region wins ("The more
  recent the active region, the higher its relative priority");
* "A trace generated for a region will not displace an existing trace
  from the same region" — when every candidate way in the set belongs
  to the inserting region, the allocation *fails*; this failure is the
  primary resource bound on a region's preconstruction effort;
* a hit promotes the trace into the primary trace cache and invalidates
  the buffer entry (the caller performs the promotion; the buffer
  exposes :meth:`take`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.trace import Trace, TraceID
from repro.trace.trace_cache import BYTES_PER_ENTRY, _index_trace_id


@dataclass
class _BufferLine:
    trace: Trace
    region_seq: int


@dataclass
class PreconBufferStats:
    probes: int = 0
    hits: int = 0
    inserts: int = 0
    insert_failures: int = 0
    displaced: int = 0
    invalidations: int = 0


class PreconstructionBuffers:
    """Region-priority trace buffer array."""

    def __init__(self, entries: int = 256, ways: int = 2,
                 priority_fn: Optional[Callable[[int], tuple]] = None) -> None:
        if entries <= 0 or entries % ways:
            raise ValueError("entries must divide evenly into ways")
        self.entries = entries
        self.ways = ways
        self.num_sets = entries // ways
        #: Maps a region sequence number to its priority tuple; injected
        #: by the preconstruction engine so buffer replacement can see
        #: region state (active vs past).  Defaults to seq order.
        self.priority_fn = priority_fn or (lambda seq: (0, seq))
        self._sets: list[dict[TraceID, _BufferLine]] = [
            {} for _ in range(self.num_sets)]
        self.stats = PreconBufferStats()
        #: Optional :class:`repro.obs.ObsBus` (attached by the engine);
        #: ``None`` keeps every site a single dead branch.
        self.obs = None

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        return self.entries * BYTES_PER_ENTRY

    def _set_for(self, trace_id: TraceID) -> dict[TraceID, _BufferLine]:
        return self._sets[_index_trace_id(trace_id) % self.num_sets]

    # ------------------------------------------------------------------
    def probe(self, trace_id: TraceID) -> Optional[Trace]:
        """Parallel probe with the trace cache (counted, non-destructive)."""
        self.stats.probes += 1
        line = self._set_for(trace_id).get(trace_id)
        if self.obs:
            self.obs.emit("buffers", "probe", hit=line is not None)
        if line is None:
            return None
        self.stats.hits += 1
        return line.trace

    def contains(self, trace_id: TraceID) -> bool:
        """Uncounted presence check (dedup before construction effort)."""
        return trace_id in self._set_for(trace_id)

    def take(self, trace_id: TraceID) -> Optional[Trace]:
        """Remove and return a trace (promotion into the trace cache)."""
        line = self._set_for(trace_id).pop(trace_id, None)
        if line is None:
            return None
        self.stats.invalidations += 1
        if self.obs:
            self.obs.emit("buffers", "take", occupancy=self.occupancy())
        return line.trace

    # ------------------------------------------------------------------
    def insert(self, trace: Trace, region_seq: int) -> bool:
        """Allocate a buffer for ``trace`` on behalf of region ``region_seq``.

        Returns ``False`` when allocation fails (all ways in the set
        already hold traces of the same region) — the region resource
        bound.  Re-inserting an identical trace id refreshes it in place.
        """
        target_set = self._set_for(trace.trace_id)
        if trace.trace_id in target_set:
            target_set[trace.trace_id] = _BufferLine(trace, region_seq)
            return True
        if len(target_set) < self.ways:
            target_set[trace.trace_id] = _BufferLine(trace, region_seq)
            self.stats.inserts += 1
            if self.obs:
                self.obs.emit("buffers", "insert", region=region_seq,
                              displaced=False, occupancy=self.occupancy())
            return True
        # Full set: evict the lowest-priority line not owned by us.
        candidates = [(self.priority_fn(line.region_seq), tid)
                      for tid, line in target_set.items()
                      if line.region_seq != region_seq]
        if not candidates:
            self.stats.insert_failures += 1
            if self.obs:
                self.obs.emit("buffers", "insert_fail", region=region_seq)
            return False
        _, victim = min(candidates, key=lambda candidate: candidate[0])
        del target_set[victim]
        target_set[trace.trace_id] = _BufferLine(trace, region_seq)
        self.stats.inserts += 1
        self.stats.displaced += 1
        if self.obs:
            self.obs.emit("buffers", "insert", region=region_seq,
                          displaced=True, occupancy=self.occupancy())
        return True

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_traces(self) -> list[Trace]:
        return [line.trace for s in self._sets for line in s.values()]

    def resident_with_regions(self) -> list[tuple[Trace, int]]:
        """Resident (trace, owning-region-seq) pairs, for migration
        during dynamic repartitioning."""
        return [(line.trace, line.region_seq)
                for s in self._sets for line in s.values()]
