"""The trace preconstruction engine (the paper's core contribution).

Orchestrates everything in §2-§3:

* **Dispatch monitoring** — scans every dispatched trace for the two
  region cues: a call pushes the return point (the instruction after
  the call), a taken backward branch pushes the loop fall-through
  (exit) point.  Start points the processor reaches are removed.
* **Region management** — when one of the four prefetch caches is
  free, the newest start point is popped from the start-point stack and
  becomes a new region (unless that region completed recently).
  Regions are abandoned when the processor catches up to their code.
* **Construction scheduling** — four constructors take start points
  from the highest-priority active region's worklist and are metered
  by the processor's *idle* slow-path cycles: each idle cycle funds one
  decode step per constructor, and line fetches serialise on the single
  shared I-cache port.
* **Buffer management** — completed traces are deduplicated against
  the trace cache and the preconstruction buffers before allocation;
  an allocation failure (set full of same-region traces) bounds the
  region's effort.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.branch import BimodalPredictor
from repro.caches import InstructionCache, PrefetchCache
from repro.core.precon_buffers import PreconstructionBuffers
from repro.core.preconstructor import (
    ConstructorConfig,
    StepResult,
    TraceConstructor,
)
from repro.core.region import Region
from repro.core.start_stack import StartPointStack
from repro.isa import INSTRUCTION_BYTES
from repro.program import ProgramImage
from repro.trace import SelectionConfig, Trace, TraceCache, TraceID


@dataclass(frozen=True)
class PreconstructionConfig:
    """Hardware parameters of the preconstruction mechanism (§3, §4.1)."""

    buffer_entries: int = 256
    buffer_ways: int = 2
    num_constructors: int = 4
    num_prefetch_caches: int = 4
    prefetch_cache_instructions: int = 256
    start_stack_depth: int = 16
    completed_memory: int = 4
    buffer_failure_limit: int = 1
    max_start_points_per_region: int = 64
    stack_order: str = "newest_first"
    constructor: ConstructorConfig = field(default_factory=ConstructorConfig)

    def __post_init__(self) -> None:
        if self.stack_order not in ("newest_first", "oldest_first"):
            raise ValueError(f"unknown stack_order {self.stack_order!r}")


@dataclass
class PreconstructionStats:
    """Engine-level accounting."""

    regions_started: int = 0
    regions_completed: int = 0
    regions_abandoned: int = 0
    regions_fetch_bound: int = 0
    regions_buffer_bound: int = 0
    traces_constructed: int = 0
    traces_duplicate: int = 0
    buffer_hits: int = 0
    idle_cycles_offered: int = 0
    decode_steps: int = 0
    port_cycles_used: int = 0
    static_seeds_offered: int = 0


class PreconstructionEngine:
    """Preconstruction mechanism attached to a trace-processor frontend."""

    def __init__(self, image: ProgramImage, icache: InstructionCache,
                 bimodal: BimodalPredictor, trace_cache: TraceCache,
                 config: PreconstructionConfig | None = None,
                 selection: SelectionConfig | None = None,
                 static_seeds: Sequence[int] | None = None) -> None:
        self.image = image
        self.icache = icache
        self.bimodal = bimodal
        self.trace_cache = trace_cache
        self.config = config or PreconstructionConfig()
        self.selection = selection or SelectionConfig()
        cfg = self.config

        self.stack = StartPointStack(depth=cfg.start_stack_depth,
                                     completed_memory=cfg.completed_memory)
        self.buffers = PreconstructionBuffers(
            entries=cfg.buffer_entries, ways=cfg.buffer_ways,
            priority_fn=self._region_priority)
        self._free_prefetch: list[PrefetchCache] = [
            PrefetchCache(cfg.prefetch_cache_instructions)
            for _ in range(cfg.num_prefetch_caches)]
        self.constructors = [
            TraceConstructor(image, icache, bimodal, self.selection,
                             cfg.constructor)
            for _ in range(cfg.num_constructors)]
        self._active_regions: list[Region] = []
        self._regions_by_seq: dict[int, Region] = {}
        self._next_seq = 0
        self.stats = PreconstructionStats()
        #: Statically precomputed start points (best-first), fed to the
        #: stack at startup and whenever the dynamic cues run dry.
        self._static_seeds: deque[int] = deque(static_seeds or ())
        self._refill_from_seeds()

    # ------------------------------------------------------------------
    # Static seeding: prime the start-point stack from a precomputed
    # best-first list (call returns + loop exits found by the static
    # analyzer) instead of waiting for the dispatch stream to reveal
    # them.  Seeds are pushed in reverse so the best one sits on top.
    # ------------------------------------------------------------------
    def _refill_from_seeds(self) -> None:
        if not self._static_seeds or len(self.stack):
            return
        batch: list[int] = []
        while self._static_seeds and len(batch) < self.config.start_stack_depth:
            batch.append(self._static_seeds.popleft())
        for start_pc in reversed(batch):
            if self.stack.push(start_pc):
                self.stats.static_seeds_offered += 1

    # ------------------------------------------------------------------
    # Region priority seen by the buffer replacement policy.
    # ------------------------------------------------------------------
    def _region_priority(self, seq: int) -> tuple[int, int]:
        region = self._regions_by_seq.get(seq)
        if region is not None and region.active:
            return (1, seq)
        return (0, seq)

    # ------------------------------------------------------------------
    # Frontend-facing probe: buffers are accessed in parallel with the
    # trace cache; a hit is promoted into the trace cache.
    # ------------------------------------------------------------------
    def probe_and_promote(self, trace_id: TraceID) -> Optional[Trace]:
        """Probe the preconstruction buffers; on a hit, move the trace
        into the primary trace cache and invalidate the buffer entry."""
        trace = self.buffers.probe(trace_id)
        if trace is None:
            return None
        self.buffers.take(trace_id)
        self.trace_cache.insert(trace)
        self.stats.buffer_hits += 1
        return trace

    # ------------------------------------------------------------------
    # Dispatch-stream observation (§3.2).
    # ------------------------------------------------------------------
    def observe_dispatch(self, trace: Trace) -> None:
        """Scan one dispatched trace for start-point cues and catch-up."""
        outcome_index = 0
        outcomes = trace.trace_id.outcomes
        for pc, inst in zip(trace.pcs, trace.instructions):
            # Processor reached a pending start point: drop it.
            if pc in self.stack:
                self.stack.remove_reached(pc)
            if inst.is_call:
                self.stack.push(pc + INSTRUCTION_BYTES)
            elif inst.is_conditional_branch:
                taken = outcomes[outcome_index]
                outcome_index += 1
                if taken and inst.is_backward_branch():
                    self.stack.push(pc + INSTRUCTION_BYTES)
        self._check_catch_up(trace)

    def _check_catch_up(self, trace: Trace) -> None:
        """Abandon any active region the processor has reached.

        "Reached" means the dispatch stream actually arrived at the
        region's start point — not merely that it touched a cache line
        the region happens to share (a loop body and its exit point
        usually share a line, and the whole point of a loop-exit region
        is to be built *while* the processor is still iterating).
        """
        if not self._active_regions:
            return
        pcs = set(trace.pcs)
        for region in list(self._active_regions):
            if region.start_pc in pcs:
                self._finish_region(region, abandoned=True)

    # ------------------------------------------------------------------
    # Work metering (§3.3): idle slow-path cycles fund construction.
    # ------------------------------------------------------------------
    def tick(self, idle_cycles: int) -> None:
        """Advance preconstruction by ``idle_cycles`` of slow-path idleness.

        Each idle cycle funds one decode step per constructor (they run
        in parallel); line fetches serialise on the shared I-cache port,
        which can move one line per ``latency`` cycles.
        """
        if idle_cycles <= 0:
            return
        self.stats.idle_cycles_offered += idle_cycles
        self._refill_from_seeds()
        port_budget = idle_cycles
        decode_budget = idle_cycles * len(self.constructors)
        while decode_budget > 0:
            self._spawn_regions()
            self._assign_constructors()
            busy = [c for c in self.constructors if c.busy]
            if not busy:
                break
            progressed = False
            for constructor in busy:
                if decode_budget <= 0:
                    break
                if not constructor.busy:
                    continue  # released mid-round (its region finished)
                if constructor.needs_line_fetch() and port_budget <= 0:
                    continue  # stalled on the I-cache port
                result = constructor.step()
                decode_budget -= result.decode_cost
                port_budget -= result.port_cost
                self.stats.decode_steps += result.decode_cost
                self.stats.port_cycles_used += result.port_cost
                self._handle_step(constructor, result)
                progressed = True
            if not progressed:
                break

    # ------------------------------------------------------------------
    def _spawn_regions(self) -> None:
        """Turn the newest start points into regions while caches are free."""
        newest_first = self.config.stack_order == "newest_first"
        while self._free_prefetch and len(self.stack):
            start_pc = (self.stack.pop_newest() if newest_first
                        else self.stack.pop_oldest())
            if start_pc is None:
                break
            if self.stack.recently_completed(start_pc):
                continue
            if any(r.start_pc == start_pc for r in self._active_regions):
                continue
            cache = self._free_prefetch.pop()
            cache.reset()
            region = Region(
                seq=self._next_seq, start_pc=start_pc, prefetch_cache=cache,
                max_start_points=self.config.max_start_points_per_region)
            self._next_seq += 1
            self._active_regions.append(region)
            self._regions_by_seq[region.seq] = region
            self.stats.regions_started += 1

    def _assign_constructors(self) -> None:
        """Hand free constructors start points, highest-priority region
        first ("it takes a new trace start point from the highest
        priority worklist")."""
        idle = [c for c in self.constructors if not c.busy]
        if not idle:
            return
        for region in sorted(self._active_regions,
                             key=Region.priority_key, reverse=True):
            while idle and not region.worklist_empty:
                point = region.pop_start_point()
                if point is None:
                    break
                idle.pop().assign(region, point)
            if not idle:
                break
        self._reap_regions()

    def _handle_step(self, constructor: TraceConstructor,
                     result: StepResult) -> None:
        region = constructor.region
        if result.completed is not None:
            self._install(region, result.completed)
        if result.new_start_point is not None and region.active:
            region.push_start_point(result.new_start_point)
        if result.region_fetch_bound:
            region.fetch_bound_hit = True
            self.stats.regions_fetch_bound += 1
            self._finish_region(region)
        if result.finished or not region.active:
            constructor.release()

    def _install(self, region: Region, trace: Trace) -> None:
        """Dedup then allocate a preconstruction buffer for ``trace``."""
        region.traces_built += 1
        self.stats.traces_constructed += 1
        if (self.trace_cache.contains(trace.trace_id)
                or self.buffers.contains(trace.trace_id)):
            self.stats.traces_duplicate += 1
            return
        if not self.buffers.insert(trace, region.seq):
            region.buffer_failures += 1
            if region.buffer_failures >= self.config.buffer_failure_limit:
                self.stats.regions_buffer_bound += 1
                self._finish_region(region)

    def _finish_region(self, region: Region, abandoned: bool = False) -> None:
        """Retire a region, releasing its prefetch cache and constructors."""
        if not region.active:
            return
        if abandoned:
            region.abandon()
            self.stats.regions_abandoned += 1
        else:
            region.complete()
            self.stack.mark_completed(region.start_pc)
            self.stats.regions_completed += 1
        for constructor in self.constructors:
            if constructor.region is region:
                constructor.release()
        self._active_regions.remove(region)
        self._free_prefetch.append(region.prefetch_cache)

    def _reap_regions(self) -> None:
        """Complete regions whose work is exhausted."""
        for region in list(self._active_regions):
            if region.worklist_empty and not any(
                    c.region is region for c in self.constructors):
                self._finish_region(region)

    # ------------------------------------------------------------------
    @property
    def active_region_count(self) -> int:
        return len(self._active_regions)

    def active_regions(self) -> tuple[Region, ...]:
        return tuple(self._active_regions)
