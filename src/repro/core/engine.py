"""The trace preconstruction engine (the paper's core contribution).

Orchestrates everything in §2-§3:

* **Dispatch monitoring** — scans every dispatched trace for the two
  region cues: a call pushes the return point (the instruction after
  the call), a taken backward branch pushes the loop fall-through
  (exit) point.  Start points the processor reaches are removed.
* **Region management** — when one of the four prefetch caches is
  free, the newest start point is popped from the start-point stack and
  becomes a new region (unless that region completed recently).
  Regions are abandoned when the processor catches up to their code.
* **Construction scheduling** — four constructors take start points
  from the highest-priority active region's worklist and are metered
  by the processor's *idle* slow-path cycles: each idle cycle funds one
  decode step per constructor, and line fetches serialise on the single
  shared I-cache port.
* **Buffer management** — completed traces are deduplicated against
  the trace cache and the preconstruction buffers before allocation;
  an allocation failure (set full of same-region traces) bounds the
  region's effort.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.branch import BimodalPredictor
from repro.caches import InstructionCache, PrefetchCache
from repro.core.precon_buffers import PreconstructionBuffers
from repro.core.preconstructor import (
    ConstructorConfig,
    StepResult,
    TraceConstructor,
)
from repro.core.region import Region, RegionState
from repro.core.start_stack import StartPointStack
from repro.isa import INSTRUCTION_BYTES
from repro.program import ProgramImage
from repro.trace import SelectionConfig, Trace, TraceCache, TraceID


@dataclass(frozen=True)
class PreconstructionConfig:
    """Hardware parameters of the preconstruction mechanism (§3, §4.1)."""

    buffer_entries: int = 256
    buffer_ways: int = 2
    num_constructors: int = 4
    num_prefetch_caches: int = 4
    prefetch_cache_instructions: int = 256
    start_stack_depth: int = 16
    completed_memory: int = 4
    buffer_failure_limit: int = 1
    max_start_points_per_region: int = 64
    stack_order: str = "newest_first"
    constructor: ConstructorConfig = field(default_factory=ConstructorConfig)

    def __post_init__(self) -> None:
        if self.stack_order not in ("newest_first", "oldest_first"):
            raise ValueError(f"unknown stack_order {self.stack_order!r}")


@dataclass
class PreconstructionStats:
    """Engine-level accounting."""

    regions_started: int = 0
    regions_completed: int = 0
    regions_abandoned: int = 0
    regions_fetch_bound: int = 0
    regions_buffer_bound: int = 0
    traces_constructed: int = 0
    traces_duplicate: int = 0
    buffer_hits: int = 0
    idle_cycles_offered: int = 0
    decode_steps: int = 0
    port_cycles_used: int = 0
    port_overdraft_carried: int = 0
    static_seeds_offered: int = 0


class PreconstructionEngine:
    """Preconstruction mechanism attached to a trace-processor frontend."""

    def __init__(self, image: ProgramImage, icache: InstructionCache,
                 bimodal: BimodalPredictor, trace_cache: TraceCache,
                 config: PreconstructionConfig | None = None,
                 selection: SelectionConfig | None = None,
                 static_seeds: Sequence[int] | None = None) -> None:
        self.image = image
        self.icache = icache
        self.bimodal = bimodal
        self.trace_cache = trace_cache
        self.config = config or PreconstructionConfig()
        self.selection = selection or SelectionConfig()
        cfg = self.config

        self.stack = StartPointStack(depth=cfg.start_stack_depth,
                                     completed_memory=cfg.completed_memory)
        self.buffers = PreconstructionBuffers(
            entries=cfg.buffer_entries, ways=cfg.buffer_ways,
            priority_fn=self._region_priority)
        self._free_prefetch: list[PrefetchCache] = [
            PrefetchCache(cfg.prefetch_cache_instructions)
            for _ in range(cfg.num_prefetch_caches)]
        decode_cache: dict = {}
        self.constructors = [
            TraceConstructor(image, icache, bimodal, self.selection,
                             cfg.constructor, decode_cache=decode_cache)
            for _ in range(cfg.num_constructors)]
        for cid, constructor in enumerate(self.constructors):
            constructor.cid = cid
            constructor._obs_assigned = 0
        self._active_regions: list[Region] = []
        self._regions_by_seq: dict[int, Region] = {}
        self._next_seq = 0
        #: I-cache port cycles spent beyond what past idle bursts funded
        #: (a line fetch issued with 1 cycle of budget still costs the
        #: full miss latency); repaid out of the next burst's budget.
        self._port_debt = 0
        self.stats = PreconstructionStats()
        #: Statically precomputed start points (best-first), fed to the
        #: stack at startup and whenever the dynamic cues run dry.
        self._static_seeds: deque[int] = deque(static_seeds or ())
        #: Per-trace dispatch-cue memo: the start-point cues and the pc
        #: set of a trace are pure functions of the trace, and the
        #: selector interns trace objects, so each distinct trace is
        #: scanned once rather than once per dispatch.  Keyed by id();
        #: the stored trace reference pins the id.
        self._cue_memo: dict[int, tuple] = {}
        #: Optional :class:`repro.obs.ObsBus`; ``None`` (the default)
        #: keeps every instrumentation site a single dead branch, so
        #: the event-driven hot path from the performance overhaul is
        #: unchanged when observability is off.
        self.obs = None
        self._refill_from_seeds()

    def attach_obs(self, bus) -> None:
        """Attach an event bus to the engine and its buffers."""
        self.obs = bus
        self.buffers.obs = bus

    # ------------------------------------------------------------------
    # Static seeding: prime the start-point stack from a precomputed
    # best-first list (call returns + loop exits found by the static
    # analyzer) instead of waiting for the dispatch stream to reveal
    # them.  Seeds are pushed in reverse so the best one sits on top.
    # ------------------------------------------------------------------
    def _refill_from_seeds(self) -> None:
        if not self._static_seeds or len(self.stack):
            return
        batch: list[int] = []
        while self._static_seeds and len(batch) < self.config.start_stack_depth:
            batch.append(self._static_seeds.popleft())
        offered = 0
        for start_pc in reversed(batch):
            if self.stack.push(start_pc):
                offered += 1
        if offered:
            self.stats.static_seeds_offered += offered
            if self.obs:
                self.obs.emit("engine", "static_seeds", count=offered)

    # ------------------------------------------------------------------
    # Region priority seen by the buffer replacement policy.
    # ------------------------------------------------------------------
    def _region_priority(self, seq: int) -> tuple[int, int]:
        region = self._regions_by_seq.get(seq)
        if region is not None and region.active:
            return (1, seq)
        return (0, seq)

    # ------------------------------------------------------------------
    # Frontend-facing probe: buffers are accessed in parallel with the
    # trace cache; a hit is promoted into the trace cache.
    # ------------------------------------------------------------------
    def probe_and_promote(self, trace_id: TraceID) -> Optional[Trace]:
        """Probe the preconstruction buffers; on a hit, move the trace
        into the primary trace cache and invalidate the buffer entry."""
        trace = self.buffers.probe(trace_id)
        if trace is None:
            return None
        self.buffers.take(trace_id)
        self.trace_cache.insert(trace)
        self.stats.buffer_hits += 1
        return trace

    # ------------------------------------------------------------------
    # Dispatch-stream observation (§3.2).
    # ------------------------------------------------------------------
    def observe_dispatch(self, trace: Trace) -> None:
        """Scan one dispatched trace for start-point cues and catch-up."""
        memo = self._cue_memo.get(id(trace))
        if memo is None or memo[0] is not trace:
            outcome_index = 0
            outcomes = trace.trace_id.outcomes
            steps: list[tuple[int, Optional[int]]] = []
            for pc, inst in zip(trace.pcs, trace.instructions):
                push: Optional[int] = None
                if inst.is_call:
                    push = pc + INSTRUCTION_BYTES
                elif inst.is_conditional_branch:
                    taken = outcomes[outcome_index]
                    outcome_index += 1
                    if taken and inst.is_backward:
                        push = pc + INSTRUCTION_BYTES
                steps.append((pc, push))
            memo = (trace, tuple(steps), frozenset(trace.pcs))
            self._cue_memo[id(trace)] = memo
        stack = self.stack
        for pc, push in memo[1]:
            # Processor reached a pending start point: drop it.
            if pc in stack:
                stack.remove_reached(pc)
            if push is not None:
                stack.push(push)
        self._check_catch_up(trace, memo[2])

    def _check_catch_up(self, trace: Trace,
                        pcs: Optional[frozenset] = None) -> None:
        """Abandon any active region the processor has reached.

        "Reached" means the dispatch stream actually arrived at the
        region's start point — not merely that it touched a cache line
        the region happens to share (a loop body and its exit point
        usually share a line, and the whole point of a loop-exit region
        is to be built *while* the processor is still iterating).
        """
        if not self._active_regions:
            return
        if pcs is None:
            pcs = frozenset(trace.pcs)
        for region in list(self._active_regions):
            if region.start_pc in pcs:
                self._finish_region(region, abandoned=True)

    # ------------------------------------------------------------------
    # Work metering (§3.3): idle slow-path cycles fund construction.
    # ------------------------------------------------------------------
    def tick(self, idle_cycles: int) -> None:
        """Advance preconstruction by ``idle_cycles`` of slow-path idleness.

        Each idle cycle funds one decode step per constructor (they run
        in parallel); line fetches serialise on the shared I-cache port,
        which can move one line per ``latency`` cycles.

        The port budget carries debt across bursts: a fetch may issue
        on the last funded cycle and still cost a full miss latency, so
        the overdraft is repaid from the next burst instead of being
        forgotten (which used to over-credit the single I-cache port
        within every idle burst).
        """
        if idle_cycles <= 0:
            return
        stats = self.stats
        stats.idle_cycles_offered += idle_cycles
        self._refill_from_seeds()
        port_budget = idle_cycles - self._port_debt
        constructors = self.constructors
        decode_budget = idle_cycles * len(constructors)
        decode_steps = 0
        port_used = 0
        handle = self._handle_step
        active_state = RegionState.ACTIVE
        # Scheduling state (free prefetch caches, the start-point stack,
        # region worklists, idle constructors) only changes through
        # _handle_step events, so spawn/assign re-run after one instead
        # of every round.
        busy: list[TraceConstructor] = []
        needs_schedule = True
        while decode_budget > 0:
            if needs_schedule:
                self._spawn_regions()
                self._assign_constructors()
                busy = [c for c in constructors if c.region is not None]
                needs_schedule = False
            if not busy:
                break
            progressed = False
            for constructor in busy:
                if decode_budget <= 0:
                    break
                region = constructor.region
                if region is None:
                    continue  # released mid-round (its region finished)
                # needs_line_fetch() inlined (one call per walked
                # instruction): the region is known non-None here.
                pc = constructor._pc
                needs_fetch = (pc is not None and
                               not region.prefetch_cache.contains(pc))
                if needs_fetch and port_budget <= 0:
                    continue  # stalled on the I-cache port
                result = constructor.step(needs_fetch)
                # Every step costs exactly one decode slot
                # (StepResult.decode_cost is invariantly 1); only fetch
                # steps touch the port, so skip the arithmetic otherwise.
                decode_budget -= 1
                decode_steps += 1
                port_cost = result.port_cost
                if port_cost:
                    port_budget -= port_cost
                    port_used += port_cost
                if result.notable or region.state is not active_state:
                    handle(constructor, result)
                    needs_schedule = True
                progressed = True
            if not progressed:
                break
        stats.decode_steps += decode_steps
        stats.port_cycles_used += port_used
        if self.obs and port_used:
            self.obs.metrics.on_port_cycles(self.obs.now, port_used)
        debt = -port_budget if port_budget < 0 else 0
        stats.port_overdraft_carried += max(0, debt - self._port_debt)
        self._port_debt = debt

    # ------------------------------------------------------------------
    def _spawn_regions(self) -> None:
        """Turn the newest start points into regions while caches are free."""
        if not self._free_prefetch or not len(self.stack):
            return
        newest_first = self.config.stack_order == "newest_first"
        while self._free_prefetch and len(self.stack):
            start_pc = (self.stack.pop_newest() if newest_first
                        else self.stack.pop_oldest())
            if start_pc is None:
                break
            if self.stack.recently_completed(start_pc):
                continue
            if any(r.start_pc == start_pc for r in self._active_regions):
                continue
            cache = self._free_prefetch.pop()
            cache.reset()
            region = Region(
                seq=self._next_seq, start_pc=start_pc, prefetch_cache=cache,
                max_start_points=self.config.max_start_points_per_region)
            self._next_seq += 1
            self._active_regions.append(region)
            self._regions_by_seq[region.seq] = region
            self.stats.regions_started += 1
            if self.obs:
                self.obs.emit("engine", "region_spawn", region=region.seq,
                              pc=start_pc)

    def _assign_constructors(self) -> None:
        """Hand free constructors start points, highest-priority region
        first ("it takes a new trace start point from the highest
        priority worklist")."""
        idle = [c for c in self.constructors if c.region is None]
        if not idle:
            return
        regions = self._active_regions
        if len(regions) > 1:
            regions = sorted(regions, key=Region.priority_key, reverse=True)
        for region in regions:
            while idle and not region.worklist_empty:
                point = region.pop_start_point()
                if point is None:
                    break
                constructor = idle.pop()
                constructor.assign(region, point)
                if self.obs:
                    self.obs.emit("engine", "region_assign",
                                  region=region.seq, cid=constructor.cid,
                                  pc=point.pc)
                    constructor._obs_assigned = self.obs.now
            if not idle:
                break
        self._reap_regions()

    def _handle_step(self, constructor: TraceConstructor,
                     result: StepResult) -> None:
        region = constructor.region
        if result.completed is not None:
            self._install(region, result.completed, constructor)
        active = region.state is RegionState.ACTIVE
        if result.new_start_point is not None and active:
            region.push_start_point(result.new_start_point)
        if result.region_fetch_bound:
            region.fetch_bound_hit = True
            self.stats.regions_fetch_bound += 1
            self._finish_region(region)
            active = False
        if result.finished or not active:
            if self.obs and constructor.region is not None:
                self.obs.emit("engine", "constructor_release",
                              cid=constructor.cid)
            constructor.release()

    def _install(self, region: Region, trace: Trace,
                 constructor: Optional[TraceConstructor] = None) -> None:
        """Dedup then allocate a preconstruction buffer for ``trace``."""
        region.traces_built += 1
        self.stats.traces_constructed += 1
        duplicate = (self.trace_cache.contains(trace.trace_id)
                     or self.buffers.contains(trace.trace_id))
        if self.obs:
            now = self.obs.now
            latency = (now - constructor._obs_assigned
                       if constructor is not None else 0)
            self.obs.emit("engine", "trace_constructed", region=region.seq,
                          cid=(constructor.cid if constructor is not None
                               else -1),
                          pc=trace.trace_id.start_pc, len=len(trace),
                          latency=latency, dup=duplicate)
            self.obs.metrics.on_trace_constructed(now, latency)
        if duplicate:
            self.stats.traces_duplicate += 1
            return
        if not self.buffers.insert(trace, region.seq):
            region.buffer_failures += 1
            if region.buffer_failures >= self.config.buffer_failure_limit:
                self.stats.regions_buffer_bound += 1
                self._finish_region(region)

    def _finish_region(self, region: Region, abandoned: bool = False) -> None:
        """Retire a region, releasing its prefetch cache and constructors."""
        if not region.active:
            return
        if abandoned:
            region.abandon()
            self.stats.regions_abandoned += 1
            if self.obs:
                self.obs.emit("engine", "region_abandon", region=region.seq,
                              pc=region.start_pc, traces=region.traces_built)
        else:
            region.complete()
            self.stack.mark_completed(region.start_pc)
            self.stats.regions_completed += 1
            if self.obs:
                if region.fetch_bound_hit:
                    reason = "fetch_bound"
                elif (region.buffer_failures
                      >= self.config.buffer_failure_limit):
                    reason = "buffer_bound"
                else:
                    reason = "exhausted"
                self.obs.emit("engine", "region_complete", region=region.seq,
                              pc=region.start_pc, traces=region.traces_built,
                              reason=reason)
        for constructor in self.constructors:
            if constructor.region is region:
                if self.obs:
                    self.obs.emit("engine", "constructor_release",
                                  cid=constructor.cid)
                constructor.release()
        self._active_regions.remove(region)
        self._free_prefetch.append(region.prefetch_cache)

    def _reap_regions(self) -> None:
        """Complete regions whose work is exhausted."""
        exhausted = [r for r in self._active_regions if r.worklist_empty]
        if not exhausted:
            return
        assigned = {id(c.region) for c in self.constructors}
        for region in exhausted:
            if id(region) not in assigned:
                self._finish_region(region)

    # ------------------------------------------------------------------
    @property
    def active_region_count(self) -> int:
        return len(self._active_regions)

    def active_regions(self) -> tuple[Region, ...]:
        return tuple(self._active_regions)
