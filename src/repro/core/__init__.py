"""Trace preconstruction — the paper's core contribution.

The engine observes the dispatch stream for region cues (procedure
calls and loop back edges), jumps ahead of the processor, fetches
static instructions through fill-up prefetch caches, and constructs
likely future traces into preconstruction buffers that are probed in
parallel with the trace cache.
"""

from repro.core.engine import (
    PreconstructionConfig,
    PreconstructionEngine,
    PreconstructionStats,
)
from repro.core.precon_buffers import PreconBufferStats, PreconstructionBuffers
from repro.core.preconstructor import (
    ConstructorConfig,
    StepResult,
    TraceConstructor,
)
from repro.core.region import Region, RegionState, StartPoint
from repro.core.start_stack import StartPointStack

__all__ = [
    "PreconstructionConfig", "PreconstructionEngine", "PreconstructionStats",
    "PreconBufferStats", "PreconstructionBuffers", "ConstructorConfig",
    "StepResult", "TraceConstructor", "Region", "RegionState", "StartPoint",
    "StartPointStack",
]
