"""Bimodal branch predictor: a table of 2-bit saturating counters.

This is the paper's slow-path conditional-branch predictor ("We assume
a bimodal branch predictor (table of 2-bit saturating counters indexed
by branch address)" — J.E. Smith, ISCA 1981).  It serves double duty:

* the slow-path fetch unit uses :meth:`predict` / :meth:`update`;
* the preconstruction engine reads :meth:`bias` to follow only the
  dominant direction of *strongly* biased branches while exploring a
  region (§2.1).

Counter states: 0 strongly not-taken, 1 weakly not-taken, 2 weakly
taken, 3 strongly taken.
"""

from __future__ import annotations

import enum
from typing import Optional


class Bias(enum.Enum):
    """Preconstruction-visible branch bias classes."""

    STRONG_TAKEN = "strong_taken"
    STRONG_NOT_TAKEN = "strong_not_taken"
    WEAK = "weak"


class BimodalPredictor:
    """2-bit saturating counter table indexed by branch address."""

    STRONG_NT, WEAK_NT, WEAK_T, STRONG_T = 0, 1, 2, 3

    def __init__(self, entries: int = 4096, initial: int = 1) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if not 0 <= initial <= 3:
            raise ValueError("initial counter must be in 0..3")
        self._mask = entries - 1
        self._table = [initial] * entries
        self.entries = entries
        self.predictions = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------
    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def counter(self, pc: int) -> int:
        """Raw 2-bit counter value for the branch at ``pc``."""
        return self._table[self._index(pc)]

    # ------------------------------------------------------------------
    def predict(self, pc: int) -> bool:
        """Predict taken/not-taken (counts as a prediction)."""
        self.predictions += 1
        return self._table[self._index(pc)] >= 2

    def peek(self, pc: int) -> bool:
        """Direction the counter currently favours, without accounting."""
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool, predicted: Optional[bool] = None
               ) -> None:
        """Train on the outcome; optionally record mispredict accounting."""
        index = self._index(pc)
        value = self._table[index]
        if taken:
            if value < 3:
                self._table[index] = value + 1
        else:
            if value > 0:
                self._table[index] = value - 1
        if predicted is not None and predicted != taken:
            self.mispredictions += 1

    # ------------------------------------------------------------------
    def bias(self, pc: int) -> Bias:
        """Bias class used by the preconstruction path-pruning heuristic."""
        value = self._table[self._index(pc)]
        if value == self.STRONG_T:
            return Bias.STRONG_TAKEN
        if value == self.STRONG_NT:
            return Bias.STRONG_NOT_TAKEN
        return Bias.WEAK

    @property
    def misprediction_rate(self) -> float:
        return (self.mispredictions / self.predictions
                if self.predictions else 0.0)
