"""Path-based next-trace predictor with hybrid backup and RHS.

Implements the predictor the paper's frontend relies on (§6, item 1):

* a **correlated table** indexed by a hash of the last ``depth`` trace
  identities, each entry holding a predicted next-trace id plus a 2-bit
  replacement-hysteresis counter;
* a **secondary table** indexed by the most recent trace id only, which
  reduces cold-start and aliasing losses (the "hybrid configuration");
* a **Return History Stack** (RHS) that snapshots the path history at
  calls and restores it at returns, so history across a call site is
  not polluted by the callee's traces.

The predictor is generic over hashable trace identities; the frontend
passes :class:`repro.trace.TraceID` values and tells the predictor when
a dispatched trace ends in a call or a return.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Hashable, Optional, TypeVar

from repro.branch.history import PathHistory

T = TypeVar("T", bound=Hashable)

_MASK32 = 0xFFFF_FFFF


class _Entry(Generic[T]):
    __slots__ = ("prediction", "confidence")

    def __init__(self) -> None:
        self.prediction: Optional[T] = None
        self.confidence = 0  # 2-bit hysteresis: 0..3


@dataclass
class NextTracePredictorConfig:
    """Geometry of the hybrid predictor."""

    primary_entries: int = 16384
    secondary_entries: int = 4096
    history_depth: int = 4
    rhs_depth: int = 32

    def __post_init__(self) -> None:
        for field_name in ("primary_entries", "secondary_entries"):
            value = getattr(self, field_name)
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{field_name} must be a power of two")


class NextTracePredictor(Generic[T]):
    """Hybrid path-based next-trace predictor."""

    def __init__(self, config: NextTracePredictorConfig | None = None) -> None:
        self.config = config or NextTracePredictorConfig()
        cfg = self.config
        self._primary: list[_Entry[T]] = [_Entry() for _ in
                                          range(cfg.primary_entries)]
        self._secondary: list[_Entry[T]] = [_Entry() for _ in
                                            range(cfg.secondary_entries)]
        self.history: PathHistory = PathHistory(depth=cfg.history_depth)
        self._rhs: list[tuple[Hashable, ...]] = []
        self.predictions = 0
        self.correct = 0
        self.no_prediction = 0

    # ------------------------------------------------------------------
    def _primary_index(self) -> int:
        return self.history.hash() % self.config.primary_entries

    def _secondary_index(self) -> int:
        return self.history.hash(length=1) % self.config.secondary_entries

    # ------------------------------------------------------------------
    def predict(self) -> Optional[T]:
        """Predict the next trace id given current path history.

        The primary (long-history) table wins when it has a prediction;
        otherwise fall back to the secondary table.  Returns ``None``
        when neither table has learned anything for this path — the
        frontend then uses the slow path.
        """
        self.predictions += 1
        entry = self._primary[self._primary_index()]
        if entry.prediction is not None:
            return entry.prediction
        backup = self._secondary[self._secondary_index()]
        if backup.prediction is not None:
            return backup.prediction
        self.no_prediction += 1
        return None

    # ------------------------------------------------------------------
    def update(self, actual: T, predicted: Optional[T],
               ends_in_call: bool = False,
               ends_in_return: bool = False) -> None:
        """Train both tables on the observed next trace and advance history.

        ``predicted`` is what :meth:`predict` returned for this slot (so
        accuracy accounting matches what the frontend acted on).  The
        RHS hooks fire *after* the history update: a trace ending in a
        call pushes the updated history; one ending in a return restores
        the matching snapshot.
        """
        if predicted is not None and predicted == actual:
            self.correct += 1
        for table, index in ((self._primary, self._primary_index()),
                             (self._secondary, self._secondary_index())):
            entry = table[index]
            if entry.prediction == actual:
                entry.confidence = min(3, entry.confidence + 1)
            elif entry.confidence > 0:
                entry.confidence -= 1
            else:
                entry.prediction = actual
                entry.confidence = 1

        self.history.append(actual)
        if ends_in_call:
            if len(self._rhs) >= self.config.rhs_depth:
                self._rhs.pop(0)
            self._rhs.append(self.history.snapshot())
        if ends_in_return and self._rhs:
            self.history.restore(self._rhs.pop())
            # The returned-to path continues after the call: fold the
            # returning trace in so the history reflects the return.
            self.history.append(actual)

    # ------------------------------------------------------------------
    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0
