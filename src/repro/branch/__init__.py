"""Branch and next-trace prediction substrate."""

from repro.branch.bimodal import Bias, BimodalPredictor
from repro.branch.history import PathHistory, fold_ids
from repro.branch.nexttrace import (
    NextTracePredictor,
    NextTracePredictorConfig,
)
from repro.branch.ras import ReturnAddressStack

__all__ = [
    "Bias", "BimodalPredictor", "PathHistory", "fold_ids",
    "NextTracePredictor", "NextTracePredictorConfig", "ReturnAddressStack",
]
