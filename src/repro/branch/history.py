"""Path-history state for the next-trace predictor.

The predictor of Jacobson, Rotenberg & Smith (MICRO 1997) indexes its
table with a hash of the identities of the last several traces (the
*path*).  :class:`PathHistory` keeps that bounded sequence and provides
a deterministic fold-down hash.  It is snapshot-able because the Return
History Stack saves and restores path history across procedure
calls/returns.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable

_MASK32 = 0xFFFF_FFFF


def fold_ids(ids: Iterable[Hashable]) -> int:
    """Deterministically fold a sequence of trace identities to 32 bits.

    Rotate-and-xor so that the same set of ids in a different order
    hashes differently (path order matters to the predictor).
    """
    acc = 0x9E37_79B9
    for item in ids:
        h = hash(item) & _MASK32
        acc = (((acc << 7) | (acc >> 25)) ^ h) & _MASK32
    return acc


class PathHistory:
    """Bounded most-recent-last sequence of trace identities."""

    def __init__(self, depth: int = 4,
                 initial: Iterable[Hashable] = ()) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._ids: deque[Hashable] = deque(initial, maxlen=depth)
        # Fold results per requested length, cleared whenever the
        # history changes: the predictor hashes the same state several
        # times per trace (predict + update, two tables each).
        self._fold_memo: dict[int | None, int] = {}

    def append(self, trace_id: Hashable) -> None:
        self._ids.append(trace_id)
        self._fold_memo.clear()

    def ids(self) -> tuple[Hashable, ...]:
        return tuple(self._ids)

    def hash(self, length: int | None = None) -> int:
        """Hash of the last ``length`` ids (default: full depth)."""
        memo = self._fold_memo
        folded = memo.get(length)
        if folded is None:
            ids = self.ids()
            if length is not None:
                ids = ids[-length:]
            folded = fold_ids(ids)
            memo[length] = folded
        return folded

    def snapshot(self) -> tuple[Hashable, ...]:
        """State capture for the Return History Stack."""
        return self.ids()

    def restore(self, snapshot: tuple[Hashable, ...]) -> None:
        self._ids = deque(snapshot, maxlen=self.depth)
        self._fold_memo.clear()

    def clear(self) -> None:
        self._ids.clear()

    def __len__(self) -> int:
        return len(self._ids)
