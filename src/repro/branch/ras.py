"""Return-address stack for the slow-path fetch unit.

A bounded hardware stack: calls push their return point, returns pop a
predicted target.  Overflow wraps (oldest entry lost), underflow
returns ``None`` — both behaviours of a real circular RAS.
"""

from __future__ import annotations

from typing import Optional


class ReturnAddressStack:
    """Bounded circular return-address predictor stack."""

    def __init__(self, depth: int = 32) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._entries: list[int] = []
        self.overflows = 0
        self.underflows = 0

    def push(self, return_address: int) -> None:
        if len(self._entries) >= self.depth:
            self._entries.pop(0)  # overwrite the oldest
            self.overflows += 1
        self._entries.append(return_address)

    def pop(self) -> Optional[int]:
        if not self._entries:
            self.underflows += 1
            return None
        return self._entries.pop()

    def peek(self) -> Optional[int]:
        return self._entries[-1] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
