"""Reproduction of "Trace Preconstruction" (Jacobson & Smith, ISCA 2000).

A from-scratch trace-processor simulation stack:

* :mod:`repro.isa` / :mod:`repro.program` / :mod:`repro.workloads` —
  a RISC ISA, static program representation, and synthetic SPECint95
  stand-in workloads;
* :mod:`repro.engine` — functional execution producing dynamic streams;
* :mod:`repro.caches` / :mod:`repro.branch` / :mod:`repro.trace` —
  the memory and prediction substrate plus trace selection/caching;
* :mod:`repro.core` — **trace preconstruction**, the paper's
  contribution;
* :mod:`repro.preprocess` / :mod:`repro.processor` — fill-unit
  preprocessing and the trace-processor timing model;
* :mod:`repro.sim` / :mod:`repro.analysis` — simulation drivers and
  the per-table / per-figure experiment reproductions;
* :mod:`repro.static` — static binary analysis over linked images:
  CFG recovery, dominators/natural loops, call graph, the program
  verifier behind ``python -m repro analyze``, and static region
  seeding for ``--static-seed`` runs;
* :mod:`repro.runner` — experiment descriptions (`ExperimentSpec`),
  a content-addressed result cache, and a benchmark-grouped process
  pool behind ``python -m repro all --jobs N``;
* :mod:`repro.obs` — observability: the cycle-domain event bus,
  interval metrics, run manifests, Chrome/Perfetto export and stdlib
  logging behind ``python -m repro stats`` / ``trace``;
* :mod:`repro.telemetry` — host-domain (wall-clock) observability of
  the harness itself: span tracing across the process pool, the
  OpenMetrics registry, merged host+sim Perfetto export and
  ``cProfile`` capture behind ``--telemetry-json`` /
  ``python -m repro profile``;
* :mod:`repro.api` — the stable import facade for all of the above.

Quickstart::

    from repro.api import ExperimentSpec, run_point

    base = ExperimentSpec(benchmark="gcc", tc_entries=256)
    pre = base.replace(pb_entries=256)
    print(run_point(base).metrics["trace_misses_per_ki"], "->",
          run_point(pre).metrics["trace_misses_per_ki"])
"""

from repro.static import (
    LintFinding,
    RecoveredCFG,
    Severity,
    StaticAnalysisReport,
    StaticCallGraph,
    StaticSeed,
    analyze_image,
    compute_static_seeds,
    recover_call_graph,
    recover_cfg,
    verify_image,
)

__version__ = "1.7.0"

__all__ = [
    "__version__",
    "LintFinding",
    "RecoveredCFG",
    "Severity",
    "StaticAnalysisReport",
    "StaticCallGraph",
    "StaticSeed",
    "analyze_image",
    "compute_static_seeds",
    "recover_call_graph",
    "recover_cfg",
    "verify_image",
]
